//! Energy-aware training with online guidance (paper §3.2).
//!
//! Attaches the energy plugin to a run, feeds the training monitor the
//! same loss/energy stream the provenance collector sees, and stops the
//! moment the configured energy budget or loss plateau is hit — "the
//! process could be stopped when a specific threshold of energy,
//! compute, or performance is achieved, removing unnecessary
//! iterations".
//!
//! ```text
//! cargo run -p integration --example energy_aware_training
//! ```

use energy_monitor::device::mi250x_gcd;
use energy_monitor::sampler::{PowerSource, VirtualClock};
use std::sync::Arc;
use yprov4ml::model::Context;
use yprov4ml::monitor::{Advice, StopPolicy, TrainingMonitor};
use yprov4ml::plugins::EnergyPlugin;
use yprov4ml::run::RunOptions;
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_energy_aware");
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("energy-aware", &base)?;

    // A virtual clock drives both the "training" and the power sampling.
    let clock = VirtualClock::manual();
    let gcd = mi250x_gcd();
    let watts = gcd.power_at(0.9) * 8.0; // 8 busy GCDs
    let source: Arc<dyn PowerSource> = Arc::new(move || watts);

    let run = experiment.start_run_with(
        "budgeted",
        RunOptions {
            plugins: vec![Box::new(EnergyPlugin::new(source, Arc::clone(&clock)))],
            ..Default::default()
        },
    )?;
    run.log_param("energy_budget_kwh", 0.5);

    // The guidance policy: 0.5 kWh budget, plateau patience of 200.
    let mut monitor = TrainingMonitor::new(StopPolicy {
        energy_budget_j: Some(0.5 * 3.6e6),
        patience: Some(200),
        min_delta: 1e-4,
        ..Default::default()
    });

    let step_seconds = 1.2;
    let mut joules = 0.0;
    let mut stopped: Option<Advice> = None;
    for step in 0..100_000u64 {
        // One simulated training step.
        clock.advance(step_seconds);
        joules += watts * step_seconds;
        let loss = 2.0 / (1.0 + step as f64 * 0.01);

        run.log_metric("loss", Context::Training, step, 0, loss);
        run.plugin_tick(); // energy plugin samples power + integrates

        let advice = monitor.observe(loss, joules, clock.now_s());
        if advice.should_stop() {
            stopped = Some(advice);
            run.log_output_param("stopped_at_step", step);
            break;
        }
    }

    let advice = stopped.expect("budget must trigger");
    match &advice {
        Advice::EnergyExhausted { joules } => {
            println!(
                "stopped: energy budget reached ({:.2} kWh consumed)",
                joules / 3.6e6
            );
            run.log_output_param("stop_reason", "energy_budget");
        }
        Advice::Plateaued {
            best_loss,
            stale_for,
        } => {
            println!("stopped: loss plateaued at {best_loss:.4} for {stale_for} steps");
            run.log_output_param("stop_reason", "plateau");
        }
        other => println!("stopped: {other:?}"),
    }

    let report = run.finish()?;
    println!(
        "provenance with {} metric samples at {}",
        report.metric_samples,
        report.prov_json_path.display()
    );

    // The recorded energy totals agree with the budget decision.
    let doc = experiment.load_run_document("budgeted")?;
    let summary = yprov4ml::compare::RunSummary::from_document(&doc).unwrap();
    println!(
        "recorded total: {} kWh (device {})",
        summary.params["energy.total_kwh"], summary.params["energy.device"]
    );
    Ok(())
}
