//! Quickstart: the MLflow-style logging surface, end to end.
//!
//! Logs parameters, metrics and artifacts for a toy "training run",
//! writes the PROV-JSON provenance file, renders it to Graphviz DOT,
//! and reads the lineage of the produced model back out of the graph.
//!
//! ```text
//! cargo run -p integration --example quickstart
//! ```

use prov_graph::{to_dot, DotOptions, ProvGraph};
use prov_model::QName;
use yprov4ml::model::{Context, Direction};
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_quickstart");
    std::fs::remove_dir_all(&base).ok();

    // 1. An experiment groups runs; a run is one training execution.
    let experiment = Experiment::new("quickstart", &base)?;
    let run = experiment.start_run("run-0001")?;

    // 2. Parameters: one-time configuration (inputs by default).
    run.log_param("learning_rate", 1e-3);
    run.log_param("batch_size", 64);
    run.log_param("optimizer", "adamw");

    // 3. Artifacts: the input dataset and, later, the trained model.
    run.log_artifact_bytes("dataset.bin", &vec![7u8; 4096], Direction::Input)?;

    // 4. Metrics: values that evolve during training, per context.
    run.start_context(Context::Training);
    for step in 0..200u64 {
        let epoch = (step / 50) as u32;
        let loss = 2.0 / (1.0 + step as f64 * 0.05);
        run.log_metric("loss", Context::Training, step, epoch, loss);
        if step % 50 == 49 {
            run.log_metric(
                "accuracy",
                Context::Validation,
                step,
                epoch,
                0.5 + epoch as f64 * 0.1,
            );
        }
    }
    run.end_context(Context::Training);

    // 5. The trained model is an output artifact.
    run.log_model("model.ckpt", b"...pretend weights...")?;
    run.log_output_param("best_accuracy", 0.8);

    // 6. Finish: provenance files are written.
    let report = run.finish()?;
    println!("provenance written to {}", report.prov_json_path.display());
    println!(
        "  {} params, {} metric samples, {} artifacts, {} bytes of PROV-JSON",
        report.params, report.metric_samples, report.artifacts, report.prov_json_bytes
    );

    // 7. Consume the provenance: lineage of the model.
    let doc = experiment.load_run_document("run-0001")?;
    let issues = prov_model::validate(&doc);
    println!("validation findings: {}", issues.len());

    let graph = ProvGraph::new(&doc);
    let model = QName::new("exp", "run-0001/artifact/model.ckpt");
    println!("lineage of model.ckpt:");
    for ancestor in graph.ancestors(&model) {
        println!("  <- {ancestor}");
    }

    // 8. Render the Figure-1-style picture.
    let dot_path = base.join("run-0001.dot");
    std::fs::write(&dot_path, to_dot(&doc, &DotOptions::default()))?;
    println!("DOT graph written to {}", dot_path.display());

    Ok(())
}
