//! Hyperparameter tuning over provenance (paper §3.4).
//!
//! Sweeps batch size and communication overlap on the simulator, logs
//! every run with yProv4ML, then answers the §3.4 questions *from the
//! stored provenance alone*: which parameters varied, which run was
//! best, and which previous run is most similar to a planned one.
//!
//! ```text
//! cargo run -p integration --example hyperparameter_search --release
//! ```

use integration::simulate_with_provenance;
use train_sim::comm::DdpCommConfig;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::compare::{best_run, compare_runs, most_similar, RunSummary};
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_hparam_search");
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("hparam-search", &base)?;

    let batches = [16u32, 32, 64];
    let overlaps = [0.0f64, 0.6];

    // Run the grid, keeping only the provenance files.
    for &batch in &batches {
        for &overlap in &overlaps {
            let cfg = SimConfig {
                model: ModelConfig::sized(Architecture::SwinV2, 200_000_000),
                machine: MachineConfig::frontier_like(),
                dataset: DatasetSpec::tiny(20_000),
                gpus: 16,
                per_gpu_batch: batch,
                epochs: 3,
                comm: DdpCommConfig {
                    overlap_fraction: overlap,
                    ..Default::default()
                },
                cutoff: WalltimeCutoff::Unlimited,
                exercise_collective: false,
                phase: train_sim::sim::Phase::PreTraining,
                grad_accumulation: 1,
                resume_from: None,
                faults: Default::default(),
            };
            let name = format!("b{batch}-ov{}", (overlap * 100.0) as u32);
            let run = experiment.start_run(&name)?;
            run.log_param("comm_overlap", overlap);
            simulate_with_provenance(cfg, &run, 10).map_err(std::io::Error::other)?;
            run.finish()?;
        }
    }

    // Reload everything from disk — the knowledge base of §3.2.
    let mut summaries = Vec::new();
    for name in experiment.list_runs()? {
        let doc = experiment.load_run_document(&name)?;
        if let Some(mut s) = RunSummary::from_document(&doc) {
            // Score = walltime × energy from the logged output params.
            let walltime: f64 = s
                .params
                .get("walltime_s")
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::NAN);
            let energy: f64 = s
                .params
                .get("energy_kwh")
                .and_then(|v| v.parse().ok())
                .unwrap_or(f64::NAN);
            s.metrics.insert("cost".into(), walltime * energy);
            summaries.push(s);
        }
    }

    // Which parameters actually varied, and how did the cost respond?
    let table = compare_runs(&summaries, "cost");
    println!("varying parameters: {:?}", table.varying_params);
    println!("{:<12} {:<24} {:>12}", "run", "varying values", "s·kWh");
    for (run, values, metric) in &table.rows {
        println!(
            "{:<12} {:<24} {:>12}",
            run,
            values.join(", "),
            metric
                .map(|m| format!("{m:.2}"))
                .unwrap_or_else(|| "-".into())
        );
    }

    if let Some(best) = best_run(&summaries, "cost") {
        println!(
            "\nbest configuration: {} (batch {}, overlap {})",
            best.run, best.params["per_gpu_batch"], best.params["comm_overlap"]
        );
    }

    // §3.3: a planned run — find the most similar stored one.
    let planned = RunSummary {
        run: "planned".into(),
        input_params: Default::default(),
        params: summaries[0]
            .params
            .clone()
            .into_iter()
            .map(|(k, v)| {
                if k == "per_gpu_batch" {
                    (k, "64".to_string())
                } else {
                    (k, v)
                }
            })
            .collect(),
        metrics: Default::default(),
        outputs: Vec::new(),
    };
    let ranked = most_similar(&planned, &summaries);
    if let Some((closest, score)) = ranked.first() {
        println!(
            "\nmost similar prior run to the planned config: {} (similarity {:.2})",
            closest.run, score
        );
        if let Some(loss) = closest.metrics.get("training/loss") {
            println!("  its final loss was {loss:.4} — a free estimate before spending node-hours");
        }
    }

    Ok(())
}
