//! Multi-level provenance for a full ML pipeline (paper §3.3:
//! "longer machine learning training pipelines, such as those where a
//! dataset is preprocessed prior to model fitting", and the yProv
//! framework's "multi-level provenance management").
//!
//! A yprov4wfs workflow orchestrates preprocess → train → evaluate; the
//! *train* task runs the distributed-training simulator under yProv4ML,
//! so the same execution produces workflow-level AND run-level
//! provenance. Both merge into one document whose lineage spans the
//! levels.
//!
//! ```text
//! cargo run -p integration --example ml_pipeline --release
//! ```

use integration::simulate_with_provenance;
use prov_graph::ProvGraph;
use prov_model::QName;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{Phase, SimConfig, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};
use yprov4ml::Experiment;
use yprov4wfs::{TaskOutcome, Workflow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_pipeline");
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("pipeline", &base)?;
    let experiment_for_task = experiment.clone();

    let mut wf = Workflow::new("modis-pipeline");

    // Stage 1: preprocessing — produces a normalized patch manifest.
    wf.task("preprocess", [], |_| {
        let manifest = (0..1000u32)
            .map(|i| format!("patch-{i:05}.norm"))
            .collect::<Vec<_>>()
            .join("\n");
        Ok(TaskOutcome::new()
            .output("manifest.txt", manifest.into_bytes())
            .param("patches", 1000)
            .param("normalization", "per-channel z-score"))
    });

    // Stage 2: training — the simulator under run-level provenance.
    wf.task("train", ["preprocess"], move |ctx| {
        let manifest = ctx
            .input("preprocess", "manifest.txt")
            .ok_or("no manifest")?;
        let patches = manifest.split(|&b| b == b'\n').count() as u64;

        let run = experiment_for_task
            .start_run("train-task")
            .map_err(|e| e.to_string())?;
        run.log_artifact_bytes("manifest.txt", manifest, yprov4ml::model::Direction::Input)
            .map_err(|e| e.to_string())?;
        let cfg = SimConfig {
            model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::tiny(patches * 20),
            gpus: 8,
            per_gpu_batch: 32,
            epochs: 3,
            comm: Default::default(),
            cutoff: WalltimeCutoff::Unlimited,
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
            faults: Default::default(),
        };
        let result = simulate_with_provenance(cfg, &run, 10)?;
        run.log_model("model.ckpt", b"trained on normalized patches")
            .map_err(|e| e.to_string())?;
        run.finish().map_err(|e| e.to_string())?;

        Ok(TaskOutcome::new()
            .output("model.ckpt", b"trained on normalized patches".to_vec())
            .param("final_loss", result.final_loss)
            .param("energy_kwh", result.energy_kwh)
            .param("run_provenance", "pipeline/train-task/prov.json"))
    });

    // Stage 3: evaluation.
    wf.task("evaluate", ["train"], |ctx| {
        let model = ctx.input("train", "model.ckpt").ok_or("no model")?;
        Ok(TaskOutcome::new()
            .output(
                "report.txt",
                format!("evaluated {} bytes of weights", model.len()).into_bytes(),
            )
            .param("accuracy", 0.87))
    });

    let report = yprov4wfs::run(wf).map_err(std::io::Error::other)?;
    println!("workflow succeeded: {}", report.succeeded());
    for (task, status) in &report.statuses {
        println!("  {task:<12} {status:?}");
    }

    // Merge workflow-level and run-level provenance into one document.
    let mut combined = report.document.clone();
    combined.merge(&experiment.load_run_document("train-task")?)?;
    let path = base.join("pipeline-prov.json");
    std::fs::write(&path, combined.to_json_string_pretty()?)?;

    // Cross-level lineage: the evaluation report traces back through
    // the workflow to the preprocessed manifest...
    let graph = ProvGraph::new(&combined);
    let eval_report = QName::new("wf", "artifact/evaluate/report.txt");
    let ancestors = graph.ancestors(&eval_report);
    println!(
        "\nlineage of the evaluation report ({} ancestors):",
        ancestors.len()
    );
    for a in ancestors.iter().filter(|a| a.local().contains("artifact")) {
        println!("  <- {a}");
    }
    // ...while the run-level document hangs off the same merged graph.
    let run_model = QName::new("exp", "train-task/artifact/model.ckpt");
    println!(
        "run-level model entity present in the merged document: {}",
        combined.get(&run_model).is_some()
    );
    println!("\ncombined provenance at {}", path.display());
    Ok(())
}
