//! The yProv ecosystem round trip: producer → service → explorer.
//!
//! Generates provenance with yProv4ML (the *producer*), uploads it to
//! the yProv-style REST service over real HTTP (the *consumer*), then
//! queries lineage and renders the explorer's document table.
//!
//! ```text
//! cargo run -p integration --example provenance_service
//! ```

use yprov4ml::model::{Context, Direction};
use yprov4ml::Experiment;
use yprov_service::http::request;
use yprov_service::{DocumentStore, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_service_demo");
    std::fs::remove_dir_all(&base).ok();

    // Producer side: two runs with different outcomes.
    let experiment = Experiment::new("service-demo", &base)?;
    for (name, lr) in [("run-a", 0.01), ("run-b", 0.001)] {
        let run = experiment.start_run(name)?;
        run.log_param("learning_rate", lr);
        run.log_artifact_bytes("dataset.bin", b"data", Direction::Input)?;
        for step in 0..50u64 {
            run.log_metric(
                "loss",
                Context::Training,
                step,
                0,
                1.0 / (1.0 + step as f64 * lr),
            );
        }
        run.log_model("model.ckpt", format!("weights-{name}").as_bytes())?;
        run.finish()?;
    }

    // Consumer side: the service.
    let store = DocumentStore::new();
    let server = Server::bind("127.0.0.1:0", store.clone(), ServerConfig::default())?;
    let addr = server.addr();
    println!("yProv service listening on http://{addr}");

    // Upload both provenance files over HTTP.
    let mut ids = Vec::new();
    for name in experiment.list_runs()? {
        let json = std::fs::read_to_string(experiment.dir().join(&name).join("prov.json"))?;
        let (status, body) = request(addr, "POST", "/api/v0/documents", Some(&json))?;
        assert_eq!(status, 201, "{body}");
        let v: serde_json::Value = serde_json::from_str(&body)?;
        let id = v["id"].as_str().unwrap().to_string();
        println!("uploaded {name} as {id}");
        ids.push((name, id));
    }

    // Lineage query over HTTP: where did run-a's model come from?
    let (name, id) = &ids[0];
    let focus = format!("exp:{name}/artifact/model.ckpt");
    let encoded = focus.replace(':', "%3A").replace('/', "%2F");
    let (status, body) = request(
        addr,
        "GET",
        &format!("/api/v0/documents/{id}/ancestors?focus={encoded}"),
        None,
    )?;
    assert_eq!(status, 200, "{body}");
    println!("\nlineage of {focus}:");
    let v: serde_json::Value = serde_json::from_str(&body)?;
    for a in v["ancestors"].as_array().unwrap() {
        println!("  <- {}", a.as_str().unwrap());
    }

    // Explorer view across everything the service holds.
    println!("\n--- explorer ---");
    print!(
        "{}",
        yprov_service::explorer::render_table(&yprov_service::explorer::summarize(&store))
    );

    server.shutdown();
    Ok(())
}
