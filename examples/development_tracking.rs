//! Development tracking (paper §3.1).
//!
//! Simulates a developer iterating on a training script: each edit is
//! followed by a run whose provenance records the source-tree hash (via
//! the snapshot plugin), so every result is pinned to the exact code
//! version that produced it. Finally the two runs' provenance documents
//! are diffed to show what changed between them, and the run directory
//! is packaged as an RO-Crate for sharing.
//!
//! ```text
//! cargo run -p integration --example development_tracking
//! ```

use prov_graph::diff;
use yprov4ml::model::{Context, Direction};
use yprov4ml::plugins::SourceSnapshotPlugin;
use yprov4ml::run::RunOptions;
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("yprov4ml_dev_tracking");
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base)?;

    // The "project" being developed.
    let project = base.join("project");
    std::fs::create_dir_all(&project)?;
    std::fs::write(project.join("train.py"), "lr = 0.01\nepochs = 5\n")?;

    let experiment = Experiment::new("dev-tracking", &base)?;

    // Run 1: the original script.
    let run_v1 = do_run(&experiment, "v1", &project, 0.01)?;

    // The developer edits the script...
    std::fs::write(
        project.join("train.py"),
        "lr = 0.001  # lowered\nepochs = 5\n",
    )?;

    // Run 2: after the edit.
    let run_v2 = do_run(&experiment, "v2", &project, 0.001)?;

    // What changed between the two runs, according to provenance alone?
    let doc1 = experiment.load_run_document(&run_v1)?;
    let doc2 = experiment.load_run_document(&run_v2)?;
    let d = diff(&doc1, &doc2);
    println!("--- provenance diff v1 -> v2 ---");
    for line in d.summary().lines() {
        // Element ids embed the run name, so the diff is verbose; show
        // the informative attribute-level lines.
        if line.contains("param/") || line.contains("tree_hash") || line.contains("loss") {
            println!("{line}");
        }
    }

    // The source hashes prove which code version each result came from.
    for (name, doc) in [(&run_v1, &doc1), (&run_v2, &doc2)] {
        let s = yprov4ml::compare::RunSummary::from_document(doc).unwrap();
        println!(
            "{name}: source tree {}..., learning_rate {}, final loss {}",
            &s.params["source.tree_hash"][..12],
            s.params["learning_rate"],
            s.metrics
                .get("training/loss")
                .map(|v| format!("{v:.4}"))
                .unwrap_or_default()
        );
    }

    // Package run v2 for sharing: artifacts + provenance as an RO-Crate.
    let run_dir = experiment.dir().join(&run_v2);
    let crate_ = rocrate::validate::wrap_directory(
        &run_dir,
        "dev-tracking v2",
        "Training run with full development provenance",
    )?;
    let issues = rocrate::validate_crate(&run_dir)?;
    println!(
        "\nRO-Crate written: {} files described, {} validation issues",
        crate_.file_ids().len(),
        issues.len()
    );

    Ok(())
}

/// One development iteration: snapshot the source, train, log results.
fn do_run(
    experiment: &Experiment,
    name: &str,
    project: &std::path::Path,
    lr: f64,
) -> Result<String, Box<dyn std::error::Error>> {
    let run = experiment.start_run_with(
        name,
        RunOptions {
            plugins: vec![Box::new(SourceSnapshotPlugin::new(project))],
            ..Default::default()
        },
    )?;
    run.log_param("learning_rate", lr);
    run.log_artifact_file(project.join("train.py"), Direction::Input)?;

    // A toy "training" whose outcome depends on the learning rate.
    for step in 0..100u64 {
        let loss = 1.0 / (1.0 + step as f64 * lr * 10.0);
        run.log_metric("loss", Context::Training, step, 0, loss);
    }
    run.log_model("model.ckpt", format!("weights@lr={lr}").as_bytes())?;
    run.finish()?;
    Ok(name.to_string())
}
