//! Property tests for [`VirtualClock`]: monotonicity under arbitrary
//! interleavings of `advance` / `set_s`, and rejection of non-finite
//! input without disturbing the reading.

use energy_monitor::sampler::VirtualClock;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Advance(f64),
    Set(f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0..1.0e7f64).prop_map(Op::Advance),
        (0.0..1.0e13f64).prop_map(Op::Set),
    ]
}

proptest! {
    /// The reading never decreases, whatever mix of advances and
    /// absolute sets (including backwards sets, which are ignored).
    #[test]
    fn clock_is_monotonic(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let clock = VirtualClock::manual();
        let mut last = clock.now_s();
        for op in ops {
            match op {
                Op::Advance(s) => clock.advance(s),
                Op::Set(s) => clock.set_s(s),
            }
            let now = clock.now_s();
            prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }

    /// `advance` moves the clock by the requested amount (within the
    /// microsecond quantization) and `set_s` never undershoots an
    /// already-later clock.
    #[test]
    fn advance_accumulates(deltas in proptest::collection::vec(0.0..1.0e4f64, 1..50)) {
        let clock = VirtualClock::manual();
        let mut expected = 0u64;
        for d in deltas {
            clock.advance(d);
            expected += (d * 1e6) as u64;
        }
        let got_us = (clock.now_s() * 1e6).round() as u64;
        // Each cast truncates below a microsecond; the sum matches exactly
        // because both sides truncate identically.
        prop_assert_eq!(got_us, expected);
    }

    /// Non-finite input is dropped (release) or panics (debug); either
    /// way a finite reading taken before stays valid afterwards. This
    /// proptest only runs the release-mode contract.
    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_never_moves_the_clock(base in 0.0..1.0e6f64) {
        let clock = VirtualClock::manual();
        clock.advance(base);
        let before = clock.now_s();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            clock.advance(bad);
            clock.set_s(bad);
            prop_assert_eq!(clock.now_s(), before);
        }
    }
}
