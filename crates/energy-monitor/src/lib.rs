//! # energy-monitor
//!
//! Power/energy telemetry substrate for the training simulator and the
//! provenance layer.
//!
//! On Frontier the paper's library reads hardware counters (ROCm-SMI per
//! MI250X GCD). Those counters do not exist here, so this crate models
//! them: a [`device::PowerModel`] maps instantaneous utilization to
//! watts using published device envelopes, a [`sampler::PowerSampler`]
//! polls any [`sampler::PowerSource`] on a background thread (or under a
//! virtual clock for deterministic tests), and [`energy`] integrates the
//! sample stream into joules / kWh exactly the way the real tool
//! integrates SMI readings.
//!
//! ```
//! use energy_monitor::device::{PowerModel, mi250x_gcd};
//! use energy_monitor::energy::EnergyAccumulator;
//!
//! let gcd = mi250x_gcd();
//! let mut acc = EnergyAccumulator::new();
//! // One simulated second at 100% utilization, sampled every 100 ms.
//! for i in 0..=10 {
//!     acc.add_sample(i as f64 * 0.1, gcd.power_at(1.0));
//! }
//! let joules = acc.joules();
//! assert!((joules - gcd.power_at(1.0)).abs() < 1e-9);
//! ```

pub mod carbon;
pub mod counters;
pub mod device;
pub mod energy;
pub mod sampler;

pub use counters::{FlopsCounter, UtilizationGauge};
pub use device::{epyc_7a53, mi250x_gcd, PowerModel};
pub use energy::{joules_to_kwh, EnergyAccumulator};
pub use sampler::{PowerSample, PowerSampler, PowerSource, VirtualClock};
