//! Carbon-intensity conversion.
//!
//! The paper's §3 use cases frame provenance as the substrate for
//! energy-*and-emissions*-aware training decisions; the conversion from
//! kWh to grams of CO₂-equivalent depends on the grid feeding the
//! machine.

use serde::{Deserialize, Serialize};

/// A grid carbon intensity in gCO₂e per kWh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonIntensity {
    /// Grams of CO₂-equivalent emitted per kilowatt-hour consumed.
    pub g_per_kwh: f64,
}

impl CarbonIntensity {
    /// A custom intensity; must be non-negative and finite.
    pub fn new(g_per_kwh: f64) -> Self {
        assert!(
            g_per_kwh.is_finite() && g_per_kwh >= 0.0,
            "carbon intensity must be a non-negative number"
        );
        CarbonIntensity { g_per_kwh }
    }

    /// US Tennessee Valley grid (~ where Frontier lives), 2024-ish mix.
    pub fn tennessee_valley() -> Self {
        CarbonIntensity::new(415.0)
    }

    /// EU average mix.
    pub fn eu_average() -> Self {
        CarbonIntensity::new(244.0)
    }

    /// A hydro-dominated grid.
    pub fn hydro() -> Self {
        CarbonIntensity::new(24.0)
    }

    /// Emissions in grams for a consumption in kWh.
    pub fn grams_for_kwh(&self, kwh: f64) -> f64 {
        self.g_per_kwh * kwh.max(0.0)
    }

    /// Emissions in kilograms for a consumption in joules.
    pub fn kg_for_joules(&self, joules: f64) -> f64 {
        self.grams_for_kwh(crate::energy::joules_to_kwh(joules)) / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_scales_linearly() {
        let ci = CarbonIntensity::new(500.0);
        assert!((ci.grams_for_kwh(2.0) - 1000.0).abs() < 1e-9);
        assert_eq!(ci.grams_for_kwh(-1.0), 0.0);
    }

    #[test]
    fn joules_path_matches_kwh_path() {
        let ci = CarbonIntensity::tennessee_valley();
        let kwh = 3.0;
        let joules = kwh * 3_600_000.0;
        assert!((ci.kg_for_joules(joules) * 1000.0 - ci.grams_for_kwh(kwh)).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        assert!(CarbonIntensity::hydro().g_per_kwh < CarbonIntensity::eu_average().g_per_kwh);
        assert!(
            CarbonIntensity::eu_average().g_per_kwh < CarbonIntensity::tennessee_valley().g_per_kwh
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_intensity() {
        CarbonIntensity::new(-1.0);
    }
}
