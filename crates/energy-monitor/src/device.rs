//! Device power models.
//!
//! A [`PowerModel`] maps utilization (0..=1) to instantaneous draw in
//! watts. The mapping is affine between an idle floor and a peak
//! envelope with a mild super-linear bend (dynamic power grows faster
//! than utilization because higher occupancy raises clocks and voltage),
//! which matches the shape of published MI250X power traces well enough
//! for trade-off studies.

use serde::{Deserialize, Serialize};

/// An affine-plus-bend utilization → watts model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Human-readable device name.
    pub name: String,
    /// Draw at zero utilization (fans, HBM refresh, leakage).
    pub idle_w: f64,
    /// Draw at full sustained utilization.
    pub peak_w: f64,
    /// Bend exponent: 1.0 = linear; >1 pushes draw towards the top end.
    pub gamma: f64,
}

impl PowerModel {
    /// Builds a model; `peak_w` must be at least `idle_w` and both
    /// non-negative, `gamma` positive.
    pub fn new(name: impl Into<String>, idle_w: f64, peak_w: f64, gamma: f64) -> Self {
        assert!(idle_w >= 0.0 && peak_w >= idle_w, "peak must dominate idle");
        assert!(gamma > 0.0, "gamma must be positive");
        PowerModel {
            name: name.into(),
            idle_w,
            peak_w,
            gamma,
        }
    }

    /// Instantaneous draw at a utilization in `[0, 1]` (clamped).
    pub fn power_at(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_w + (self.peak_w - self.idle_w) * u.powf(self.gamma)
    }

    /// Energy in joules for holding `utilization` for `seconds`.
    pub fn energy_j(&self, utilization: f64, seconds: f64) -> f64 {
        self.power_at(utilization) * seconds.max(0.0)
    }
}

/// One Graphics Compute Die of an AMD Instinct MI250X.
///
/// The MI250X module is rated at 560 W for two GCDs; Frontier treats
/// each GCD as one GPU (the paper trains on "8 GPUs per node" = 8 GCDs).
pub fn mi250x_gcd() -> PowerModel {
    PowerModel::new("MI250X-GCD", 92.0, 280.0, 1.25)
}

/// The 64-core AMD EPYC 7A53 "Trento" host CPU of a Frontier node.
pub fn epyc_7a53() -> PowerModel {
    PowerModel::new("EPYC-7A53", 95.0, 225.0, 1.1)
}

/// Node DRAM + fabric overhead, folded into one pseudo-device.
pub fn node_overhead() -> PowerModel {
    PowerModel::new("node-overhead", 120.0, 160.0, 1.0)
}

/// Aggregate draw of one Frontier-like node: 8 GCDs at `gpu_util`, the
/// host CPU at `cpu_util`, plus fixed node overhead.
pub fn frontier_node_power(gpu_util: f64, cpu_util: f64) -> f64 {
    8.0 * mi250x_gcd().power_at(gpu_util)
        + epyc_7a53().power_at(cpu_util)
        + node_overhead().power_at(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_and_peak_anchors() {
        let m = mi250x_gcd();
        assert_eq!(m.power_at(0.0), m.idle_w);
        assert!((m.power_at(1.0) - m.peak_w).abs() < 1e-9);
    }

    #[test]
    fn clamps_out_of_range_utilization() {
        let m = mi250x_gcd();
        assert_eq!(m.power_at(-3.0), m.idle_w);
        assert!((m.power_at(7.0) - m.peak_w).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_utilization() {
        let m = epyc_7a53();
        let mut prev = -1.0;
        for i in 0..=100 {
            let p = m.power_at(i as f64 / 100.0);
            assert!(p >= prev, "power must not decrease with utilization");
            prev = p;
        }
    }

    #[test]
    fn superlinear_bend() {
        let m = mi250x_gcd();
        // With gamma > 1, half utilization draws less than the midpoint.
        let mid = (m.idle_w + m.peak_w) / 2.0;
        assert!(m.power_at(0.5) < mid);
    }

    #[test]
    fn energy_scales_with_time() {
        let m = mi250x_gcd();
        let e1 = m.energy_j(0.8, 10.0);
        let e2 = m.energy_j(0.8, 20.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(m.energy_j(0.8, -5.0), 0.0);
    }

    #[test]
    fn frontier_node_in_plausible_envelope() {
        // Idle node: somewhere above 1 kW (8 GCD floors + CPU + overhead).
        let idle = frontier_node_power(0.0, 0.0);
        assert!(idle > 900.0 && idle < 1_500.0, "idle draw {idle}");
        // Flat-out node: below the 4 kW node budget but above 2 kW.
        let busy = frontier_node_power(1.0, 0.6);
        assert!(busy > 2_000.0 && busy < 4_000.0, "busy draw {busy}");
    }

    #[test]
    #[should_panic(expected = "peak must dominate idle")]
    fn rejects_inverted_envelope() {
        PowerModel::new("bad", 100.0, 50.0, 1.0);
    }
}
