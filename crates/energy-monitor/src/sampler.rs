//! Background power sampling.
//!
//! [`PowerSampler`] polls a [`PowerSource`] the way the paper's library
//! polls ROCm-SMI: on a background thread at a fixed interval, appending
//! `(time, watts)` samples to a shared buffer and integrating energy
//! online. Time comes from a [`VirtualClock`], which either follows the
//! wall clock or is advanced manually — the latter makes sampling fully
//! deterministic for the simulator and for tests.

use crate::energy::EnergyAccumulator;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Anything that can report instantaneous power draw in watts.
pub trait PowerSource: Send + Sync {
    /// Current draw in watts.
    fn watts(&self) -> f64;
    /// Device label used in metric names.
    fn label(&self) -> String {
        "device".to_string()
    }
}

impl<F: Fn() -> f64 + Send + Sync> PowerSource for F {
    fn watts(&self) -> f64 {
        self()
    }
}

/// One collected sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Seconds on the sampler's clock.
    pub t_s: f64,
    /// Observed draw.
    pub watts: f64,
}

/// A clock that is either wall-time-based or manually advanced.
///
/// Internally microseconds in an atomic; `advance` makes simulated time
/// visible to the sampling thread without locks.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at zero, advanced manually.
    pub fn manual() -> Arc<Self> {
        Arc::new(VirtualClock::default())
    }

    /// Current reading in seconds.
    pub fn now_s(&self) -> f64 {
        self.micros.load(Ordering::Acquire) as f64 / 1e6
    }

    /// Advances the clock (manual mode).
    ///
    /// Non-finite `seconds` is a caller bug: it panics under
    /// `debug_assertions` and is dropped (no movement) in release
    /// builds — the previous behaviour cast `NaN as u64` to `0`
    /// silently, and `+inf` wrapped the counter. The reading saturates
    /// at `u64::MAX` microseconds instead of wrapping.
    pub fn advance(&self, seconds: f64) {
        debug_assert!(seconds.is_finite(), "non-finite clock advance: {seconds}");
        if !seconds.is_finite() {
            return;
        }
        assert!(seconds >= 0.0, "clock cannot go backwards");
        let delta = (seconds * 1e6) as u64; // saturating float-to-int cast
        let _ = self
            .micros
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                Some(cur.saturating_add(delta))
            });
    }

    /// Sets an absolute reading, which must not move backwards
    /// (backwards sets are ignored, keeping the clock monotonic).
    ///
    /// Non-finite `seconds` panics under `debug_assertions` and is
    /// dropped in release builds; negative readings clamp to zero and
    /// the conversion saturates at `u64::MAX` microseconds.
    pub fn set_s(&self, seconds: f64) {
        debug_assert!(seconds.is_finite(), "non-finite clock reading: {seconds}");
        if !seconds.is_finite() {
            return;
        }
        let new = (seconds * 1e6) as u64;
        let mut cur = self.micros.load(Ordering::Acquire);
        loop {
            if new < cur {
                return;
            }
            match self
                .micros
                .compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Shared state between the sampler thread and its handle.
struct SamplerShared {
    samples: Mutex<Vec<PowerSample>>,
    energy: Mutex<EnergyAccumulator>,
    stop: AtomicBool,
}

/// A background power sampler.
///
/// Dropping the sampler stops the thread.
pub struct PowerSampler {
    shared: Arc<SamplerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
    clock: Arc<VirtualClock>,
}

impl PowerSampler {
    /// Spawns a sampling thread polling `source` every `interval`.
    ///
    /// Timestamps are read from `clock`; to sample simulated time,
    /// advance the clock from the simulation loop. The poll cadence
    /// itself is wall-time (`interval`), so with a manual clock the
    /// effective resolution is `interval` polls per wall tick.
    pub fn spawn(
        source: Arc<dyn PowerSource>,
        clock: Arc<VirtualClock>,
        interval: Duration,
    ) -> Self {
        let shared = Arc::new(SamplerShared {
            samples: Mutex::new(Vec::new()),
            energy: Mutex::new(EnergyAccumulator::new()),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let thread_clock = Arc::clone(&clock);
        let thread = std::thread::Builder::new()
            .name("power-sampler".into())
            .spawn(move || {
                while !thread_shared.stop.load(Ordering::Acquire) {
                    let sample = PowerSample {
                        t_s: thread_clock.now_s(),
                        watts: source.watts(),
                    };
                    thread_shared.samples.lock().push(sample);
                    thread_shared
                        .energy
                        .lock()
                        .add_sample(sample.t_s, sample.watts);
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn sampler thread");
        PowerSampler {
            shared,
            thread: Some(thread),
            clock,
        }
    }

    /// A sampler with no background thread: call [`Self::sample_now`]
    /// from the simulation loop instead. Fully deterministic.
    pub fn manual(clock: Arc<VirtualClock>) -> Self {
        PowerSampler {
            shared: Arc::new(SamplerShared {
                samples: Mutex::new(Vec::new()),
                energy: Mutex::new(EnergyAccumulator::new()),
                stop: AtomicBool::new(true),
            }),
            thread: None,
            clock,
        }
    }

    /// Takes one sample immediately (works in both modes).
    pub fn sample_now(&self, watts: f64) {
        let sample = PowerSample {
            t_s: self.clock.now_s(),
            watts,
        };
        self.shared.samples.lock().push(sample);
        self.shared
            .energy
            .lock()
            .add_sample(sample.t_s, sample.watts);
    }

    /// Stops the background thread (if any) and returns all samples with
    /// the final energy accumulator.
    pub fn finish(mut self) -> (Vec<PowerSample>, EnergyAccumulator) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let samples = std::mem::take(&mut *self.shared.samples.lock());
        let energy = self.shared.energy.lock().clone();
        (samples, energy)
    }

    /// Snapshot of the integrated energy so far (joules).
    pub fn joules_so_far(&self) -> f64 {
        self.shared.energy.lock().joules()
    }

    /// Number of samples collected so far.
    pub fn sample_count(&self) -> usize {
        self.shared.samples.lock().len()
    }

    /// The sampler's clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }
}

impl Drop for PowerSampler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_monotonically() {
        let clock = VirtualClock::manual();
        assert_eq!(clock.now_s(), 0.0);
        clock.advance(1.5);
        assert!((clock.now_s() - 1.5).abs() < 1e-6);
        clock.set_s(1.0); // backwards set is ignored
        assert!((clock.now_s() - 1.5).abs() < 1e-6);
        clock.set_s(3.0);
        assert!((clock.now_s() - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "clock cannot go backwards")]
    fn negative_advance_panics() {
        VirtualClock::manual().advance(-1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite clock advance")]
    fn nan_advance_panics_in_debug() {
        VirtualClock::manual().advance(f64::NAN);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite clock reading")]
    fn infinite_set_panics_in_debug() {
        VirtualClock::manual().set_s(f64::INFINITY);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn non_finite_input_dropped_in_release() {
        let clock = VirtualClock::manual();
        clock.advance(1.0);
        clock.advance(f64::NAN);
        clock.advance(f64::INFINITY);
        clock.set_s(f64::NAN);
        clock.set_s(f64::NEG_INFINITY);
        assert!((clock.now_s() - 1.0).abs() < 1e-9, "dropped, not applied");
    }

    #[test]
    fn advance_saturates_instead_of_wrapping() {
        let clock = VirtualClock::manual();
        // Two huge finite advances would wrap a fetch_add; the clock
        // must pin at u64::MAX micros instead.
        let huge = (u64::MAX / 2) as f64 / 1e6 * 1.5;
        clock.advance(huge);
        let once = clock.now_s();
        clock.advance(huge);
        assert!(clock.now_s() >= once, "saturation must not go backwards");
        assert!((clock.now_s() - u64::MAX as f64 / 1e6).abs() < 1e6);
    }

    #[test]
    fn manual_sampler_is_deterministic() {
        let clock = VirtualClock::manual();
        let sampler = PowerSampler::manual(Arc::clone(&clock));
        for i in 0..=10 {
            sampler.sample_now(200.0);
            if i < 10 {
                clock.advance(0.5);
            }
        }
        let (samples, energy) = sampler.finish();
        assert_eq!(samples.len(), 11);
        assert!((energy.joules() - 200.0 * 5.0).abs() < 1e-6);
    }

    #[test]
    fn background_sampler_collects_and_stops() {
        let clock = VirtualClock::manual();
        let util = Arc::new(AtomicU64::new(250));
        let src_util = Arc::clone(&util);
        let source: Arc<dyn PowerSource> =
            Arc::new(move || src_util.load(Ordering::Relaxed) as f64);
        let sampler = PowerSampler::spawn(source, Arc::clone(&clock), Duration::from_millis(1));
        // Advance virtual time while the thread polls.
        for _ in 0..50 {
            clock.advance(0.01);
            std::thread::sleep(Duration::from_millis(1));
        }
        let (samples, _) = sampler.finish();
        assert!(samples.len() > 5, "collected {}", samples.len());
        assert!(samples.iter().all(|s| s.watts == 250.0));
        // Timestamps are non-decreasing.
        for w in samples.windows(2) {
            assert!(w[1].t_s >= w[0].t_s);
        }
    }

    #[test]
    fn joules_so_far_grows() {
        let clock = VirtualClock::manual();
        let sampler = PowerSampler::manual(Arc::clone(&clock));
        sampler.sample_now(100.0);
        clock.advance(1.0);
        sampler.sample_now(100.0);
        let early = sampler.joules_so_far();
        clock.advance(1.0);
        sampler.sample_now(100.0);
        assert!(sampler.joules_so_far() > early);
        assert_eq!(sampler.sample_count(), 3);
    }

    #[test]
    fn closure_power_source() {
        let source: Arc<dyn PowerSource> = Arc::new(|| 42.0);
        assert_eq!(source.watts(), 42.0);
        assert_eq!(source.label(), "device");
    }
}
