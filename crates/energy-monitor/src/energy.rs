//! Energy integration over power samples.

/// Converts joules to kilowatt-hours.
pub fn joules_to_kwh(j: f64) -> f64 {
    j / 3_600_000.0
}

/// Converts kilowatt-hours to joules.
pub fn kwh_to_joules(kwh: f64) -> f64 {
    kwh * 3_600_000.0
}

/// Online trapezoidal integrator over `(t_seconds, watts)` samples.
///
/// Samples must arrive in non-decreasing time order; out-of-order
/// samples are ignored (and counted) rather than corrupting the
/// integral, because real SMI streams occasionally deliver stale
/// readings.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccumulator {
    first: Option<f64>,
    last: Option<(f64, f64)>,
    joules: f64,
    samples: usize,
    dropped: usize,
    peak_w: f64,
}

impl EnergyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one `(seconds, watts)` sample.
    pub fn add_sample(&mut self, t_s: f64, watts: f64) {
        if !t_s.is_finite() || !watts.is_finite() || watts < 0.0 {
            self.dropped += 1;
            return;
        }
        if let Some((pt, pw)) = self.last {
            if t_s < pt {
                self.dropped += 1;
                return;
            }
            self.joules += (t_s - pt) * (watts + pw) / 2.0;
        }
        if self.first.is_none() {
            self.first = Some(t_s);
        }
        self.last = Some((t_s, watts));
        self.samples += 1;
        self.peak_w = self.peak_w.max(watts);
    }

    /// Total integrated energy in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total integrated energy in kWh.
    pub fn kwh(&self) -> f64 {
        joules_to_kwh(self.joules)
    }

    /// Number of accepted samples.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Number of rejected (out-of-order or non-finite) samples.
    pub fn dropped_count(&self) -> usize {
        self.dropped
    }

    /// Highest accepted wattage.
    pub fn peak_watts(&self) -> f64 {
        self.peak_w
    }

    /// Mean power over the observed interval (0 when < 2 samples).
    pub fn mean_watts(&self) -> f64 {
        match (self.first, self.last) {
            (Some(t0), Some((t1, _))) if t1 > t0 => self.joules / (t1 - t0),
            _ => 0.0,
        }
    }

    /// Merges another accumulator (for per-device → per-node rollups).
    /// Energies and counters add; the sample chain does not continue.
    pub fn merge(&mut self, other: &EnergyAccumulator) {
        self.joules += other.joules;
        self.samples += other.samples;
        self.dropped += other.dropped;
        self.peak_w = self.peak_w.max(other.peak_w);
        self.first = match (self.first, other.first) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last = match (self.last, other.last) {
            (Some(a), Some(b)) => Some(if a.0 >= b.0 { a } else { b }),
            (a, b) => a.or(b),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_exactly() {
        let mut acc = EnergyAccumulator::new();
        for i in 0..=100 {
            acc.add_sample(i as f64 * 0.1, 250.0);
        }
        assert!((acc.joules() - 2500.0).abs() < 1e-9);
        assert!((acc.mean_watts() - 250.0).abs() < 1e-9);
        assert_eq!(acc.peak_watts(), 250.0);
    }

    #[test]
    fn linear_ramp_matches_closed_form() {
        let mut acc = EnergyAccumulator::new();
        // watts = 100 * t over t in [0, 10] → ∫ = 100 * 10² / 2 = 5000 J.
        for i in 0..=1000 {
            let t = i as f64 * 0.01;
            acc.add_sample(t, 100.0 * t);
        }
        assert!((acc.joules() - 5000.0).abs() < 1.0);
    }

    #[test]
    fn out_of_order_samples_dropped() {
        let mut acc = EnergyAccumulator::new();
        acc.add_sample(1.0, 100.0);
        acc.add_sample(0.5, 100.0); // stale
        acc.add_sample(2.0, 100.0);
        assert_eq!(acc.dropped_count(), 1);
        assert!((acc.joules() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nonsense_samples() {
        let mut acc = EnergyAccumulator::new();
        acc.add_sample(0.0, 100.0);
        acc.add_sample(f64::NAN, 100.0);
        acc.add_sample(1.0, f64::INFINITY);
        acc.add_sample(1.0, -5.0);
        assert_eq!(acc.dropped_count(), 3);
        assert_eq!(acc.sample_count(), 1);
    }

    #[test]
    fn single_sample_has_zero_energy() {
        let mut acc = EnergyAccumulator::new();
        acc.add_sample(5.0, 300.0);
        assert_eq!(acc.joules(), 0.0);
        assert_eq!(acc.mean_watts(), 0.0);
    }

    #[test]
    fn unit_conversions() {
        assert!((joules_to_kwh(3_600_000.0) - 1.0).abs() < 1e-12);
        assert!((kwh_to_joules(2.0) - 7_200_000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_energies() {
        let mut a = EnergyAccumulator::new();
        a.add_sample(0.0, 100.0);
        a.add_sample(1.0, 100.0);
        let mut b = EnergyAccumulator::new();
        b.add_sample(0.0, 200.0);
        b.add_sample(2.0, 200.0);
        a.merge(&b);
        assert!((a.joules() - 500.0).abs() < 1e-9);
        assert_eq!(a.peak_watts(), 200.0);
        assert_eq!(a.sample_count(), 4);
    }
}
