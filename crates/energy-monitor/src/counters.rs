//! Lock-free performance counters shared between worker threads and the
//! telemetry layer.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing FLOP counter.
///
/// Workers add the FLOPs of each kernel; the sampler reads totals and
/// rates. All operations are relaxed atomics — counters tolerate small
/// reordering, exactness matters only at quiescence.
#[derive(Debug, Default)]
pub struct FlopsCounter {
    total: AtomicU64,
}

impl FlopsCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `flops` (saturating at `u64::MAX`).
    pub fn add(&self, flops: u64) {
        let mut cur = self.total.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(flops);
            match self
                .total
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Total FLOPs so far.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Average rate over `elapsed_s` seconds (0 for non-positive spans).
    pub fn flops_per_second(&self, elapsed_s: f64) -> f64 {
        if elapsed_s > 0.0 {
            self.total() as f64 / elapsed_s
        } else {
            0.0
        }
    }
}

/// A gauge holding the current utilization of a device in `[0, 1]`.
///
/// Stored as parts-per-million in an atomic so readers never lock.
#[derive(Debug, Default)]
pub struct UtilizationGauge {
    ppm: AtomicU64,
}

impl UtilizationGauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the utilization (clamped to `[0, 1]`).
    pub fn set(&self, utilization: f64) {
        let clamped = if utilization.is_finite() {
            utilization.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.ppm
            .store((clamped * 1_000_000.0) as u64, Ordering::Release);
    }

    /// Reads the utilization.
    pub fn get(&self) -> f64 {
        self.ppm.load(Ordering::Acquire) as f64 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn flops_accumulate() {
        let c = FlopsCounter::new();
        c.add(1_000);
        c.add(500);
        assert_eq!(c.total(), 1_500);
        assert!((c.flops_per_second(3.0) - 500.0).abs() < 1e-9);
        assert_eq!(c.flops_per_second(0.0), 0.0);
    }

    #[test]
    fn flops_saturate_instead_of_wrapping() {
        let c = FlopsCounter::new();
        c.add(u64::MAX - 5);
        c.add(100);
        assert_eq!(c.total(), u64::MAX);
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let c = Arc::new(FlopsCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add(3);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.total(), 8 * 10_000 * 3);
    }

    #[test]
    fn gauge_clamps_and_roundtrips() {
        let g = UtilizationGauge::new();
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < 1e-5);
        g.set(2.0);
        assert!((g.get() - 1.0).abs() < 1e-9);
        g.set(-1.0);
        assert_eq!(g.get(), 0.0);
        g.set(f64::NAN);
        assert_eq!(g.get(), 0.0);
    }
}
