//! A small work-stealing worker pool for the finalize pipeline.
//!
//! Chunk encoding is embarrassingly parallel (every Zarr chunk and every
//! NetCDF column blob is an independent function of its input and the
//! store options), but chunk *sizes* are not uniform — the tail chunk is
//! short, constant series compress in microseconds while noisy ones cost
//! milliseconds. A fixed block split would leave workers idle behind the
//! slowest block, so each worker starts from a contiguous block of task
//! indices and steals from the back of the longest remaining queue once
//! its own runs dry.
//!
//! Determinism: the pool only schedules *which thread* runs a task, never
//! what the task computes, and [`WorkerPool::map`] returns results in
//! task-index order — so a store driving its encoders through the pool
//! produces byte-identical output at any thread count. `threads == 1`
//! degenerates to an inline serial loop on the caller's thread, exactly
//! the pre-pool behavior.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// A scoped work-stealing pool with a fixed thread budget.
///
/// The pool is a value, not a resource: threads are spawned per
/// [`WorkerPool::map`] call (via `std::thread::scope`) and joined before
/// it returns, so there is no lifecycle to manage and borrowed task
/// inputs work naturally.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool running tasks on up to `threads` worker threads
    /// (`0` is treated as `1`).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// The serial pool: every task runs inline on the caller's thread.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), ..., f(tasks - 1)` across the pool and returns
    /// the results in index order.
    ///
    /// With one thread (or at most one task) this is an inline `for`
    /// loop — no threads are spawned and no locks are taken.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || tasks <= 1 {
            return (0..tasks).map(f).collect();
        }
        let workers = self.threads.min(tasks);

        // Each worker's deque is preloaded with a contiguous block of
        // indices so the common (balanced) case never steals.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for t in 0..tasks {
            queues[t * workers / tasks].lock().push_back(t);
        }

        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(tasks));
        std::thread::scope(|s| {
            for w in 0..workers {
                let queues = &queues;
                let results = &results;
                let f = &f;
                s.spawn(move || loop {
                    let task = match queues[w].lock().pop_front() {
                        Some(t) => t,
                        None => match steal(queues, w) {
                            Some(t) => t,
                            // Tasks are never re-queued, so observing
                            // every queue empty means the remaining work
                            // is already running on other workers.
                            None => break,
                        },
                    };
                    let r = f(task);
                    results.lock().push((task, r));
                });
            }
        });

        let mut pairs = results.into_inner();
        pairs.sort_unstable_by_key(|(i, _)| *i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }

    /// Like [`WorkerPool::map`] for fallible tasks: returns the first
    /// error by task index, or `Ok(outputs)` in index order.
    pub fn try_map<R, E, F>(&self, tasks: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        self.map(tasks, f).into_iter().collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::serial()
    }
}

/// Steals from the back of the longest sibling queue, retrying across
/// victims until a task is found or every queue is empty.
fn steal(queues: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    let mut victims: Vec<(usize, usize)> = queues
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != thief)
        .map(|(i, q)| (q.lock().len(), i))
        .collect();
    victims.sort_unstable_by_key(|&(len, _)| std::cmp::Reverse(len));
    for (len, i) in victims {
        if len == 0 {
            break;
        }
        if let Some(t) = queues[i].lock().pop_back() {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            let out = pool.map(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_task_edge_cases() {
        let pool = WorkerPool::new(8);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn zero_threads_degrades_to_serial() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let runs = AtomicUsize::new(0);
        let out = pool.map(1000, |i| {
            runs.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn imbalanced_tasks_still_complete() {
        // One slow task at index 0: the other workers must steal the
        // rest of worker 0's block instead of idling.
        let pool = WorkerPool::new(4);
        let out = pool.map(64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_short_circuits_to_first_error_by_index() {
        let pool = WorkerPool::new(4);
        let res: Result<Vec<usize>, String> = pool.try_map(10, |i| {
            if i % 4 == 3 {
                Err(format!("task {i} failed"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(res.unwrap_err(), "task 3 failed");
        let ok: Result<Vec<usize>, String> = pool.try_map(10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_tasks() {
        let pool = WorkerPool::new(16);
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }
}
