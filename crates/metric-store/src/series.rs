//! In-memory representation of one metric time series.

use serde::{Deserialize, Serialize};

/// One sample of a metric: which step/epoch it belongs to, when it was
/// taken, and its value. This mirrors yProv4ML's metric records (step,
/// context epoch, wall time, value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricPoint {
    /// Global step counter at which the sample was logged.
    pub step: u64,
    /// Epoch the sample belongs to (paper data model, Figure 2).
    pub epoch: u32,
    /// Wall-clock timestamp, microseconds since the Unix epoch.
    pub time_us: i64,
    /// The metric value.
    pub value: f64,
}

/// A named metric series within one context (e.g. `loss` in `training`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Metric name (`loss`, `gpu_power_w`, ...).
    pub name: String,
    /// Context the metric was logged under (`training`, `validation`, ...).
    pub context: String,
    /// The samples, in logging order.
    pub points: Vec<MetricPoint>,
}

impl MetricSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>, context: impl Into<String>) -> Self {
        MetricSeries {
            name: name.into(),
            context: context.into(),
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, p: MetricPoint) {
        self.points.push(p);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples were logged.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The storage key `name@context` used by file-backed stores.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.context)
    }

    /// Splits the columnar views: `(steps, epochs, times, values)`.
    pub fn columns(&self) -> (Vec<u64>, Vec<u32>, Vec<i64>, Vec<f64>) {
        let mut steps = Vec::with_capacity(self.points.len());
        let mut epochs = Vec::with_capacity(self.points.len());
        let mut times = Vec::with_capacity(self.points.len());
        let mut values = Vec::with_capacity(self.points.len());
        for p in &self.points {
            steps.push(p.step);
            epochs.push(p.epoch);
            times.push(p.time_us);
            values.push(p.value);
        }
        (steps, epochs, times, values)
    }

    /// Rebuilds a series from its columns. Column lengths must match.
    pub fn from_columns(
        name: impl Into<String>,
        context: impl Into<String>,
        steps: Vec<u64>,
        epochs: Vec<u32>,
        times: Vec<i64>,
        values: Vec<f64>,
    ) -> Option<Self> {
        if steps.len() != epochs.len() || steps.len() != times.len() || steps.len() != values.len()
        {
            return None;
        }
        let points = steps
            .into_iter()
            .zip(epochs)
            .zip(times)
            .zip(values)
            .map(|(((step, epoch), time_us), value)| MetricPoint {
                step,
                epoch,
                time_us,
                value,
            })
            .collect();
        Some(MetricSeries {
            name: name.into(),
            context: context.into(),
            points,
        })
    }

    /// Descriptive statistics over the values, ignoring NaNs.
    pub fn stats(&self) -> SeriesStats {
        let mut stats = SeriesStats::default();
        let mut sum = 0.0;
        let mut finite = 0usize;
        for p in &self.points {
            if p.value.is_nan() {
                stats.nan_count += 1;
                continue;
            }
            finite += 1;
            sum += p.value;
            stats.min = stats.min.min(p.value);
            stats.max = stats.max.max(p.value);
        }
        stats.count = self.points.len();
        if finite > 0 {
            stats.mean = sum / finite as f64;
        } else {
            stats.min = f64::NAN;
            stats.max = f64::NAN;
            stats.mean = f64::NAN;
        }
        stats.last = self.points.last().map(|p| p.value);
        stats
    }

    /// Keeps only points in the given epoch range (inclusive).
    pub fn slice_epochs(&self, from: u32, to: u32) -> MetricSeries {
        MetricSeries {
            name: self.name.clone(),
            context: self.context.clone(),
            points: self
                .points
                .iter()
                .copied()
                .filter(|p| p.epoch >= from && p.epoch <= to)
                .collect(),
        }
    }

    /// Downsamples to at most `max_points` by uniform striding; useful
    /// for explorer previews of very long series.
    pub fn downsample(&self, max_points: usize) -> MetricSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let stride = self.points.len().div_ceil(max_points);
        MetricSeries {
            name: self.name.clone(),
            context: self.context.clone(),
            points: self.points.iter().copied().step_by(stride).collect(),
        }
    }
}

/// Summary statistics for a series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesStats {
    /// Total number of points (including NaNs).
    pub count: usize,
    /// Number of NaN values.
    pub nan_count: usize,
    /// Minimum finite value (NaN when none).
    pub min: f64,
    /// Maximum finite value (NaN when none).
    pub max: f64,
    /// Mean of non-NaN values (NaN when none).
    pub mean: f64,
    /// The most recent value, if any.
    pub last: Option<f64>,
}

impl Default for SeriesStats {
    fn default() -> Self {
        SeriesStats {
            count: 0,
            nan_count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            last: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> MetricSeries {
        let mut s = MetricSeries::new("loss", "training");
        for (i, &v) in values.iter().enumerate() {
            s.push(MetricPoint {
                step: i as u64,
                epoch: (i / 2) as u32,
                time_us: i as i64 * 1000,
                value: v,
            });
        }
        s
    }

    #[test]
    fn key_combines_name_and_context() {
        assert_eq!(series(&[]).key(), "loss@training");
    }

    #[test]
    fn columns_roundtrip() {
        let s = series(&[3.0, 2.0, 1.0, 0.5]);
        let (steps, epochs, times, values) = s.columns();
        let back =
            MetricSeries::from_columns("loss", "training", steps, epochs, times, values).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn from_columns_rejects_mismatched_lengths() {
        assert!(MetricSeries::from_columns(
            "m",
            "c",
            vec![1, 2],
            vec![0],
            vec![0, 0],
            vec![0.0, 0.0]
        )
        .is_none());
    }

    #[test]
    fn stats_basic() {
        let s = series(&[3.0, 1.0, 2.0]);
        let st = s.stats();
        assert_eq!(st.count, 3);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert!((st.mean - 2.0).abs() < 1e-12);
        assert_eq!(st.last, Some(2.0));
        assert_eq!(st.nan_count, 0);
    }

    #[test]
    fn stats_handles_nan() {
        let s = series(&[1.0, f64::NAN, 3.0]);
        let st = s.stats();
        assert_eq!(st.nan_count, 1);
        assert_eq!(st.min, 1.0);
        assert_eq!(st.max, 3.0);
        assert!((st.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_all_nan() {
        let s = series(&[f64::NAN, f64::NAN]);
        let st = s.stats();
        assert!(st.min.is_nan() && st.max.is_nan() && st.mean.is_nan());
        assert_eq!(st.count, 2);
    }

    #[test]
    fn slice_epochs_filters() {
        let s = series(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]); // epochs 0,0,1,1,2,2
        let sliced = s.slice_epochs(1, 1);
        assert_eq!(sliced.len(), 2);
        assert!(sliced.points.iter().all(|p| p.epoch == 1));
    }

    #[test]
    fn downsample_bounds_length() {
        let s = series(&(0..1000).map(|i| i as f64).collect::<Vec<_>>());
        let d = s.downsample(100);
        assert!(d.len() <= 100);
        assert_eq!(d.points[0].value, 0.0);
        // Downsampling an already-short series is identity.
        let s2 = series(&[1.0, 2.0]);
        assert_eq!(s2.downsample(100), s2);
        assert_eq!(s2.downsample(0), s2);
    }
}
