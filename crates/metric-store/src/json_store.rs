//! The JSON baseline: metrics as human-readable text.
//!
//! This is the paper's *normal* representation (`Original_file.json` in
//! Table 1): every sample spelled out as a JSON object. It is what a
//! provenance file looks like when time-series are kept inline — large,
//! but greppable and self-describing.

use crate::error::StoreError;
use crate::series::{MetricPoint, MetricSeries};
use crate::store::{path_size_bytes, MetricStore};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

/// A directory of `<name>@<context>.json` files, one per series.
pub struct JsonStore {
    root: PathBuf,
}

impl JsonStore {
    /// Creates (or opens) a JSON store rooted at `root`.
    pub fn create(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(JsonStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file(&self, name: &str, context: &str) -> PathBuf {
        let safe: String = format!("{name}@{context}")
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '@' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(format!("{safe}.json"))
    }

    /// Renders a series as the inline-JSON value used both by this store
    /// and by the provenance layer when metrics stay in the PROV file.
    pub fn series_to_json(series: &MetricSeries) -> Value {
        json!({
            "name": series.name,
            "context": series.context,
            "points": series.points.iter().map(|p| json!({
                "step": p.step,
                "epoch": p.epoch,
                "time_us": p.time_us,
                "value": float_to_json(p.value),
            })).collect::<Vec<_>>(),
        })
    }

    /// Parses the representation produced by [`Self::series_to_json`].
    pub fn series_from_json(value: &Value) -> Result<MetricSeries, StoreError> {
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::BadMetadata("series needs a name".into()))?;
        let context = value
            .get("context")
            .and_then(Value::as_str)
            .ok_or_else(|| StoreError::BadMetadata("series needs a context".into()))?;
        let points = value
            .get("points")
            .and_then(Value::as_array)
            .ok_or_else(|| StoreError::BadMetadata("series needs points".into()))?;
        let mut series = MetricSeries::new(name, context);
        for p in points {
            let get_u64 = |k: &str| {
                p.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| StoreError::BadMetadata(format!("point missing {k}")))
            };
            let time_us = p
                .get("time_us")
                .and_then(Value::as_i64)
                .ok_or_else(|| StoreError::BadMetadata("point missing time_us".into()))?;
            let value = json_to_float(p.get("value").unwrap_or(&Value::Null))
                .ok_or_else(|| StoreError::BadMetadata("point missing value".into()))?;
            series.push(MetricPoint {
                step: get_u64("step")?,
                epoch: get_u64("epoch")? as u32,
                time_us,
                value,
            });
        }
        Ok(series)
    }
}

fn float_to_json(v: f64) -> Value {
    if v.is_finite() {
        json!(v)
    } else if v.is_nan() {
        json!("NaN")
    } else if v > 0.0 {
        json!("INF")
    } else {
        json!("-INF")
    }
}

fn json_to_float(v: &Value) -> Option<f64> {
    match v {
        Value::Number(n) => n.as_f64(),
        Value::String(s) => crate::series_special_float(s),
        _ => None,
    }
}

impl MetricStore for JsonStore {
    fn write_series(&self, series: &MetricSeries) -> Result<(), StoreError> {
        let value = Self::series_to_json(series);
        std::fs::write(
            self.file(&series.name, &series.context),
            serde_json::to_string_pretty(&value)?,
        )?;
        Ok(())
    }

    fn read_series(&self, name: &str, context: &str) -> Result<MetricSeries, StoreError> {
        let path = self.file(name, context);
        if !path.is_file() {
            return Err(StoreError::NotFound(format!("{name}@{context}")));
        }
        let value: Value = serde_json::from_str(&std::fs::read_to_string(path)?)?;
        Self::series_from_json(&value)
    }

    fn list_series(&self) -> Result<Vec<(String, String)>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                let value: Value = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
                if let (Some(n), Some(c)) = (
                    value.get("name").and_then(Value::as_str),
                    value.get("context").and_then(Value::as_str),
                ) {
                    out.push((n.to_string(), c.to_string()));
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn size_bytes(&self) -> Result<u64, StoreError> {
        path_size_bytes(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("yjson_test_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn series(n: usize) -> MetricSeries {
        let mut s = MetricSeries::new("loss", "training");
        for i in 0..n {
            s.push(MetricPoint {
                step: i as u64,
                epoch: (i / 10) as u32,
                time_us: i as i64 * 1_000,
                value: 1.0 / (1.0 + i as f64),
            });
        }
        s
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let store = JsonStore::create(&dir).unwrap();
        let s = series(500);
        store.write_series(&s).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn special_floats_roundtrip_as_strings() {
        let dir = tmpdir("specials");
        let store = JsonStore::create(&dir).unwrap();
        let mut s = MetricSeries::new("m", "c");
        for (i, v) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            s.push(MetricPoint {
                step: i as u64,
                epoch: 0,
                time_us: 0,
                value: v,
            });
        }
        store.write_series(&s).unwrap();
        let back = store.read_series("m", "c").unwrap();
        assert!(back.points[0].value.is_nan());
        assert_eq!(back.points[1].value, f64::INFINITY);
        assert_eq!(back.points[2].value, f64::NEG_INFINITY);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_is_much_larger_than_binary() {
        let dir = tmpdir("size");
        let store = JsonStore::create(&dir).unwrap();
        let s = series(10_000);
        store.write_series(&s).unwrap();
        let json_size = store.size_bytes().unwrap();
        let raw = (s.len() * 28) as u64;
        assert!(json_size > raw * 2, "json {json_size} vs raw {raw}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_and_not_found() {
        let dir = tmpdir("list");
        let store = JsonStore::create(&dir).unwrap();
        store.write_series(&series(3)).unwrap();
        assert_eq!(
            store.list_series().unwrap(),
            vec![("loss".to_string(), "training".to_string())]
        );
        assert!(matches!(
            store.read_series("ghost", "x"),
            Err(StoreError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_json_rejected() {
        let dir = tmpdir("malformed");
        let store = JsonStore::create(&dir).unwrap();
        std::fs::write(dir.join("loss@training.json"), "{not json").unwrap();
        assert!(store.read_series("loss", "training").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn structurally_wrong_json_rejected() {
        let v = json!({"name": "m", "context": "c", "points": [{"step": 1}]});
        assert!(JsonStore::series_from_json(&v).is_err());
        let v = json!({"points": []});
        assert!(JsonStore::series_from_json(&v).is_err());
    }
}
