//! # metric-store
//!
//! Time-series storage for training metrics, reproducing the storage
//! study of the yProv4ML paper (Table 1): the same metric data can be
//! kept inline in PROV-JSON (the *normal* representation), or spilled to
//! one of two from-scratch array formats —
//!
//! * [`zarr`] — a chunked, codec-pipelined column store in the spirit of
//!   Zarr: each column (steps, timestamps, values) is cut into chunks,
//!   each chunk runs through a configurable codec pipeline
//!   (delta/zigzag/varint for integers, Gorilla-style XOR for floats,
//!   byte-shuffle, RLE, LZ77 and Huffman for bytes), and chunks compress
//!   in parallel with rayon;
//! * [`netcdf`] — a single-file header+variables binary layout in the
//!   spirit of classic NetCDF (CDF-1), with an optional whole-file
//!   compressed variant.
//!
//! The JSON baseline lives in [`json_store`]. All backends implement the
//! [`store::MetricStore`] trait so the provenance layer can switch
//! formats with a configuration flag, exactly as the paper's library
//! does.
//!
//! ```
//! use metric_store::series::{MetricPoint, MetricSeries};
//! use metric_store::zarr::{ZarrStore, ZarrOptions};
//! use metric_store::store::MetricStore;
//!
//! let mut series = MetricSeries::new("loss", "training");
//! for step in 0..1000u64 {
//!     series.push(MetricPoint {
//!         step,
//!         epoch: (step / 100) as u32,
//!         time_us: 1_000_000 * step as i64,
//!         value: 1.0 / (step + 1) as f64,
//!     });
//! }
//!
//! let dir = std::env::temp_dir().join("metric_store_doctest");
//! let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
//! store.write_series(&series).unwrap();
//! let back = store.read_series("loss", "training").unwrap();
//! assert_eq!(series, back);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod checksum;
pub mod codec;
pub mod error;
pub mod json_store;
pub mod netcdf;
pub mod pool;
pub mod series;
pub mod store;
pub mod zarr;

pub use error::StoreError;
pub use pool::WorkerPool;
pub use series::{MetricPoint, MetricSeries, SeriesStats};
pub use store::{MetricStore, StorageFormat};

/// Parses the string spellings of non-finite floats used in JSON output
/// (`"NaN"`, `"INF"`, `"-INF"`), plus ordinary numbers in string form.
pub fn series_special_float(s: &str) -> Option<f64> {
    match s {
        "NaN" => Some(f64::NAN),
        "INF" | "+INF" | "Infinity" => Some(f64::INFINITY),
        "-INF" | "-Infinity" => Some(f64::NEG_INFINITY),
        _ => s.parse().ok(),
    }
}
