//! Bit-level reader and writer, MSB-first within each byte.
//!
//! Shared by the Gorilla XOR float codec and the Huffman coder.

use crate::error::StoreError;

/// Appends bits to a growing byte buffer, most significant bit first.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the last byte (0 = last byte full/absent).
    partial: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.partial);
        }
        self.partial = (self.partial + 1) % 8;
    }

    /// Writes the low `n` bits of `value`, most significant first.
    pub fn write_bits(&mut self, value: u64, n: u8) {
        debug_assert!(n <= 64);
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial as usize
        }
    }

    /// Finishes, returning the padded byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads bits from a byte slice, MSB-first.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Starts reading at the first bit of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Reads one bit; errors at end of input.
    pub fn read_bit(&mut self) -> Result<bool, StoreError> {
        let byte = self.pos / 8;
        if byte >= self.data.len() {
            return Err(StoreError::Truncated("bit stream".into()));
        }
        let bit = (self.data[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits into the low bits of a `u64`.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, StoreError> {
        debug_assert!(n <= 64);
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multibit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(1).unwrap(), 0);
    }

    #[test]
    fn read_past_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn remaining_counts_down() {
        let mut r = BitReader::new(&[0, 0]);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.bit_pos(), 5);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true); // bit 7 of first byte
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0b1000_0000);
    }
}
