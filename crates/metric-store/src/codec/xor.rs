//! Gorilla-style XOR compression for `f64` columns.
//!
//! Successive metric values tend to share sign, exponent and leading
//! mantissa bits, so their bitwise XOR has long runs of leading and
//! trailing zeros. The scheme (Facebook's Gorilla TSDB, VLDB'15):
//!
//! * first value verbatim (64 bits);
//! * per subsequent value, XOR with the previous one:
//!   * `0`                        — XOR is zero (value repeated);
//!   * `10` + meaningful bits     — same leading/trailing-zero window as
//!     the previous non-zero XOR;
//!   * `11` + 6-bit leading-zero count + 6-bit length + meaningful bits —
//!     new window.
//!
//! The encoded stream is prefixed with a LEB128 value count so the
//! decoder knows when to stop (the tail of the last byte is padding).

use super::bits::{BitReader, BitWriter};
use super::varint;
use crate::error::StoreError;

/// Compresses an `f64` column.
pub fn encode(values: &[f64]) -> Vec<u8> {
    let mut head = Vec::new();
    varint::write_u64(&mut head, values.len() as u64);
    let mut w = BitWriter::new();

    let mut prev_bits = 0u64;
    let mut prev_lead = u8::MAX; // invalid: forces a new window first time
    let mut prev_len = 0u8;

    for (i, v) in values.iter().enumerate() {
        let bits = v.to_bits();
        if i == 0 {
            w.write_bits(bits, 64);
        } else {
            let xor = bits ^ prev_bits;
            if xor == 0 {
                w.write_bit(false);
            } else {
                w.write_bit(true);
                let lead = (xor.leading_zeros() as u8).min(63);
                let trail = xor.trailing_zeros() as u8;
                let len = 64 - lead - trail;
                let fits_prev = prev_lead != u8::MAX
                    && lead >= prev_lead
                    && (64 - prev_lead - prev_len) <= trail;
                if fits_prev {
                    // Reuse the previous window.
                    w.write_bit(false);
                    let shift = 64 - prev_lead - prev_len;
                    w.write_bits(xor >> shift, prev_len);
                } else {
                    w.write_bit(true);
                    w.write_bits(lead as u64, 6);
                    // len is in 1..=64; store len-1 in 6 bits.
                    w.write_bits((len - 1) as u64, 6);
                    w.write_bits(xor >> trail, len);
                    prev_lead = lead;
                    prev_len = len;
                }
            }
        }
        prev_bits = bits;
    }

    head.extend_from_slice(&w.into_bytes());
    head
}

/// Decompresses a column written by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<f64>, StoreError> {
    let mut pos = 0usize;
    let n = varint::read_u64(data, &mut pos)? as usize;
    let mut r = BitReader::new(&data[pos..]);
    // Cap the hint: a corrupt count must not drive a giant allocation
    // (each value needs ≥1 bit of input, so data length bounds it).
    let mut out = Vec::with_capacity(n.min(data.len() * 8));

    let mut prev_bits = 0u64;
    let mut lead = 0u8;
    let mut len = 0u8;

    for i in 0..n {
        let bits = if i == 0 {
            r.read_bits(64)?
        } else if !r.read_bit()? {
            prev_bits
        } else {
            if r.read_bit()? {
                lead = r.read_bits(6)? as u8;
                len = r.read_bits(6)? as u8 + 1;
            }
            if len == 0 {
                // A `10` control pair before any `11` header defined a
                // window — only possible in corrupt streams.
                return Err(StoreError::Corrupt(
                    "xor window reused before defined".into(),
                ));
            }
            if lead as u32 + len as u32 > 64 {
                return Err(StoreError::Corrupt("xor window exceeds 64 bits".into()));
            }
            let meaningful = r.read_bits(len)?;
            let shift = 64 - lead - len;
            prev_bits ^ (meaningful << shift)
        };
        prev_bits = bits;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f64]) {
        let enc = encode(values);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), values.len());
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[42.125]);
        roundtrip(&[f64::NAN]);
    }

    #[test]
    fn constant_series_compresses_to_one_bit_per_value() {
        let values = vec![3.5; 10_000];
        let enc = encode(&values);
        // 8 bytes first value + ~1 bit per repeat + count prefix.
        assert!(enc.len() < 8 + 10_000 / 8 + 16, "got {} bytes", enc.len());
        roundtrip(&values);
    }

    #[test]
    fn smooth_series_compresses_well() {
        let values: Vec<f64> = (0..10_000).map(|i| 2.0 + (i as f64) * 1e-4).collect();
        let enc = encode(&values);
        assert!(
            enc.len() < values.len() * 8 * 4 / 5,
            "smooth series should beat raw: {} vs {}",
            enc.len(),
            values.len() * 8
        );
        roundtrip(&values);
    }

    #[test]
    fn special_values_roundtrip() {
        roundtrip(&[
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            5e-324, // subnormal
        ]);
    }

    #[test]
    fn alternating_extremes_roundtrip() {
        let values: Vec<f64> = (0..1000)
            .map(|i| {
                if i % 2 == 0 {
                    f64::MAX
                } else {
                    f64::MIN_POSITIVE
                }
            })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn noisy_loss_curve_roundtrips() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let values: Vec<f64> = (0..5000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                2.0 / (1.0 + i as f64 * 0.01) + (x % 1000) as f64 * 1e-6
            })
            .collect();
        roundtrip(&values);
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(&[1.0, 2.0, 3.0, 4.0]);
        assert!(decode(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn corrupt_window_detected() {
        // Count prefix says 2 values, then force header bits 11 with an
        // impossible window (lead=63, len=64 encoded as 63).
        let mut data = Vec::new();
        varint::write_u64(&mut data, 2);
        let mut w = BitWriter::new();
        w.write_bits(0, 64); // first value 0.0
        w.write_bit(true);
        w.write_bit(true);
        w.write_bits(63, 6); // lead
        w.write_bits(63, 6); // len-1 = 63 => len 64 => 63+64 > 64
        w.write_bits(0, 64);
        data.extend_from_slice(&w.into_bytes());
        assert!(decode(&data).is_err());
    }
}
