//! LZ77 compression with hash-chain match finding.
//!
//! The container format follows LZ4's sequence layout (chosen for its
//! simple, unambiguous framing):
//!
//! ```text
//! sequence := token literals* (distance matchlen-ext*)?
//! token    := (literal_len_nibble << 4) | match_len_nibble
//! ```
//!
//! * a nibble of 15 is extended by `0xFF`-continuation bytes (add 255
//!   while the next byte is 255, then add the final byte);
//! * `distance` is 2 bytes little-endian (window 64 KiB), never zero;
//! * match length = low nibble + 4 (`MIN_MATCH`);
//! * the final sequence consists of literals only — the stream simply
//!   ends after them.

use crate::error::StoreError;

const MIN_MATCH: usize = 4;
const MAX_DISTANCE: usize = 65_535;
/// Number of hash-chain candidates examined per position; higher finds
/// better matches at more CPU cost.
const MAX_CHAIN: usize = 32;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn write_ext_len(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_ext_len(data: &[u8], pos: &mut usize) -> Result<usize, StoreError> {
    let mut total = 0usize;
    loop {
        let b = *data
            .get(*pos)
            .ok_or_else(|| StoreError::Truncated("lz77 length extension".into()))?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], match_len: usize, distance: usize) {
    let lit_nibble = literals.len().min(15);
    let match_nibble = if match_len == 0 {
        0
    } else {
        (match_len - MIN_MATCH).min(15)
    };
    out.push(((lit_nibble as u8) << 4) | match_nibble as u8);
    if lit_nibble == 15 {
        write_ext_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if match_len > 0 {
        debug_assert!((1..=MAX_DISTANCE).contains(&distance));
        out.extend_from_slice(&(distance as u16).to_le_bytes());
        if match_nibble == 15 {
            write_ext_len(out, match_len - MIN_MATCH - 15);
        }
    }
}

/// Compresses `data`. The output of an empty input is empty.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n == 0 {
        return out;
    }

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    let mut literal_start = 0usize;

    while i + MIN_MATCH <= n {
        let h = hash4(data, i);
        // Walk the chain looking for the longest match in the window.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut chains = 0usize;
        while cand != usize::MAX && chains < MAX_CHAIN {
            let dist = i - cand;
            if dist > MAX_DISTANCE {
                break;
            }
            // Extend the match.
            let mut len = 0usize;
            let max = n - i;
            while len < max && data[cand + len] == data[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_dist = dist;
            }
            cand = prev[cand];
            chains += 1;
        }

        if best_len >= MIN_MATCH {
            emit_sequence(&mut out, &data[literal_start..i], best_len, best_dist);
            // Insert hash entries for the matched region (sparsely for
            // speed on long matches).
            let end = i + best_len;
            let step = if best_len > 512 { 8 } else { 1 };
            let mut j = i;
            while j + MIN_MATCH <= n && j < end {
                let hj = hash4(data, j);
                prev[j] = head[hj];
                head[hj] = j;
                j += step;
            }
            i = end;
            literal_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }

    // Final literal-only sequence.
    emit_sequence(&mut out, &data[literal_start..], 0, 0);
    out
}

/// Decompresses data produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(data.len() * 3);
    let mut pos = 0usize;
    while pos < data.len() {
        let token = data[pos];
        pos += 1;
        let mut lit_len = (token >> 4) as usize;
        if lit_len == 15 {
            lit_len += read_ext_len(data, &mut pos)?;
        }
        let lits = data
            .get(pos..pos + lit_len)
            .ok_or_else(|| StoreError::Truncated("lz77 literals".into()))?;
        out.extend_from_slice(lits);
        pos += lit_len;

        if pos >= data.len() {
            // Final literal-only sequence: the match nibble must be 0,
            // otherwise the stream was cut mid-sequence.
            if token & 0x0F != 0 {
                return Err(StoreError::Truncated("lz77 final sequence".into()));
            }
            break;
        }

        let dist_bytes = data
            .get(pos..pos + 2)
            .ok_or_else(|| StoreError::Truncated("lz77 distance".into()))?;
        let distance = u16::from_le_bytes([dist_bytes[0], dist_bytes[1]]) as usize;
        pos += 2;
        if distance == 0 || distance > out.len() {
            return Err(StoreError::Corrupt(format!(
                "lz77 distance {distance} with only {} bytes produced",
                out.len()
            )));
        }
        let mut match_len = (token & 0x0F) as usize + MIN_MATCH;
        if token & 0x0F == 15 {
            match_len += read_ext_len(data, &mut pos)?;
        }
        // Overlapping copy (distance may be < match_len).
        let start = out.len() - distance;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let enc = compress(data);
        assert_eq!(decompress(&enc).unwrap(), data, "len {}", data.len());
        enc.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(roundtrip(&[]), 0);
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_text_compresses() {
        let data = b"hello world, hello world, hello world, hello world!".repeat(100);
        let n = roundtrip(&data);
        assert!(n < data.len() / 10, "got {n} for {}", data.len());
    }

    #[test]
    fn overlapping_matches() {
        // 'aaaa...' forces distance-1 overlapping copies.
        let data = vec![b'a'; 10_000];
        let n = roundtrip(&data);
        assert!(n < 100);
    }

    #[test]
    fn long_literals_use_extension_bytes() {
        // Incompressible data longer than 15 literals.
        let mut x = 1u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(0x5851F42D4C957F2D).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_matches_use_extension_bytes() {
        let mut data = Vec::new();
        data.extend_from_slice(b"0123456789abcdef");
        for _ in 0..100 {
            let copy = data.clone();
            data.extend_from_slice(&copy[..copy.len().min(1000)]);
        }
        roundtrip(&data[..50_000.min(data.len())]);
    }

    #[test]
    fn binary_numeric_data_roundtrips() {
        let mut data = Vec::new();
        for i in 0..20_000u64 {
            data.extend_from_slice(&(i / 3).to_le_bytes());
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 4);
    }

    #[test]
    fn matches_beyond_window_are_not_used() {
        // A repeated 100-byte block separated by > 64 KiB of noise still
        // roundtrips (the second occurrence simply encodes as literals).
        let block: Vec<u8> = (0..100u8).collect();
        let mut x = 7u64;
        let mut data = block.clone();
        for _ in 0..70_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((x >> 40) as u8);
        }
        data.extend_from_slice(&block);
        roundtrip(&data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let enc = compress(b"some reasonable test data, repeated: some reasonable test data");
        // Truncations at every prefix must error or produce shorter output,
        // never panic.
        for cut in 0..enc.len() {
            let _ = decompress(&enc[..cut]);
        }
        // Distance pointing before start of output.
        let bad = [0x04u8, 0xFF, 0xFF]; // token: 0 literals, match, distance 0xFFFF
        assert!(decompress(&bad).is_err());
        // Zero distance.
        let bad = [0x04u8, 0x00, 0x00];
        assert!(decompress(&bad).is_err());
    }
}
