//! The codec stack.
//!
//! Two layers, mirroring Zarr's filter/compressor split:
//!
//! * **Column codecs** turn typed columns (`u64`/`i64`/`f64`) into bytes:
//!   delta + zigzag + varint for integers ([`varint`], [`delta`]),
//!   Gorilla-style XOR compression for floats ([`xor`]), or plain
//!   little-endian ([`encode_f64_raw`]).
//! * **Byte codecs** transform byte streams: run-length encoding
//!   ([`rle`]), byte shuffle ([`shuffle`]), LZ77 ([`lz77`]) and canonical
//!   Huffman coding ([`huffman`]). Chaining LZ77 → Huffman yields a
//!   DEFLATE-like general-purpose compressor, exposed as
//!   [`deflate_like`] / [`inflate_like`].
//!
//! Every byte codec is identified by a stable [`CodecId`] recorded in
//! chunk headers, so files remain self-describing.

pub mod bits;
pub mod delta;
pub mod huffman;
pub mod lz77;
pub mod quantize;
pub mod rle;
pub mod shuffle;
pub mod varint;
pub mod xor;

use crate::error::StoreError;

/// Stable identifier of a byte codec, stored in chunk headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CodecId {
    /// Run-length encoding.
    Rle = 1,
    /// Byte shuffle with lane width 8 (for f64/i64 columns).
    Shuffle8 = 2,
    /// LZ77 with hash-chain matching.
    Lz77 = 3,
    /// Canonical Huffman entropy coding.
    Huffman = 4,
}

impl CodecId {
    /// Decodes a header byte into a codec id.
    pub fn from_u8(b: u8) -> Result<CodecId, StoreError> {
        match b {
            1 => Ok(CodecId::Rle),
            2 => Ok(CodecId::Shuffle8),
            3 => Ok(CodecId::Lz77),
            4 => Ok(CodecId::Huffman),
            other => Err(StoreError::UnknownFormat(format!("codec id {other}"))),
        }
    }

    /// Applies this codec in the encode direction.
    pub fn encode(&self, data: &[u8]) -> Vec<u8> {
        match self {
            CodecId::Rle => rle::encode(data),
            CodecId::Shuffle8 => shuffle::shuffle(data, 8),
            CodecId::Lz77 => lz77::compress(data),
            CodecId::Huffman => huffman::encode(data),
        }
    }

    /// Applies this codec in the decode direction.
    pub fn decode(&self, data: &[u8]) -> Result<Vec<u8>, StoreError> {
        match self {
            CodecId::Rle => rle::decode(data),
            CodecId::Shuffle8 => Ok(shuffle::unshuffle(data, 8)),
            CodecId::Lz77 => lz77::decompress(data),
            CodecId::Huffman => huffman::decode(data),
        }
    }
}

/// Runs `data` through a codec pipeline, in order.
pub fn encode_pipeline(data: &[u8], codecs: &[CodecId]) -> Vec<u8> {
    let mut cur = data.to_vec();
    for c in codecs {
        cur = c.encode(&cur);
    }
    cur
}

/// Reverses a codec pipeline (decodes in reverse order).
pub fn decode_pipeline(data: &[u8], codecs: &[CodecId]) -> Result<Vec<u8>, StoreError> {
    let mut cur = data.to_vec();
    for c in codecs.iter().rev() {
        cur = c.decode(&cur)?;
    }
    Ok(cur)
}

/// The general-purpose compressor: LZ77 followed by Huffman.
pub fn deflate_like(data: &[u8]) -> Vec<u8> {
    huffman::encode(&lz77::compress(data))
}

/// Inverse of [`deflate_like`].
pub fn inflate_like(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    lz77::decompress(&huffman::decode(data)?)
}

// ---------------------------------------------------------------------------
// Column encoders
// ---------------------------------------------------------------------------

/// Encodes an `f64` column as raw little-endian bytes.
pub fn encode_f64_raw(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a raw little-endian `f64` column.
pub fn decode_f64_raw(data: &[u8]) -> Result<Vec<f64>, StoreError> {
    if !data.len().is_multiple_of(8) {
        return Err(StoreError::Truncated(format!(
            "f64 column of {} bytes",
            data.len()
        )));
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

/// Encodes a `u64` column as delta + varint.
pub fn encode_u64_column(values: &[u64]) -> Vec<u8> {
    let deltas = delta::delta_encode_u64(values);
    let mut out = Vec::with_capacity(values.len());
    varint::write_u64(&mut out, values.len() as u64);
    for d in deltas {
        varint::write_i64_zigzag(&mut out, d);
    }
    out
}

/// Decodes a `u64` column written by [`encode_u64_column`].
pub fn decode_u64_column(data: &[u8]) -> Result<Vec<u64>, StoreError> {
    let mut pos = 0usize;
    let n = varint::read_u64(data, &mut pos)? as usize;
    // A corrupt header can claim any count; the capacity hint must stay
    // bounded by what the input could actually hold (≥1 byte/value).
    let mut deltas = Vec::with_capacity(n.min(data.len()));
    for _ in 0..n {
        deltas.push(varint::read_i64_zigzag(data, &mut pos)?);
    }
    Ok(delta::delta_decode_u64(&deltas))
}

/// Encodes an `i64` column as delta + zigzag + varint.
pub fn encode_i64_column(values: &[i64]) -> Vec<u8> {
    let deltas = delta::delta_encode_i64(values);
    let mut out = Vec::with_capacity(values.len());
    varint::write_u64(&mut out, values.len() as u64);
    for d in deltas {
        varint::write_i64_zigzag(&mut out, d);
    }
    out
}

/// Decodes an `i64` column written by [`encode_i64_column`].
pub fn decode_i64_column(data: &[u8]) -> Result<Vec<i64>, StoreError> {
    let mut pos = 0usize;
    let n = varint::read_u64(data, &mut pos)? as usize;
    let mut deltas = Vec::with_capacity(n.min(data.len()));
    for _ in 0..n {
        deltas.push(varint::read_i64_zigzag(data, &mut pos)?);
    }
    Ok(delta::delta_decode_i64(&deltas))
}

/// Encodes a `u32` column (epochs) via the u64 path.
pub fn encode_u32_column(values: &[u32]) -> Vec<u8> {
    let widened: Vec<u64> = values.iter().map(|&v| v as u64).collect();
    encode_u64_column(&widened)
}

/// Decodes a `u32` column written by [`encode_u32_column`].
pub fn decode_u32_column(data: &[u8]) -> Result<Vec<u32>, StoreError> {
    decode_u64_column(data)?
        .into_iter()
        .map(|v| {
            u32::try_from(v)
                .map_err(|_| StoreError::Corrupt(format!("epoch value {v} exceeds u32")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_ids_roundtrip() {
        for id in [
            CodecId::Rle,
            CodecId::Shuffle8,
            CodecId::Lz77,
            CodecId::Huffman,
        ] {
            assert_eq!(CodecId::from_u8(id as u8).unwrap(), id);
        }
        assert!(CodecId::from_u8(0).is_err());
        assert!(CodecId::from_u8(200).is_err());
    }

    #[test]
    fn pipeline_roundtrip_all_orders() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 97) as u8).collect();
        let pipelines: &[&[CodecId]] = &[
            &[CodecId::Rle],
            &[CodecId::Lz77],
            &[CodecId::Huffman],
            &[CodecId::Lz77, CodecId::Huffman],
            &[CodecId::Shuffle8, CodecId::Rle],
            &[CodecId::Shuffle8, CodecId::Lz77, CodecId::Huffman],
        ];
        for p in pipelines {
            let enc = encode_pipeline(&data, p);
            let dec = decode_pipeline(&enc, p).unwrap();
            assert_eq!(dec, data, "pipeline {p:?}");
        }
    }

    #[test]
    fn deflate_like_roundtrip_and_compresses_text() {
        let text = "the quick brown fox jumps over the lazy dog. "
            .repeat(200)
            .into_bytes();
        let compressed = deflate_like(&text);
        assert!(
            compressed.len() < text.len() / 4,
            "repetitive text must shrink"
        );
        assert_eq!(inflate_like(&compressed).unwrap(), text);
    }

    #[test]
    fn deflate_like_handles_incompressible_data() {
        // Pseudo-random bytes: must roundtrip even if they don't shrink.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let enc = deflate_like(&data);
        assert_eq!(inflate_like(&enc).unwrap(), data);
    }

    #[test]
    fn u64_column_roundtrip() {
        let values: Vec<u64> = (0..1000).map(|i| i * 3 + (i % 7)).collect();
        let enc = encode_u64_column(&values);
        assert_eq!(decode_u64_column(&enc).unwrap(), values);
        // Monotone steps delta-compress well: < 2 bytes/value.
        assert!(enc.len() < values.len() * 2 + 10);
    }

    #[test]
    fn i64_column_roundtrip_with_negatives() {
        let values: Vec<i64> = vec![i64::MIN, -1, 0, 1, i64::MAX, 42, -42];
        let enc = encode_i64_column(&values);
        assert_eq!(decode_i64_column(&enc).unwrap(), values);
    }

    #[test]
    fn u32_column_roundtrip_and_overflow_check() {
        let values: Vec<u32> = (0..500).map(|i| i / 50).collect();
        let enc = encode_u32_column(&values);
        assert_eq!(decode_u32_column(&enc).unwrap(), values);

        // Hand-craft a u64 column with an over-u32 value.
        let bad = encode_u64_column(&[u32::MAX as u64 + 1]);
        assert!(decode_u32_column(&bad).is_err());
    }

    #[test]
    fn f64_raw_roundtrip_with_specials() {
        let values = vec![0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE];
        let enc = encode_f64_raw(&values);
        let dec = decode_f64_raw(&enc).unwrap();
        assert_eq!(dec.len(), values.len());
        for (a, b) in values.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_f64_raw(&enc[..7]).is_err());
    }

    #[test]
    fn empty_columns() {
        assert_eq!(
            decode_u64_column(&encode_u64_column(&[])).unwrap(),
            Vec::<u64>::new()
        );
        assert_eq!(
            decode_i64_column(&encode_i64_column(&[])).unwrap(),
            Vec::<i64>::new()
        );
        assert_eq!(
            decode_f64_raw(&encode_f64_raw(&[])).unwrap(),
            Vec::<f64>::new()
        );
        let empty = deflate_like(&[]);
        assert_eq!(inflate_like(&empty).unwrap(), Vec::<u8>::new());
    }
}
