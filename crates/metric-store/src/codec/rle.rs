//! Byte-oriented run-length encoding.
//!
//! Format: a sequence of `(control, payload)` groups.
//! * `control < 128`: a literal run; the next `control + 1` bytes are
//!   copied verbatim.
//! * `control >= 128`: a repeat run; the next byte repeats
//!   `control - 128 + 2` times (minimum useful run is 2).

use crate::error::StoreError;

const MAX_LITERAL: usize = 128;
const MAX_REPEAT: usize = 129;

/// Encodes `data` with RLE. Never panics; output for incompressible
/// input grows by at most 1/128.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 8);
    let mut i = 0usize;
    let mut literal_start = 0usize;

    let flush_literal = |out: &mut Vec<u8>, from: usize, to: usize, data: &[u8]| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(MAX_LITERAL);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[s..s + n]);
            s += n;
        }
    };

    while i < data.len() {
        // Measure the run starting at i.
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < MAX_REPEAT {
            run += 1;
        }
        if run >= 3 {
            flush_literal(&mut out, literal_start, i, data);
            out.push((run - 2 + 128) as u8);
            out.push(b);
            i += run;
            literal_start = i;
        } else {
            i += run;
        }
    }
    flush_literal(&mut out, literal_start, data.len(), data);
    out
}

/// Decodes RLE data produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        let control = data[i];
        i += 1;
        if control < 128 {
            let n = control as usize + 1;
            let chunk = data
                .get(i..i + n)
                .ok_or_else(|| StoreError::Truncated("rle literal".into()))?;
            out.extend_from_slice(chunk);
            i += n;
        } else {
            let n = control as usize - 128 + 2;
            let b = *data
                .get(i)
                .ok_or_else(|| StoreError::Truncated("rle repeat".into()))?;
            i += 1;
            out.resize(out.len() + n, b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let enc = encode(data);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(&[]);
        roundtrip(&[1]);
        roundtrip(&[1, 2]);
        roundtrip(&[1, 1]);
        roundtrip(&[1, 1, 1]);
    }

    #[test]
    fn long_runs_compress_hard() {
        let data = vec![7u8; 100_000];
        let enc = encode(&data);
        assert!(enc.len() < 100_000 / 50, "got {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let data: Vec<u8> = (0..=255u8).cycle().take(100_000).collect();
        let enc = encode(&data);
        assert!(enc.len() <= data.len() + data.len() / 128 + 2);
        assert_eq!(decode(&enc).unwrap(), data);
    }

    #[test]
    fn mixed_runs_and_literals() {
        let mut data = Vec::new();
        data.extend_from_slice(b"abc");
        data.extend(std::iter::repeat_n(0u8, 500));
        data.extend_from_slice(b"defgh");
        data.extend(std::iter::repeat_n(255u8, 3));
        data.extend_from_slice(b"x");
        roundtrip(&data);
    }

    #[test]
    fn run_exactly_at_limits() {
        roundtrip(&[9u8; MAX_REPEAT]);
        roundtrip(&[9u8; MAX_REPEAT + 1]);
        roundtrip(&vec![9u8; MAX_REPEAT * 3 + 1]);
        let literals: Vec<u8> = (0..MAX_LITERAL as u8).collect();
        roundtrip(&literals);
        let longer: Vec<u8> = (0..=255u8).collect();
        roundtrip(&longer);
    }

    #[test]
    fn truncated_input_errors() {
        let enc = encode(&[5u8; 100]);
        assert!(decode(&enc[..1]).is_err());
        // Literal control byte promising more than available.
        assert!(decode(&[10, 1, 2]).is_err());
    }
}
