//! Canonical Huffman entropy coding over byte symbols.
//!
//! Layout: `varint(original_len) ++ code_lengths[256] ++ bitstream`.
//! Code lengths are stored as one byte per symbol (0 = symbol absent)
//! and the actual codes are reconstructed canonically on both sides, so
//! the tree itself is never serialized. Decoding walks the canonical
//! first-code table bit by bit, which supports arbitrary code lengths
//! without a length-limiting pass.

use super::bits::{BitReader, BitWriter};
use super::varint;
use crate::error::StoreError;

const SYMBOLS: usize = 256;

/// Computes Huffman code lengths from symbol frequencies.
fn code_lengths(freq: &[u64; SYMBOLS]) -> [u8; SYMBOLS] {
    let mut lengths = [0u8; SYMBOLS];
    let present: Vec<usize> = (0..SYMBOLS).filter(|&s| freq[s] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Classic two-queue-free approach: a simple binary heap of nodes.
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        index: usize, // into `nodes`
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap via reversed compare; tie-break on index for
            // determinism.
            other
                .weight
                .cmp(&self.weight)
                .then(other.index.cmp(&self.index))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    // nodes[i] = (left, right) children or (usize::MAX, symbol) for leaves.
    let mut children: Vec<(usize, usize)> = Vec::new();
    let mut heap = std::collections::BinaryHeap::new();
    for &s in &present {
        children.push((usize::MAX, s));
        heap.push(Node {
            weight: freq[s],
            index: children.len() - 1,
        });
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        children.push((a.index, b.index));
        heap.push(Node {
            weight: a.weight + b.weight,
            index: children.len() - 1,
        });
    }
    let root = heap.pop().expect("one node remains").index;

    // Depth-first depth assignment.
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let (l, r) = children[idx];
        if l == usize::MAX {
            lengths[r] = depth.max(1);
        } else {
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    lengths
}

/// Builds canonical codes from lengths: `codes[s] = (code, len)`.
fn canonical_codes(lengths: &[u8; SYMBOLS]) -> Vec<(u64, u8)> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u64; max_len as usize + 1];
    for &l in lengths.iter() {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u64; max_len as usize + 2];
    let mut code = 0u64;
    for bits in 1..=max_len as usize {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    let mut codes = vec![(0u64, 0u8); SYMBOLS];
    for s in 0..SYMBOLS {
        let l = lengths[s];
        if l > 0 {
            codes[s] = (next_code[l as usize], l);
            next_code[l as usize] += 1;
        }
    }
    codes
}

/// Encodes `data`. Empty input produces a minimal header.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::write_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    let mut freq = [0u64; SYMBOLS];
    for &b in data {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    out.extend_from_slice(&lengths);
    let codes = canonical_codes(&lengths);
    let mut w = BitWriter::new();
    for &b in data {
        let (code, len) = codes[b as usize];
        w.write_bits(code, len);
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Decodes data produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Vec<u8>, StoreError> {
    let mut pos = 0usize;
    let n = varint::read_u64(data, &mut pos)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let lengths: [u8; SYMBOLS] = data
        .get(pos..pos + SYMBOLS)
        .ok_or_else(|| StoreError::Truncated("huffman code lengths".into()))?
        .try_into()
        .expect("exact slice");
    pos += SYMBOLS;

    let max_len = *lengths.iter().max().expect("non-empty") as usize;
    if max_len == 0 {
        return Err(StoreError::Corrupt("huffman table empty with n > 0".into()));
    }
    // Codes are read into a u64, so lengths beyond 64 bits (impossible
    // from our encoder, but possible in corrupted tables) are rejected.
    if max_len > 64 {
        return Err(StoreError::Corrupt(format!(
            "huffman code length {max_len} exceeds 64 bits"
        )));
    }
    // Canonical decoding tables: per length, the first code and the
    // symbols ordered by code value. first_code is computed in u128 so
    // corrupt (non-Kraft) tables cannot overflow the shifts.
    let mut first_code = vec![0u128; max_len + 1];
    let mut symbols_by_len: Vec<Vec<u8>> = vec![Vec::new(); max_len + 1];
    for (s, &l) in lengths.iter().enumerate() {
        if l > 0 {
            symbols_by_len[l as usize].push(s as u8);
        }
    }
    {
        let mut code = 0u128;
        for (bits, slot) in first_code.iter_mut().enumerate().skip(1) {
            code = (code + symbols_by_len.get(bits - 1).map_or(0, |v| v.len() as u128)) << 1;
            *slot = code;
        }
    }

    let mut r = BitReader::new(&data[pos..]);
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let mut code = 0u128;
        let mut len = 0usize;
        loop {
            code = (code << 1) | r.read_bit()? as u128;
            len += 1;
            if len > max_len {
                return Err(StoreError::Corrupt("huffman code longer than table".into()));
            }
            let count = symbols_by_len[len].len() as u128;
            if count > 0 && code >= first_code[len] && code < first_code[len] + count {
                out.push(symbols_by_len[len][(code - first_code[len]) as usize]);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let enc = encode(data);
        assert_eq!(decode(&enc).unwrap(), data, "len {}", data.len());
        enc.len()
    }

    #[test]
    fn empty_input() {
        assert_eq!(roundtrip(&[]), 1);
    }

    #[test]
    fn single_symbol_runs() {
        let n = roundtrip(&vec![b'x'; 10_000]);
        // 1 bit per symbol + 256-byte table + varint.
        assert!(n <= 10_000 / 8 + 256 + 4, "got {n}");
        roundtrip(b"x");
    }

    #[test]
    fn two_symbols() {
        let data: Vec<u8> = (0..1000)
            .map(|i| if i % 3 == 0 { 0 } else { 255 })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% 'a', rest spread.
        let mut data = Vec::new();
        for i in 0..50_000usize {
            data.push(if i % 10 != 0 { b'a' } else { (i % 256) as u8 });
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 2, "skewed data should halve: {n}");
    }

    #[test]
    fn uniform_distribution_roundtrips() {
        let data: Vec<u8> = (0..65_536).map(|i| (i % 256) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn english_text_compresses() {
        let text = b"It is a truth universally acknowledged, that a single \
                     man in possession of a good fortune, must be in want of \
                     a wife."
            .repeat(50);
        let n = roundtrip(&text);
        assert!(n < text.len() * 3 / 4);
    }

    #[test]
    fn pathological_fibonacci_frequencies() {
        // Fibonacci-weighted symbols create maximally deep codes.
        let mut data = Vec::new();
        let (mut a, mut b) = (1u64, 1u64);
        for s in 0..30u8 {
            for _ in 0..a.min(5_000) {
                data.push(s);
            }
            let next = a + b;
            a = b;
            b = next;
        }
        roundtrip(&data);
    }

    #[test]
    fn truncated_and_corrupt_inputs_error() {
        let enc = encode(b"hello hello hello");
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&enc[..5]).is_err());
        // Claimed length with an all-zero table.
        let mut bad = Vec::new();
        varint::write_u64(&mut bad, 10);
        bad.extend_from_slice(&[0u8; 256]);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freq = [0u64; SYMBOLS];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1;
        }
        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths);
        // No code is a prefix of another.
        for a in 0..SYMBOLS {
            for b in 0..SYMBOLS {
                if a == b {
                    continue;
                }
                let (ca, la) = codes[a];
                let (cb, lb) = codes[b];
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                assert_ne!(cb >> (lb - la), ca, "code {a} prefixes {b}");
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut freq = [0u64; SYMBOLS];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = ((i * i) % 251) as u64;
        }
        let lengths = code_lengths(&freq);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft sum {kraft}");
    }
}
