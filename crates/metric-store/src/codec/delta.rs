//! Delta and delta-of-delta transforms for integer columns.
//!
//! Monotone columns (steps, timestamps) become sequences of small
//! residuals that LEB128 then packs into one or two bytes each. All
//! arithmetic is wrapping, so the transforms are total (any input
//! roundtrips, including extreme values).

/// First-order deltas of a `u64` column (first element kept verbatim,
/// reinterpreted through two's complement).
pub fn delta_encode_u64(values: &[u64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0u64;
    for &v in values {
        out.push(v.wrapping_sub(prev) as i64);
        prev = v;
    }
    out
}

/// Inverse of [`delta_encode_u64`].
pub fn delta_decode_u64(deltas: &[i64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(deltas.len());
    let mut prev = 0u64;
    for &d in deltas {
        prev = prev.wrapping_add(d as u64);
        out.push(prev);
    }
    out
}

/// First-order deltas of an `i64` column.
pub fn delta_encode_i64(values: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0i64;
    for &v in values {
        out.push(v.wrapping_sub(prev));
        prev = v;
    }
    out
}

/// Inverse of [`delta_encode_i64`].
pub fn delta_decode_i64(deltas: &[i64]) -> Vec<i64> {
    let mut out = Vec::with_capacity(deltas.len());
    let mut prev = 0i64;
    for &d in deltas {
        prev = prev.wrapping_add(d);
        out.push(prev);
    }
    out
}

/// Second-order (delta-of-delta) encoding, as used by Gorilla for
/// timestamps: regular sampling intervals produce long runs of zeros.
pub fn dod_encode_i64(values: &[i64]) -> Vec<i64> {
    delta_encode_i64(&delta_encode_i64(values))
}

/// Inverse of [`dod_encode_i64`].
pub fn dod_decode_i64(dods: &[i64]) -> Vec<i64> {
    delta_decode_i64(&delta_decode_i64(dods))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let values: Vec<u64> = vec![0, 1, 5, 5, 100, u64::MAX, 0, 42];
        assert_eq!(delta_decode_u64(&delta_encode_u64(&values)), values);
    }

    #[test]
    fn i64_roundtrip_extremes() {
        let values = vec![i64::MIN, i64::MAX, 0, -1, 1, i64::MIN, i64::MIN];
        assert_eq!(delta_decode_i64(&delta_encode_i64(&values)), values);
    }

    #[test]
    fn monotone_steps_become_small_residuals() {
        let steps: Vec<u64> = (0..100).map(|i| i * 10).collect();
        let deltas = delta_encode_u64(&steps);
        assert!(deltas[1..].iter().all(|&d| d == 10));
    }

    #[test]
    fn dod_of_regular_timestamps_is_zero() {
        let times: Vec<i64> = (0..100).map(|i| 1_000_000 + i * 250).collect();
        let dods = dod_encode_i64(&times);
        // First two entries carry the base and interval; the rest vanish.
        assert!(dods[2..].iter().all(|&d| d == 0));
        assert_eq!(dod_decode_i64(&dods), times);
    }

    #[test]
    fn empty_and_single() {
        assert!(delta_encode_u64(&[]).is_empty());
        assert_eq!(delta_decode_u64(&delta_encode_u64(&[7])), vec![7]);
        assert_eq!(dod_decode_i64(&dod_encode_i64(&[-3])), vec![-3]);
    }
}
