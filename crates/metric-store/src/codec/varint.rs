//! LEB128 variable-length integers and zigzag signed mapping.

use crate::error::StoreError;

/// Appends a `u64` as LEB128 (7 bits per byte, continuation bit high).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 `u64` from `data` starting at `*pos`, advancing it.
pub fn read_u64(data: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or_else(|| StoreError::Truncated("varint".into()))?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(StoreError::Corrupt("varint overflows u64".into()));
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift > 63 {
            return Err(StoreError::Corrupt("varint too long".into()));
        }
    }
}

/// Maps a signed integer to unsigned so small magnitudes stay small
/// (`0 → 0, -1 → 1, 1 → 2, -2 → 3, ...`).
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes an `i64` as zigzag + LEB128.
pub fn write_i64_zigzag(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Reads an `i64` written by [`write_i64_zigzag`].
pub fn read_i64_zigzag(data: &[u8], pos: &mut usize) -> Result<i64, StoreError> {
    Ok(unzigzag(read_u64(data, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encoding_is_compact() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 300);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(zigzag(2), 4);
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456_789, -987_654_321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn i64_roundtrip() {
        let values = [i64::MIN, -300, -1, 0, 1, 300, i64::MAX];
        let mut buf = Vec::new();
        for v in values {
            write_i64_zigzag(&mut buf, v);
        }
        let mut pos = 0;
        for v in values {
            assert_eq!(read_i64_zigzag(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 1_000_000);
        let mut pos = 0;
        assert!(read_u64(&buf[..buf.len() - 1], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_u64(&[], &mut pos).is_err());
    }

    #[test]
    fn overlong_or_overflowing_varint_rejected() {
        // 11 continuation bytes: too long for u64.
        let bad = vec![0x80u8; 10];
        let mut with_end = bad.clone();
        with_end.push(0x02); // would overflow
        let mut pos = 0;
        assert!(read_u64(&with_end, &mut pos).is_err());
    }
}
