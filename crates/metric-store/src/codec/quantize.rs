//! Bounded-error float quantization.
//!
//! Telemetry metrics (power, utilization, throughput) rarely deserve
//! all 52 mantissa bits — the sensors themselves are only a few
//! percent accurate. Zeroing the low mantissa bits before XOR
//! compression multiplies the compression ratio while keeping the
//! *relative* error provably below `2^-(kept_bits)` for finite values.
//! Non-finite values (NaN, ±∞) pass through untouched — masking a
//! NaN's mantissa could silently turn it into infinity.
//!
//! This is the classic "bit grooming" filter of scientific data
//! compression (also available in NetCDF-C as quantize modes).

/// Quantizes one value, keeping `mantissa_bits` of the 52-bit mantissa.
pub fn quantize_value(v: f64, mantissa_bits: u8) -> f64 {
    if !v.is_finite() || mantissa_bits >= 52 {
        return v;
    }
    let drop = 52 - mantissa_bits as u64;
    let bits = v.to_bits();
    // Round-to-nearest on the dropped bits (add half, then mask), with
    // saturation guard: rounding can carry into the exponent, which is
    // numerically correct (rounds up to the next binade).
    let half = 1u64 << (drop - 1);
    let rounded = bits.checked_add(half).unwrap_or(bits);
    let masked = rounded & !((1u64 << drop) - 1);
    let out = f64::from_bits(masked);
    // The carry can overflow the exponent into Inf for values near
    // f64::MAX; refuse to amplify, keep the original.
    if out.is_finite() {
        out
    } else {
        v
    }
}

/// Quantizes a column in place.
pub fn quantize_column(values: &mut [f64], mantissa_bits: u8) {
    for v in values.iter_mut() {
        *v = quantize_value(*v, mantissa_bits);
    }
}

/// Worst-case relative error bound for a mantissa width.
pub fn relative_error_bound(mantissa_bits: u8) -> f64 {
    if mantissa_bits >= 52 {
        0.0
    } else {
        // Round-to-nearest halves the truncation error.
        2.0f64.powi(-(mantissa_bits as i32) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_stays_within_bound() {
        let mut x = 0xDEADBEEFu64;
        for bits in [8u8, 12, 16, 24, 40] {
            let bound = relative_error_bound(bits);
            for _ in 0..10_000 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = ((x >> 11) as f64 / (1u64 << 53) as f64) * 2e6 - 1e6;
                if v == 0.0 {
                    continue;
                }
                let q = quantize_value(v, bits);
                let rel = ((q - v) / v).abs();
                assert!(
                    rel <= bound * 1.0000001,
                    "bits={bits} v={v} q={q} rel={rel} bound={bound}"
                );
            }
        }
    }

    #[test]
    fn full_width_is_identity() {
        for v in [1.0, -2.5, 1e-300, f64::MAX] {
            assert_eq!(quantize_value(v, 52).to_bits(), v.to_bits());
            assert_eq!(quantize_value(v, 60).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn non_finite_values_untouched() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(quantize_value(v, 8).to_bits(), v.to_bits());
        }
        // Zero and subnormals survive.
        assert_eq!(quantize_value(0.0, 8), 0.0);
        assert_eq!(quantize_value(-0.0, 8).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn near_max_does_not_overflow() {
        let v = f64::MAX;
        let q = quantize_value(v, 8);
        assert!(q.is_finite());
    }

    #[test]
    fn quantization_improves_xor_compression() {
        // A noisy power trace: ~260 W ± noise.
        let mut x = 7u64;
        let mut values: Vec<f64> = (0..50_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                260.0 + ((x >> 40) as f64 / 65_536.0) * 10.0
            })
            .collect();
        let exact = crate::codec::xor::encode(&values);
        quantize_column(&mut values, 12);
        let quantized = crate::codec::xor::encode(&values);
        assert!(
            quantized.len() * 3 < exact.len() * 2,
            "12-bit mantissa should cut at least a third: {} vs {}",
            quantized.len(),
            exact.len()
        );
        // And the data still decodes exactly (lossy at quantize time,
        // lossless after).
        let back = crate::codec::xor::decode(&quantized).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn idempotent() {
        for bits in [8u8, 16, 30] {
            let v = 123.456789;
            let once = quantize_value(v, bits);
            let twice = quantize_value(once, bits);
            assert_eq!(once.to_bits(), twice.to_bits());
        }
    }
}
