//! Byte shuffle (transpose) filter.
//!
//! Groups the i-th byte of every `width`-byte element together, so that
//! slowly-varying high-order bytes of numeric columns form long constant
//! runs that RLE/LZ then collapse. This is blosc's `shuffle` filter.

/// Transposes `data` viewed as elements of `width` bytes. A trailing
/// partial element (and the case `width <= 1`) is passed through
/// unchanged at the end of the buffer.
pub fn shuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 || data.len() < width {
        return data.to_vec();
    }
    let elems = data.len() / width;
    let body = elems * width;
    let mut out = Vec::with_capacity(data.len());
    for lane in 0..width {
        for e in 0..elems {
            out.push(data[e * width + lane]);
        }
    }
    out.extend_from_slice(&data[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], width: usize) -> Vec<u8> {
    if width <= 1 || data.len() < width {
        return data.to_vec();
    }
    let elems = data.len() / width;
    let body = elems * width;
    let mut out = vec![0u8; data.len()];
    for lane in 0..width {
        for e in 0..elems {
            out[e * width + lane] = data[lane * elems + e];
        }
    }
    out[body..].copy_from_slice(&data[body..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_multiple() {
        let data: Vec<u8> = (0..64).collect();
        assert_eq!(unshuffle(&shuffle(&data, 8), 8), data);
    }

    #[test]
    fn roundtrip_with_tail() {
        let data: Vec<u8> = (0..67).collect();
        assert_eq!(unshuffle(&shuffle(&data, 8), 8), data);
    }

    #[test]
    fn width_one_is_identity() {
        let data = vec![1, 2, 3];
        assert_eq!(shuffle(&data, 1), data);
        assert_eq!(unshuffle(&data, 1), data);
        assert_eq!(shuffle(&data, 0), data);
    }

    #[test]
    fn short_input_is_identity() {
        let data = vec![1, 2, 3];
        assert_eq!(shuffle(&data, 8), data);
    }

    #[test]
    fn groups_high_order_bytes() {
        // Two little-endian u32 values that share their top three bytes.
        let data = [0x01, 0xAA, 0xBB, 0xCC, 0x02, 0xAA, 0xBB, 0xCC];
        let shuffled = shuffle(&data, 4);
        assert_eq!(shuffled, [0x01, 0x02, 0xAA, 0xAA, 0xBB, 0xBB, 0xCC, 0xCC]);
    }

    #[test]
    fn shuffle_improves_rle_on_numeric_data() {
        // Slowly increasing u64 values: high bytes constant.
        let mut data = Vec::new();
        for i in 0..10_000u64 {
            data.extend_from_slice(&(1_000_000_000u64 + i).to_le_bytes());
        }
        let plain = super::super::rle::encode(&data).len();
        let shuf = super::super::rle::encode(&shuffle(&data, 8)).len();
        assert!(shuf < plain / 2, "shuffle+rle {shuf} vs rle {plain}");
    }
}
