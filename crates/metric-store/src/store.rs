//! The storage abstraction shared by all metric backends, plus the
//! self-describing chunk frame used by the binary formats.

use crate::checksum::crc32;
use crate::codec::{decode_pipeline, encode_pipeline, CodecId};
use crate::error::StoreError;
use crate::pool::WorkerPool;
use crate::series::MetricSeries;

/// Which on-disk representation a run uses for its bulky metrics.
///
/// Mirrors the paper's Table 1 rows: inline JSON (the *normal* provenance
/// file), a Zarr-like chunked store, and a NetCDF-like single file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageFormat {
    /// Metrics inline in the PROV-JSON document (paper: `Original_file.json`).
    InlineJson,
    /// Chunked, codec-pipelined directory store (paper: `Converted_to.zarr`).
    ZarrLike,
    /// Single-file header+variables layout (paper: `Converted_to.nc`).
    NetCdfLike,
}

impl StorageFormat {
    /// Short name used in file names and reports.
    pub fn name(&self) -> &'static str {
        match self {
            StorageFormat::InlineJson => "json",
            StorageFormat::ZarrLike => "zarr",
            StorageFormat::NetCdfLike => "nc",
        }
    }
}

impl std::fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Common interface of metric storage backends.
pub trait MetricStore {
    /// Persists one series (replacing any previous series with the same
    /// name and context).
    fn write_series(&self, series: &MetricSeries) -> Result<(), StoreError>;

    /// Persists a batch of series, encoding through `pool` where the
    /// backend supports it.
    ///
    /// The default implementation is the plain serial loop; backends
    /// with parallel-safe layouts override it. Every override must keep
    /// the on-disk bytes identical to the serial loop for any pool size
    /// — the finalize pipeline's determinism guarantee rests on it.
    fn write_many(&self, series: &[&MetricSeries], pool: &WorkerPool) -> Result<(), StoreError> {
        let _ = pool;
        for s in series {
            self.write_series(s)?;
        }
        Ok(())
    }

    /// Reads one series back.
    fn read_series(&self, name: &str, context: &str) -> Result<MetricSeries, StoreError>;

    /// Lists stored `(name, context)` pairs.
    fn list_series(&self) -> Result<Vec<(String, String)>, StoreError>;

    /// Total bytes used on disk by this store.
    fn size_bytes(&self) -> Result<u64, StoreError>;
}

// ---------------------------------------------------------------------------
// Chunk framing
// ---------------------------------------------------------------------------

/// Magic bytes opening every chunk frame.
pub const CHUNK_MAGIC: [u8; 4] = *b"YCK1";

/// Encodes `payload` through `codecs` and frames it:
///
/// ```text
/// magic(4) n_codecs(1) codec_ids(n) raw_len(8 LE) enc_len(8 LE)
/// crc32_of_payload(4 LE) encoded_bytes
/// ```
pub fn frame_chunk(payload: &[u8], codecs: &[CodecId]) -> Vec<u8> {
    let encoded = encode_pipeline(payload, codecs);
    let mut out = Vec::with_capacity(encoded.len() + 32);
    out.extend_from_slice(&CHUNK_MAGIC);
    out.push(codecs.len() as u8);
    for c in codecs {
        out.push(*c as u8);
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&encoded);
    out
}

/// Decodes a frame produced by [`frame_chunk`], returning the payload and
/// the total number of bytes consumed (frames can be concatenated).
pub fn unframe_chunk(data: &[u8]) -> Result<(Vec<u8>, usize), StoreError> {
    let need = |n: usize| -> Result<(), StoreError> {
        if data.len() < n {
            Err(StoreError::Truncated(format!(
                "chunk frame needs {n} bytes, has {}",
                data.len()
            )))
        } else {
            Ok(())
        }
    };
    need(5)?;
    if data[..4] != CHUNK_MAGIC {
        return Err(StoreError::UnknownFormat("bad chunk magic".into()));
    }
    let n_codecs = data[4] as usize;
    let mut pos = 5;
    need(pos + n_codecs + 20)?;
    let mut codecs = Vec::with_capacity(n_codecs);
    for _ in 0..n_codecs {
        codecs.push(CodecId::from_u8(data[pos])?);
        pos += 1;
    }
    let raw_len = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("len checked")) as usize;
    pos += 8;
    let enc_len = u64::from_le_bytes(data[pos..pos + 8].try_into().expect("len checked")) as usize;
    pos += 8;
    let want_crc = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("len checked"));
    pos += 4;
    need(pos + enc_len)?;
    let payload = decode_pipeline(&data[pos..pos + enc_len], &codecs)?;
    if payload.len() != raw_len {
        return Err(StoreError::Corrupt(format!(
            "chunk declared {raw_len} bytes but decoded {}",
            payload.len()
        )));
    }
    if crc32(&payload) != want_crc {
        return Err(StoreError::Corrupt("chunk crc mismatch".into()));
    }
    Ok((payload, pos + enc_len))
}

/// Recursively sums file sizes under a path (file or directory).
pub fn path_size_bytes(path: &std::path::Path) -> Result<u64, StoreError> {
    let meta = std::fs::metadata(path)?;
    if meta.is_file() {
        return Ok(meta.len());
    }
    let mut total = 0u64;
    for entry in std::fs::read_dir(path)? {
        total += path_size_bytes(&entry?.path())?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_various_pipelines() {
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        for codecs in [
            vec![],
            vec![CodecId::Rle],
            vec![CodecId::Lz77, CodecId::Huffman],
            vec![CodecId::Shuffle8, CodecId::Lz77, CodecId::Huffman],
        ] {
            let framed = frame_chunk(&payload, &codecs);
            let (back, consumed) = unframe_chunk(&framed).unwrap();
            assert_eq!(back, payload);
            assert_eq!(consumed, framed.len());
        }
    }

    #[test]
    fn concatenated_frames_parse_sequentially() {
        let a = frame_chunk(b"first", &[CodecId::Huffman]);
        let b = frame_chunk(b"second chunk", &[]);
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        let (p1, used1) = unframe_chunk(&joined).unwrap();
        assert_eq!(p1, b"first");
        let (p2, used2) = unframe_chunk(&joined[used1..]).unwrap();
        assert_eq!(p2, b"second chunk");
        assert_eq!(used1 + used2, joined.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut framed = frame_chunk(b"payload", &[]);
        framed[0] = b'X';
        assert!(matches!(
            unframe_chunk(&framed),
            Err(StoreError::UnknownFormat(_))
        ));
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let framed = frame_chunk(&vec![7u8; 4096], &[]);
        let mut bad = framed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(unframe_chunk(&bad).is_err());
    }

    #[test]
    fn truncated_frames_error() {
        let framed = frame_chunk(b"some payload bytes", &[CodecId::Rle]);
        for cut in 0..framed.len() {
            assert!(
                unframe_chunk(&framed[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn unknown_codec_id_rejected() {
        let mut framed = frame_chunk(b"x", &[CodecId::Rle]);
        framed[5] = 99; // codec id byte
        assert!(matches!(
            unframe_chunk(&framed),
            Err(StoreError::UnknownFormat(_))
        ));
    }

    #[test]
    fn format_names() {
        assert_eq!(StorageFormat::InlineJson.name(), "json");
        assert_eq!(StorageFormat::ZarrLike.to_string(), "zarr");
        assert_eq!(StorageFormat::NetCdfLike.name(), "nc");
    }
}
