//! Zarr-like chunked column store.
//!
//! One directory per store; one sub-directory per series; inside it a
//! `.zarray` JSON metadata file and one framed chunk file per
//! (column, chunk) pair:
//!
//! ```text
//! store/
//!   .zgroup
//!   loss@training_1a2b3c4d/
//!     .zarray
//!     steps.0   steps.1   ...
//!     epochs.0  epochs.1  ...
//!     times.0   times.1   ...
//!     values.0  values.1  ...
//! ```
//!
//! Chunks are independent (each frame is self-describing with its codec
//! pipeline and CRC), so they compress and decompress in parallel with
//! rayon — the property that lets the paper's library spill very long
//! metric series without stalling training.

use crate::checksum::crc32;
use crate::codec::{self, CodecId};
use crate::error::StoreError;
use crate::pool::WorkerPool;
use crate::series::{MetricPoint, MetricSeries};
use crate::store::{frame_chunk, path_size_bytes, unframe_chunk, MetricStore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// How the `values` (f64) column is encoded inside each chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FloatEncoding {
    /// Gorilla-style XOR bit-packing (best for smooth series).
    Xor,
    /// Raw little-endian bytes; the byte pipeline (shuffle + LZ + Huffman)
    /// does all the work.
    Raw,
    /// Bounded-error quantization (keep `mantissa_bits` of the
    /// mantissa, relative error ≤ 2^-(bits+1)) followed by XOR packing —
    /// the lossy mode for noisy telemetry where sensors are only a few
    /// percent accurate anyway.
    XorQuantized {
        /// Mantissa bits kept (≥52 disables quantization).
        mantissa_bits: u8,
    },
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct ZarrOptions {
    /// Points per chunk (also the parallelism grain).
    pub chunk_points: usize,
    /// Float column encoding.
    pub float_encoding: FloatEncoding,
    /// Byte-codec pipeline applied to every encoded column chunk.
    pub byte_codecs: Vec<CodecId>,
}

impl Default for ZarrOptions {
    fn default() -> Self {
        ZarrOptions {
            chunk_points: 8192,
            float_encoding: FloatEncoding::Xor,
            byte_codecs: vec![CodecId::Lz77, CodecId::Huffman],
        }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct ArrayMeta {
    format: String,
    name: String,
    context: String,
    points: usize,
    chunk_points: usize,
    float_encoding: FloatEncoding,
    /// Per-chunk `(min step, max step)` statistics, enabling range
    /// queries that skip chunks entirely (absent in files written by
    /// older versions — range reads then scan every chunk).
    #[serde(default)]
    chunk_step_ranges: Vec<(u64, u64)>,
}

const COLUMNS: [&str; 4] = ["steps", "epochs", "times", "values"];

/// A Zarr-like store rooted at a directory.
pub struct ZarrStore {
    root: PathBuf,
    opts: ZarrOptions,
    /// Per-chunk column-encode timing; fetched once at construction so
    /// pool workers never touch the registry mutex.
    encode_hist: std::sync::Arc<obs::Histogram>,
}

/// Chunk-encode timing, shared with the NetCDF store under one name.
fn encode_histogram() -> std::sync::Arc<obs::Histogram> {
    obs::global().histogram("metric_store_chunk_encode_seconds")
}

impl ZarrStore {
    /// Creates (or opens) a store at `root`.
    pub fn create(root: impl AsRef<Path>, opts: ZarrOptions) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let group = root.join(".zgroup");
        if !group.exists() {
            std::fs::write(
                &group,
                serde_json::to_string(&serde_json::json!({
                    "format": "yzarr-1"
                }))?,
            )?;
        }
        if opts.chunk_points == 0 {
            return Err(StoreError::BadMetadata("chunk_points must be > 0".into()));
        }
        Ok(ZarrStore {
            root,
            opts,
            encode_hist: encode_histogram(),
        })
    }

    /// Opens an existing store with default options (reads are driven by
    /// per-series metadata, so options only affect new writes).
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        if !root.join(".zgroup").is_file() {
            return Err(StoreError::UnknownFormat(format!(
                "{} is not a yzarr store",
                root.display()
            )));
        }
        Ok(ZarrStore {
            root,
            opts: ZarrOptions::default(),
            encode_hist: encode_histogram(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn series_dir(&self, name: &str, context: &str) -> PathBuf {
        self.root.join(sanitize_key(name, context))
    }

    /// Appends points to an existing series (or creates it), writing
    /// only the chunks that change — the tail chunk plus new ones. This
    /// is the incremental path an *online* logger uses: cost is
    /// `O(appended + chunk_points)`, not `O(series)`.
    ///
    /// The appended points must continue the existing series (their
    /// count is simply concatenated; ordering semantics are the
    /// caller's, as with `write_series`).
    pub fn append_series(
        &self,
        name: &str,
        context: &str,
        new_points: &[crate::series::MetricPoint],
    ) -> Result<(), StoreError> {
        let dir = self.series_dir(name, context);
        let meta_path = dir.join(".zarray");
        if !meta_path.is_file() {
            // No existing series: plain write.
            let mut series = MetricSeries::new(name, context);
            series.points.extend_from_slice(new_points);
            return self.write_series(&series);
        }
        let mut meta: ArrayMeta = serde_json::from_str(&std::fs::read_to_string(&meta_path)?)?;
        if meta.chunk_points != self.opts.chunk_points
            || meta.float_encoding != self.opts.float_encoding
        {
            return Err(StoreError::BadMetadata(
                "append options differ from the stored series' options".into(),
            ));
        }
        if new_points.is_empty() {
            return Ok(());
        }

        // Load the partial tail chunk (if any), prepend it to the new
        // points, and rewrite from that chunk onward.
        let chunk_points = meta.chunk_points;
        let full_chunks = meta.points / chunk_points;
        let tail_len = meta.points % chunk_points;
        let mut pending: Vec<crate::series::MetricPoint> =
            Vec::with_capacity(tail_len + new_points.len());
        if tail_len > 0 {
            let tail = self.read_chunk(&dir, full_chunks, meta.float_encoding)?;
            pending.extend(tail);
        }
        pending.extend_from_slice(new_points);

        meta.chunk_step_ranges.truncate(full_chunks);
        for (ci, chunk) in (full_chunks..).zip(pending.chunks(chunk_points)) {
            self.write_chunk(&dir, ci, chunk)?;
            meta.chunk_step_ranges.push(step_range(chunk));
        }
        meta.points += new_points.len();
        std::fs::write(&meta_path, serde_json::to_string_pretty(&meta)?)?;
        Ok(())
    }

    /// Reads one chunk of a series back into points.
    fn read_chunk(
        &self,
        dir: &Path,
        ci: usize,
        encoding: FloatEncoding,
    ) -> Result<Vec<crate::series::MetricPoint>, StoreError> {
        let mut cols: [Vec<u8>; 4] = Default::default();
        for (k, col) in COLUMNS.iter().enumerate() {
            let raw = std::fs::read(dir.join(format!("{col}.{ci}")))?;
            let (payload, _) = unframe_chunk(&raw)?;
            cols[k] = payload;
        }
        let steps = codec::decode_u64_column(&cols[0])?;
        let epochs = codec::decode_u32_column(&cols[1])?;
        let times = codec::decode_i64_column(&cols[2])?;
        let values = match encoding {
            FloatEncoding::Xor | FloatEncoding::XorQuantized { .. } => {
                codec::xor::decode(&cols[3])?
            }
            FloatEncoding::Raw => codec::decode_f64_raw(&cols[3])?,
        };
        let series = MetricSeries::from_columns("chunk", "chunk", steps, epochs, times, values)
            .ok_or_else(|| StoreError::Corrupt("chunk column mismatch".into()))?;
        Ok(series.points)
    }

    /// Reads only the points whose `step` lies in `[from, to]`,
    /// decoding just the chunks whose step range overlaps — an
    /// `O(matching chunks)` query instead of a full-series load,
    /// assuming per-chunk statistics were written (files from this
    /// version always carry them).
    pub fn read_range(
        &self,
        name: &str,
        context: &str,
        from: u64,
        to: u64,
    ) -> Result<MetricSeries, StoreError> {
        let dir = self.series_dir(name, context);
        let meta_path = dir.join(".zarray");
        if !meta_path.is_file() {
            return Err(StoreError::NotFound(format!("{name}@{context}")));
        }
        let meta: ArrayMeta = serde_json::from_str(&std::fs::read_to_string(&meta_path)?)?;
        let n_chunks = meta.points.div_ceil(meta.chunk_points.max(1));

        let mut out = MetricSeries::new(name, context);
        for ci in 0..n_chunks {
            if let Some(&(lo, hi)) = meta.chunk_step_ranges.get(ci) {
                if hi < from || lo > to {
                    continue; // chunk skipped without touching disk
                }
            }
            for p in self.read_chunk(&dir, ci, meta.float_encoding)? {
                if p.step >= from && p.step <= to {
                    out.push(p);
                }
            }
        }
        Ok(out)
    }

    /// Removes any previous data for the series and writes its
    /// `.zarray` metadata, returning the directory ready for chunks.
    fn prepare_series_dir(&self, series: &MetricSeries) -> Result<PathBuf, StoreError> {
        let dir = self.series_dir(&series.name, &series.context);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;

        let chunk_step_ranges: Vec<(u64, u64)> = series
            .points
            .chunks(self.opts.chunk_points)
            .map(step_range)
            .collect();
        let meta = ArrayMeta {
            format: "yzarr-1".into(),
            name: series.name.clone(),
            context: series.context.clone(),
            points: series.len(),
            chunk_points: self.opts.chunk_points,
            float_encoding: self.opts.float_encoding,
            chunk_step_ranges,
        };
        std::fs::write(dir.join(".zarray"), serde_json::to_string_pretty(&meta)?)?;
        Ok(dir)
    }

    /// Encodes and writes the four column files of one chunk. A chunk's
    /// bytes depend only on its points and the store options, so chunks
    /// can be written from any thread in any order.
    fn write_chunk(&self, dir: &Path, ci: usize, chunk: &[MetricPoint]) -> Result<(), StoreError> {
        let mut trace = obs::trace::span("chunk_encode");
        if obs::trace::is_enabled() {
            trace.annotate("chunk", ci.to_string());
            trace.annotate("points", chunk.len().to_string());
        }
        let encoded = self.encode_hist.time(|| self.encode_columns(chunk));
        drop(trace);
        for (col, payload) in encoded {
            // The values column may already be bit-packed (XOR);
            // shuffle only helps raw fixed-width data.
            let framed = frame_chunk(&payload, &self.opts.byte_codecs);
            std::fs::write(dir.join(format!("{col}.{ci}")), framed)?;
        }
        Ok(())
    }

    fn encode_columns(&self, chunk: &[crate::series::MetricPoint]) -> [(String, Vec<u8>); 4] {
        let mut steps = Vec::with_capacity(chunk.len());
        let mut epochs = Vec::with_capacity(chunk.len());
        let mut times = Vec::with_capacity(chunk.len());
        let mut values = Vec::with_capacity(chunk.len());
        for p in chunk {
            steps.push(p.step);
            epochs.push(p.epoch);
            times.push(p.time_us);
            values.push(p.value);
        }
        let values_bytes = match self.opts.float_encoding {
            FloatEncoding::Xor => codec::xor::encode(&values),
            FloatEncoding::Raw => codec::encode_f64_raw(&values),
            FloatEncoding::XorQuantized { mantissa_bits } => {
                let mut q = values.clone();
                codec::quantize::quantize_column(&mut q, mantissa_bits);
                codec::xor::encode(&q)
            }
        };
        [
            ("steps".into(), codec::encode_u64_column(&steps)),
            ("epochs".into(), codec::encode_u32_column(&epochs)),
            ("times".into(), codec::encode_i64_column(&times)),
            ("values".into(), values_bytes),
        ]
    }
}

impl MetricStore for ZarrStore {
    fn write_series(&self, series: &MetricSeries) -> Result<(), StoreError> {
        let dir = self.prepare_series_dir(series)?;

        // Chunks encode and write in parallel; each is independent.
        let chunks: Vec<(usize, &[MetricPoint])> = series
            .points
            .chunks(self.opts.chunk_points)
            .enumerate()
            .collect();
        let results: Vec<Result<(), StoreError>> = chunks
            .par_iter()
            .map(|(ci, chunk)| self.write_chunk(&dir, *ci, chunk))
            .collect();
        for r in results {
            r?;
        }
        Ok(())
    }

    fn write_many(&self, series: &[&MetricSeries], pool: &WorkerPool) -> Result<(), StoreError> {
        // Metadata is cheap and order-sensitive, so it goes first,
        // serially; then every (series, chunk) pair becomes one
        // independent encode+write task in a single flat pool run, so
        // short series don't serialize behind long ones.
        let mut tasks: Vec<(PathBuf, usize, &[MetricPoint])> = Vec::new();
        for s in series {
            let dir = self.prepare_series_dir(s)?;
            for (ci, chunk) in s.points.chunks(self.opts.chunk_points).enumerate() {
                tasks.push((dir.clone(), ci, chunk));
            }
        }
        pool.try_map(tasks.len(), |i| {
            let (dir, ci, chunk) = &tasks[i];
            self.write_chunk(dir, *ci, chunk)
        })?;
        Ok(())
    }

    fn read_series(&self, name: &str, context: &str) -> Result<MetricSeries, StoreError> {
        let dir = self.series_dir(name, context);
        let meta_path = dir.join(".zarray");
        if !meta_path.is_file() {
            return Err(StoreError::NotFound(format!("{name}@{context}")));
        }
        let meta: ArrayMeta = serde_json::from_str(&std::fs::read_to_string(&meta_path)?)?;
        if meta.chunk_points == 0 {
            return Err(StoreError::BadMetadata("chunk_points is zero".into()));
        }
        let n_chunks = meta.points.div_ceil(meta.chunk_points);

        // Decode all chunks in parallel, then stitch in order.
        let decoded: Vec<Result<[Vec<u8>; 4], StoreError>> = (0..n_chunks)
            .into_par_iter()
            .map(|ci| {
                let mut cols: [Vec<u8>; 4] = Default::default();
                for (k, col) in COLUMNS.iter().enumerate() {
                    let raw = std::fs::read(dir.join(format!("{col}.{ci}")))?;
                    let (payload, used) = unframe_chunk(&raw)?;
                    if used != raw.len() {
                        return Err(StoreError::Corrupt(format!(
                            "trailing bytes in chunk {col}.{ci}"
                        )));
                    }
                    cols[k] = payload;
                }
                Ok(cols)
            })
            .collect();

        let mut steps = Vec::with_capacity(meta.points);
        let mut epochs = Vec::with_capacity(meta.points);
        let mut times = Vec::with_capacity(meta.points);
        let mut values = Vec::with_capacity(meta.points);
        for chunk in decoded {
            let [s, e, t, v] = chunk?;
            steps.extend(codec::decode_u64_column(&s)?);
            epochs.extend(codec::decode_u32_column(&e)?);
            times.extend(codec::decode_i64_column(&t)?);
            let vals = match meta.float_encoding {
                FloatEncoding::Xor | FloatEncoding::XorQuantized { .. } => codec::xor::decode(&v)?,
                FloatEncoding::Raw => codec::decode_f64_raw(&v)?,
            };
            values.extend(vals);
        }
        if steps.len() != meta.points {
            return Err(StoreError::Corrupt(format!(
                "expected {} points, decoded {}",
                meta.points,
                steps.len()
            )));
        }
        MetricSeries::from_columns(&meta.name, &meta.context, steps, epochs, times, values)
            .ok_or_else(|| StoreError::Corrupt("column length mismatch".into()))
    }

    fn list_series(&self) -> Result<Vec<(String, String)>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let path = entry?.path();
            let meta_path = path.join(".zarray");
            if meta_path.is_file() {
                let meta: ArrayMeta = serde_json::from_str(&std::fs::read_to_string(&meta_path)?)?;
                out.push((meta.name, meta.context));
            }
        }
        out.sort();
        Ok(out)
    }

    fn size_bytes(&self) -> Result<u64, StoreError> {
        path_size_bytes(&self.root)
    }
}

/// `(min, max)` of the step column in one chunk (0,0 for empty chunks).
fn step_range(chunk: &[crate::series::MetricPoint]) -> (u64, u64) {
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for p in chunk {
        lo = lo.min(p.step);
        hi = hi.max(p.step);
    }
    if chunk.is_empty() {
        (0, 0)
    } else {
        (lo, hi)
    }
}

/// Produces a filesystem-safe directory name for a series key, with a
/// CRC suffix so distinct keys never collide after sanitization.
fn sanitize_key(name: &str, context: &str) -> String {
    let key = format!("{name}@{context}");
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}_{:08x}", crc32(key.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::MetricPoint;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("yzarr_test_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn series(n: usize) -> MetricSeries {
        let mut s = MetricSeries::new("loss", "training");
        for i in 0..n {
            s.push(MetricPoint {
                step: i as u64,
                epoch: (i / 100) as u32,
                time_us: 1_000_000_000 + (i as i64) * 12_345,
                value: 2.0 / (1.0 + i as f64 * 0.001),
            });
        }
        s
    }

    #[test]
    fn roundtrip_multi_chunk() {
        let dir = tmpdir("roundtrip");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        let s = series(10_500); // 11 chunks, last partial
        store.write_series(&s).unwrap();
        let back = store.read_series("loss", "training").unwrap();
        assert_eq!(s, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn roundtrip_raw_float_encoding() {
        let dir = tmpdir("raw");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 512,
                float_encoding: FloatEncoding::Raw,
                byte_codecs: vec![CodecId::Shuffle8, CodecId::Lz77, CodecId::Huffman],
            },
        )
        .unwrap();
        let s = series(2000);
        store.write_series(&s).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_series_roundtrips() {
        let dir = tmpdir("empty");
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        let s = MetricSeries::new("nothing", "validation");
        store.write_series(&s).unwrap();
        assert_eq!(store.read_series("nothing", "validation").unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_replaces_series() {
        let dir = tmpdir("overwrite");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 100,
                ..Default::default()
            },
        )
        .unwrap();
        store.write_series(&series(1000)).unwrap();
        let short = series(50);
        store.write_series(&short).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), short);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_series_not_found() {
        let dir = tmpdir("missing");
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        assert!(matches!(
            store.read_series("ghost", "training"),
            Err(StoreError::NotFound(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_series_reports_keys() {
        let dir = tmpdir("list");
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        store.write_series(&series(10)).unwrap();
        let mut s2 = series(10);
        s2.name = "accuracy".into();
        s2.context = "validation".into();
        store.write_series(&s2).unwrap();
        assert_eq!(
            store.list_series().unwrap(),
            vec![
                ("accuracy".to_string(), "validation".to_string()),
                ("loss".to_string(), "training".to_string()),
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_chunk_detected() {
        let dir = tmpdir("corrupt");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 100,
                ..Default::default()
            },
        )
        .unwrap();
        store.write_series(&series(300)).unwrap();
        // Flip a byte in a chunk payload.
        let sdir = store.series_dir("loss", "training");
        let chunk = sdir.join("values.1");
        let mut bytes = std::fs::read(&chunk).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        std::fs::write(&chunk, bytes).unwrap();
        assert!(store.read_series("loss", "training").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn special_values_survive() {
        let dir = tmpdir("specials");
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        let mut s = MetricSeries::new("weird", "training");
        for (i, v) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 5e-324]
            .into_iter()
            .enumerate()
        {
            s.push(MetricPoint {
                step: i as u64,
                epoch: 0,
                time_us: i as i64,
                value: v,
            });
        }
        store.write_series(&s).unwrap();
        let back = store.read_series("weird", "training").unwrap();
        for (a, b) in s.points.iter().zip(&back.points) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_non_store_dir() {
        let dir = tmpdir("notastore");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ZarrStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sanitize_avoids_collisions() {
        let a = sanitize_key("loss/train", "ctx");
        let b = sanitize_key("loss_train", "ctx");
        assert_ne!(a, b);
        assert!(!a.contains('/'));
    }

    #[test]
    fn zero_chunk_points_rejected() {
        let dir = tmpdir("zerochunk");
        assert!(ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 0,
                ..Default::default()
            }
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_equals_bulk_write() {
        let dir = tmpdir("append_eq");
        let opts = ZarrOptions {
            chunk_points: 100,
            ..Default::default()
        };
        let store = ZarrStore::create(&dir, opts).unwrap();
        let full = series(1_050);

        // Append in odd-sized batches crossing chunk boundaries.
        let mut offset = 0usize;
        for batch in [1usize, 99, 100, 101, 250, 499] {
            store
                .append_series("loss", "training", &full.points[offset..offset + batch])
                .unwrap();
            offset += batch;
        }
        assert_eq!(offset, 1_050);
        let appended = store.read_series("loss", "training").unwrap();
        assert_eq!(appended, full);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_to_missing_series_creates_it() {
        let dir = tmpdir("append_new");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let s = series(10);
        store.append_series("loss", "training", &s.points).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), s);
        // Empty append is a no-op.
        store.append_series("loss", "training", &[]).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap().len(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_only_touches_tail_chunks() {
        let dir = tmpdir("append_tail");
        let opts = ZarrOptions {
            chunk_points: 100,
            ..Default::default()
        };
        let store = ZarrStore::create(&dir, opts).unwrap();
        let full = series(1_000);
        store.write_series(&full).unwrap();

        // Remember first chunk's bytes; append shouldn't rewrite them.
        let sdir = store.series_dir("loss", "training");
        let first_chunk_before = std::fs::read(sdir.join("values.0")).unwrap();
        let extra = series(1_050).points[1_000..].to_vec();
        store.append_series("loss", "training", &extra).unwrap();
        let first_chunk_after = std::fs::read(sdir.join("values.0")).unwrap();
        assert_eq!(first_chunk_before, first_chunk_after);
        assert_eq!(store.read_series("loss", "training").unwrap().len(), 1_050);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_with_mismatched_options_rejected() {
        let dir = tmpdir("append_mismatch");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 100,
                ..Default::default()
            },
        )
        .unwrap();
        store.write_series(&series(50)).unwrap();
        let other = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 7,
                ..Default::default()
            },
        )
        .unwrap();
        let extra = series(1);
        assert!(other
            .append_series("loss", "training", &extra.points)
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_store_roundtrips_within_tolerance() {
        let dir = tmpdir("quantized");
        let bits = 12u8;
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 1000,
                float_encoding: FloatEncoding::XorQuantized {
                    mantissa_bits: bits,
                },
                ..Default::default()
            },
        )
        .unwrap();
        // Noisy telemetry-like values.
        let mut s = MetricSeries::new("power", "telemetry");
        let mut x = 3u64;
        for i in 0..5_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s.push(crate::series::MetricPoint {
                step: i,
                epoch: 0,
                time_us: i as i64,
                value: 260.0 + ((x >> 40) as f64 / 65_536.0) * 10.0,
            });
        }
        store.write_series(&s).unwrap();
        let back = store.read_series("power", "telemetry").unwrap();
        let bound = codec::quantize::relative_error_bound(bits);
        for (a, b) in s.points.iter().zip(&back.points) {
            let rel = ((a.value - b.value) / a.value).abs();
            assert!(rel <= bound * 1.0000001, "{} vs {}", a.value, b.value);
        }

        // And it is meaningfully smaller than the exact store.
        let exact_dir = tmpdir("quantized_exact");
        let exact = ZarrStore::create(
            &exact_dir,
            ZarrOptions {
                chunk_points: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        exact.write_series(&s).unwrap();
        assert!(
            store.size_bytes().unwrap() * 13 < exact.size_bytes().unwrap() * 10,
            "quantized {} vs exact {}",
            store.size_bytes().unwrap(),
            exact.size_bytes().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&exact_dir).ok();
    }

    #[test]
    fn range_reads_return_exact_slices() {
        let dir = tmpdir("range");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let s = series(1_000);
        store.write_series(&s).unwrap();

        let mid = store.read_range("loss", "training", 250, 349).unwrap();
        assert_eq!(mid.len(), 100);
        assert_eq!(mid.points.first().unwrap().step, 250);
        assert_eq!(mid.points.last().unwrap().step, 349);

        let all = store.read_range("loss", "training", 0, u64::MAX).unwrap();
        assert_eq!(all.points, s.points);

        let none = store.read_range("loss", "training", 5_000, 6_000).unwrap();
        assert!(none.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_reads_skip_nonoverlapping_chunks() {
        let dir = tmpdir("range_skip");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 100,
                ..Default::default()
            },
        )
        .unwrap();
        store.write_series(&series(1_000)).unwrap();

        // Corrupt a chunk far outside the queried range: a skipping
        // reader must not notice.
        let sdir = store.series_dir("loss", "training");
        let far = sdir.join("values.9");
        let mut bytes = std::fs::read(&far).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&far, bytes).unwrap();

        let early = store.read_range("loss", "training", 0, 99).unwrap();
        assert_eq!(early.len(), 100, "query untouched by corrupt chunk");
        // A full read must hit the corruption.
        assert!(store.read_series("loss", "training").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_reads_work_after_append() {
        let dir = tmpdir("range_append");
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: 64,
                ..Default::default()
            },
        )
        .unwrap();
        let full = series(500);
        store
            .append_series("loss", "training", &full.points[..200])
            .unwrap();
        store
            .append_series("loss", "training", &full.points[200..])
            .unwrap();
        let tail = store.read_range("loss", "training", 450, 499).unwrap();
        assert_eq!(tail.len(), 50);
        assert_eq!(tail.points[0].step, 450);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compresses_much_better_than_raw_points() {
        let dir = tmpdir("ratio");
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        let s = series(100_000);
        store.write_series(&s).unwrap();
        let raw = (s.len() * 28) as u64; // 8+4+8+8 bytes per point
        let stored = store.size_bytes().unwrap();
        assert!(
            stored < raw / 4,
            "expected at least 4x compression: {stored} vs {raw}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
