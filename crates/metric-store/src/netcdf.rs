//! NetCDF-like single-file store.
//!
//! In the spirit of the classic CDF layout: one file holding a header
//! that describes every variable, followed by a data section of
//! contiguous per-variable blobs.
//!
//! ```text
//! magic "YNC1" | flags u8 | header_len u32 LE | header JSON | body
//! ```
//!
//! The header lists, per series, the four column blobs (`steps`,
//! `epochs`, `times`, `values`) with their offsets, lengths and CRCs
//! inside the body. Columns are stored delta/XOR-encoded; when
//! `compress_columns` is on (the default) each blob additionally runs
//! through the LZ77+Huffman pipeline — which is why, like the paper's
//! real NetCDF files (Table 1: 2.35 MB → 2.30 MB), the resulting file
//! barely shrinks under external compression.
//!
//! Unlike [`crate::zarr::ZarrStore`], the file is rewritten wholesale on
//! every `write_series` — the trade-off the paper describes between the
//! two formats (single self-contained file vs. incremental chunked
//! directory).

use crate::checksum::crc32;
use crate::codec::{self, deflate_like, inflate_like};
use crate::error::StoreError;
use crate::pool::WorkerPool;
use crate::series::MetricSeries;
use crate::store::{path_size_bytes, MetricStore};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"YNC1";
const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// Options for a [`NcStore`].
#[derive(Debug, Clone)]
pub struct NcOptions {
    /// Run each column blob through LZ77+Huffman.
    pub compress_columns: bool,
}

impl Default for NcOptions {
    fn default() -> Self {
        NcOptions {
            compress_columns: true,
        }
    }
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct ColumnDesc {
    offset: u64,
    length: u64,
    crc: u32,
}

#[derive(Debug, Serialize, Deserialize, Clone)]
struct VarDesc {
    name: String,
    context: String,
    points: usize,
    /// steps, epochs, times, values
    columns: [ColumnDesc; 4],
}

#[derive(Debug, Serialize, Deserialize, Default)]
struct Header {
    format: String,
    vars: Vec<VarDesc>,
}

/// A NetCDF-like single-file metric store.
pub struct NcStore {
    path: PathBuf,
    opts: NcOptions,
    /// All series live in memory and the file is rewritten on change,
    /// mirroring how classic NetCDF writers rewrite the header section.
    cache: Mutex<BTreeMap<(String, String), MetricSeries>>,
    /// Per-series column-encode timing; fetched once at construction so
    /// pool workers never touch the registry mutex.
    encode_hist: std::sync::Arc<obs::Histogram>,
}

/// Chunk-encode timing, shared with the Zarr store under one name.
fn encode_histogram() -> std::sync::Arc<obs::Histogram> {
    obs::global().histogram("metric_store_chunk_encode_seconds")
}

impl NcStore {
    /// Creates a store backed by `path` (created on first write).
    pub fn create(path: impl AsRef<Path>, opts: NcOptions) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let store = NcStore {
            path,
            opts,
            cache: Mutex::new(BTreeMap::new()),
            encode_hist: encode_histogram(),
        };
        if store.path.is_file() {
            let loaded = store.load()?;
            *store.cache.lock() = loaded;
        }
        Ok(store)
    }

    /// Opens an existing file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        if !path.is_file() {
            return Err(StoreError::NotFound(path.display().to_string()));
        }
        let store = NcStore {
            path,
            opts: NcOptions::default(),
            cache: Mutex::new(BTreeMap::new()),
            encode_hist: encode_histogram(),
        };
        let loaded = store.load()?;
        *store.cache.lock() = loaded;
        Ok(store)
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn encode_columns(&self, series: &MetricSeries) -> [Vec<u8>; 4] {
        let (steps, epochs, times, values) = series.columns();
        let mut blobs = [
            codec::encode_u64_column(&steps),
            codec::encode_u32_column(&epochs),
            codec::encode_i64_column(&times),
            codec::xor::encode(&values),
        ];
        if self.opts.compress_columns {
            for b in &mut blobs {
                *b = deflate_like(b);
            }
        }
        blobs
    }

    fn decode_columns(
        &self,
        var: &VarDesc,
        blobs: [&[u8]; 4],
        compressed: bool,
    ) -> Result<MetricSeries, StoreError> {
        let mut raw: [Vec<u8>; 4] = Default::default();
        for (i, blob) in blobs.into_iter().enumerate() {
            raw[i] = if compressed {
                inflate_like(blob)?
            } else {
                blob.to_vec()
            };
        }
        let steps = codec::decode_u64_column(&raw[0])?;
        let epochs = codec::decode_u32_column(&raw[1])?;
        let times = codec::decode_i64_column(&raw[2])?;
        let values = codec::xor::decode(&raw[3])?;
        let series =
            MetricSeries::from_columns(&var.name, &var.context, steps, epochs, times, values)
                .ok_or_else(|| StoreError::Corrupt("column length mismatch".into()))?;
        if series.len() != var.points {
            return Err(StoreError::Corrupt(format!(
                "variable {} declared {} points, decoded {}",
                var.name,
                var.points,
                series.len()
            )));
        }
        Ok(series)
    }

    /// Writes the whole file from the in-memory cache.
    fn flush(&self) -> Result<(), StoreError> {
        self.flush_with(&WorkerPool::serial())
    }

    /// Writes the whole file, encoding the per-series column blobs on
    /// `pool` workers. The body is assembled serially in cache
    /// (`BTreeMap`) order from the index-ordered blobs, so the file
    /// bytes are identical for every pool size.
    fn flush_with(&self, pool: &WorkerPool) -> Result<(), StoreError> {
        let cache = self.cache.lock();
        let ordered: Vec<&MetricSeries> = cache.values().collect();
        let encoded: Vec<[Vec<u8>; 4]> = pool.map(ordered.len(), |i| {
            let mut trace = obs::trace::span("chunk_encode");
            if obs::trace::is_enabled() {
                trace.annotate("series", ordered[i].name.clone());
            }
            self.encode_hist.time(|| self.encode_columns(ordered[i]))
        });

        let mut body = Vec::new();
        let mut vars = Vec::new();
        for (series, blobs) in ordered.into_iter().zip(encoded) {
            let columns = blobs.map(|b| {
                let desc = ColumnDesc {
                    offset: body.len() as u64,
                    length: b.len() as u64,
                    crc: crc32(&b),
                };
                body.extend_from_slice(&b);
                desc
            });
            vars.push(VarDesc {
                name: series.name.clone(),
                context: series.context.clone(),
                points: series.len(),
                columns,
            });
        }
        let header = Header {
            format: "ync-1".into(),
            vars,
        };
        let header_json = serde_json::to_vec(&header)?;

        let mut out = Vec::with_capacity(body.len() + header_json.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.push(if self.opts.compress_columns {
            FLAG_COMPRESSED
        } else {
            0
        });
        out.extend_from_slice(&(header_json.len() as u32).to_le_bytes());
        out.extend_from_slice(&header_json);
        out.extend_from_slice(&body);

        // Atomic-ish replace: write sidecar then rename.
        let tmp = self.path.with_extension("nc.tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    /// Reads and decodes the entire file.
    fn load(&self) -> Result<BTreeMap<(String, String), MetricSeries>, StoreError> {
        let data = std::fs::read(&self.path)?;
        if data.len() < 9 || data[..4] != MAGIC {
            return Err(StoreError::UnknownFormat(format!(
                "{} is not a YNC1 file",
                self.path.display()
            )));
        }
        let compressed = data[4] & FLAG_COMPRESSED != 0;
        let header_len = u32::from_le_bytes(data[5..9].try_into().expect("len checked")) as usize;
        let header_end = 9 + header_len;
        let header_bytes = data
            .get(9..header_end)
            .ok_or_else(|| StoreError::Truncated("nc header".into()))?;
        let header: Header = serde_json::from_slice(header_bytes)?;
        if header.format != "ync-1" {
            return Err(StoreError::UnknownFormat(header.format));
        }
        let body = &data[header_end..];

        let mut out = BTreeMap::new();
        for var in &header.vars {
            let mut blobs: [&[u8]; 4] = [&[]; 4];
            for (i, col) in var.columns.iter().enumerate() {
                let start = col.offset as usize;
                let end = start + col.length as usize;
                let blob = body
                    .get(start..end)
                    .ok_or_else(|| StoreError::Truncated(format!("column of {}", var.name)))?;
                if crc32(blob) != col.crc {
                    return Err(StoreError::Corrupt(format!(
                        "crc mismatch in column {i} of {}",
                        var.name
                    )));
                }
                blobs[i] = blob;
            }
            let series = self.decode_columns(var, blobs, compressed)?;
            out.insert((series.name.clone(), series.context.clone()), series);
        }
        Ok(out)
    }
}

impl MetricStore for NcStore {
    fn write_series(&self, series: &MetricSeries) -> Result<(), StoreError> {
        self.cache.lock().insert(
            (series.name.clone(), series.context.clone()),
            series.clone(),
        );
        self.flush()
    }

    fn write_many(&self, series: &[&MetricSeries], pool: &WorkerPool) -> Result<(), StoreError> {
        // Insert everything, then rewrite the file once: a batch of N
        // series costs one flush instead of N wholesale rewrites.
        {
            let mut cache = self.cache.lock();
            for s in series {
                cache.insert((s.name.clone(), s.context.clone()), (*s).clone());
            }
        }
        self.flush_with(pool)
    }

    fn read_series(&self, name: &str, context: &str) -> Result<MetricSeries, StoreError> {
        // Serve from the file (not the cache) so the on-disk format is
        // exercised on every read.
        let loaded = self.load()?;
        loaded
            .get(&(name.to_string(), context.to_string()))
            .cloned()
            .ok_or_else(|| StoreError::NotFound(format!("{name}@{context}")))
    }

    fn list_series(&self) -> Result<Vec<(String, String)>, StoreError> {
        Ok(self.load()?.into_keys().collect())
    }

    fn size_bytes(&self) -> Result<u64, StoreError> {
        if self.path.is_file() {
            path_size_bytes(&self.path)
        } else {
            Ok(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::MetricPoint;

    fn tmpfile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ync_test_{tag}_{}.nc", std::process::id()))
    }

    fn series(name: &str, ctx: &str, n: usize) -> MetricSeries {
        let mut s = MetricSeries::new(name, ctx);
        for i in 0..n {
            s.push(MetricPoint {
                step: i as u64,
                epoch: (i / 64) as u32,
                time_us: 1_700_000_000_000_000 + i as i64 * 500,
                value: (i as f64 * 0.01).sin(),
            });
        }
        s
    }

    #[test]
    fn roundtrip_multiple_series() {
        let path = tmpfile("roundtrip");
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        let a = series("loss", "training", 5000);
        let b = series("accuracy", "validation", 300);
        store.write_series(&a).unwrap();
        store.write_series(&b).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), a);
        assert_eq!(store.read_series("accuracy", "validation").unwrap(), b);
        assert_eq!(store.list_series().unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_data() {
        let path = tmpfile("reopen");
        let a = series("loss", "training", 1000);
        {
            let store = NcStore::create(&path, NcOptions::default()).unwrap();
            store.write_series(&a).unwrap();
        }
        let store2 = NcStore::open(&path).unwrap();
        assert_eq!(store2.read_series("loss", "training").unwrap(), a);
        // Adding another series keeps the first.
        store2.write_series(&series("x", "testing", 10)).unwrap();
        assert_eq!(store2.read_series("loss", "training").unwrap(), a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncompressed_mode_roundtrips() {
        let path = tmpfile("uncompressed");
        let store = NcStore::create(
            &path,
            NcOptions {
                compress_columns: false,
            },
        )
        .unwrap();
        let a = series("loss", "training", 2000);
        store.write_series(&a).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), a);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_file_is_smaller() {
        let path_c = tmpfile("size_c");
        let path_u = tmpfile("size_u");
        let a = series("loss", "training", 50_000);
        let sc = NcStore::create(
            &path_c,
            NcOptions {
                compress_columns: true,
            },
        )
        .unwrap();
        sc.write_series(&a).unwrap();
        let su = NcStore::create(
            &path_u,
            NcOptions {
                compress_columns: false,
            },
        )
        .unwrap();
        su.write_series(&a).unwrap();
        assert!(sc.size_bytes().unwrap() < su.size_bytes().unwrap());
        std::fs::remove_file(&path_c).ok();
        std::fs::remove_file(&path_u).ok();
    }

    #[test]
    fn missing_series_not_found() {
        let path = tmpfile("missing");
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        store.write_series(&series("a", "b", 5)).unwrap();
        assert!(matches!(
            store.read_series("ghost", "training"),
            Err(StoreError::NotFound(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let path = tmpfile("corrupt");
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        store
            .write_series(&series("loss", "training", 3000))
            .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xA5; // flip a bit inside the body
        std::fs::write(&path, bytes).unwrap();
        assert!(store.read_series("loss", "training").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmpfile("badmagic");
        std::fs::write(&path, b"NOPE....garbage").unwrap();
        assert!(NcStore::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_same_key_replaces() {
        let path = tmpfile("overwrite");
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        store
            .write_series(&series("loss", "training", 100))
            .unwrap();
        let short = series("loss", "training", 7);
        store.write_series(&short).unwrap();
        assert_eq!(store.read_series("loss", "training").unwrap(), short);
        assert_eq!(store.list_series().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
