//! Error type for the metric store.

use std::fmt;

/// Errors from encoding, decoding or persisting metric data.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A chunk or file failed checksum verification.
    Corrupt(String),
    /// Input ended before a complete value could be decoded.
    Truncated(String),
    /// An unknown codec id or format version was encountered.
    UnknownFormat(String),
    /// The requested series does not exist in the store.
    NotFound(String),
    /// Metadata was syntactically valid but semantically inconsistent.
    BadMetadata(String),
    /// JSON (de)serialization failure in metadata handling.
    Json(serde_json::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StoreError::Truncated(m) => write!(f, "truncated input: {m}"),
            StoreError::UnknownFormat(m) => write!(f, "unknown format: {m}"),
            StoreError::NotFound(m) => write!(f, "series not found: {m}"),
            StoreError::BadMetadata(m) => write!(f, "bad metadata: {m}"),
            StoreError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::Corrupt("bad crc".into())
            .to_string()
            .contains("bad crc"));
        assert!(StoreError::NotFound("loss@training".into())
            .to_string()
            .contains("loss@training"));
        assert!(StoreError::Truncated("chunk 3".into())
            .to_string()
            .contains("chunk 3"));
    }

    #[test]
    fn sources_preserved() {
        let e: StoreError = std::io::Error::other("disk on fire").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
