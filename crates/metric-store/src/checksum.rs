//! CRC-32 (IEEE 802.3 polynomial), implemented from scratch with a
//! compile-time lookup table. Used to verify chunk and file integrity.

/// The standard reflected polynomial used by zip/gzip/ethernet.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finish()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the final checksum.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello, provenance world";
        let mut h = Crc32::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 31 % 251) as u8;
        }
        let original = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), original);
    }
}
