//! Property-based tests for the codec stack and the storage backends:
//! every encoder must be the exact inverse of its decoder for arbitrary
//! inputs, including non-finite floats and adversarial byte patterns.

use metric_store::codec::{self, CodecId};
use metric_store::series::{MetricPoint, MetricSeries};
use metric_store::store::{frame_chunk, unframe_chunk};
use proptest::prelude::*;

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rle_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let enc = codec::rle::encode(&data);
        prop_assert_eq!(codec::rle::decode(&enc).unwrap(), data);
    }

    #[test]
    fn rle_roundtrips_runny_data(runs in prop::collection::vec((any::<u8>(), 1usize..400), 0..50)) {
        let mut data = Vec::new();
        for (b, n) in runs {
            data.extend(std::iter::repeat_n(b, n));
        }
        let enc = codec::rle::encode(&data);
        prop_assert_eq!(codec::rle::decode(&enc).unwrap(), data);
    }

    #[test]
    fn lz77_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let enc = codec::lz77::compress(&data);
        prop_assert_eq!(codec::lz77::decompress(&enc).unwrap(), data);
    }

    #[test]
    fn lz77_roundtrips_repetitive(seed in prop::collection::vec(any::<u8>(), 1..64), reps in 1usize..100) {
        let mut data = Vec::new();
        for _ in 0..reps {
            data.extend_from_slice(&seed);
        }
        let enc = codec::lz77::compress(&data);
        prop_assert_eq!(codec::lz77::decompress(&enc).unwrap(), data);
    }

    #[test]
    fn huffman_roundtrips(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let enc = codec::huffman::encode(&data);
        prop_assert_eq!(codec::huffman::decode(&enc).unwrap(), data);
    }

    #[test]
    fn deflate_like_roundtrips(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let enc = codec::deflate_like(&data);
        prop_assert_eq!(codec::inflate_like(&enc).unwrap(), data);
    }

    #[test]
    fn shuffle_roundtrips(data in prop::collection::vec(any::<u8>(), 0..2048), width in 1usize..16) {
        let s = codec::shuffle::shuffle(&data, width);
        prop_assert_eq!(codec::shuffle::unshuffle(&s, width), data);
    }

    #[test]
    fn xor_float_roundtrips(values in prop::collection::vec(any::<f64>(), 0..2048)) {
        let enc = codec::xor::encode(&values);
        let dec = codec::xor::decode(&enc).unwrap();
        prop_assert!(bits_eq(&values, &dec));
    }

    #[test]
    fn int_columns_roundtrip(
        steps in prop::collection::vec(any::<u64>(), 0..2048),
        times in prop::collection::vec(any::<i64>(), 0..2048),
    ) {
        prop_assert_eq!(
            codec::decode_u64_column(&codec::encode_u64_column(&steps)).unwrap(), steps);
        prop_assert_eq!(
            codec::decode_i64_column(&codec::encode_i64_column(&times)).unwrap(), times);
    }

    #[test]
    fn chunk_frames_roundtrip(
        data in prop::collection::vec(any::<u8>(), 0..4096),
        pick in 0usize..6,
    ) {
        let pipelines: [&[CodecId]; 6] = [
            &[],
            &[CodecId::Rle],
            &[CodecId::Huffman],
            &[CodecId::Lz77],
            &[CodecId::Lz77, CodecId::Huffman],
            &[CodecId::Shuffle8, CodecId::Lz77, CodecId::Huffman],
        ];
        let framed = frame_chunk(&data, pipelines[pick]);
        let (back, used) = unframe_chunk(&framed).unwrap();
        prop_assert_eq!(back, data);
        prop_assert_eq!(used, framed.len());
    }

    #[test]
    fn frame_decoder_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = unframe_chunk(&data); // must not panic
        let _ = codec::inflate_like(&data);
        let _ = codec::huffman::decode(&data);
        let _ = codec::lz77::decompress(&data);
        let _ = codec::rle::decode(&data);
        let _ = codec::xor::decode(&data);
    }

    #[test]
    fn zarr_store_roundtrips_arbitrary_series(
        raw in prop::collection::vec((any::<u64>(), any::<u32>(), any::<i64>(), any::<f64>()), 0..500),
        chunk in 1usize..300,
    ) {
        let mut series = MetricSeries::new("m", "c");
        for (step, epoch, time_us, value) in raw {
            series.push(MetricPoint { step, epoch, time_us, value });
        }
        let dir = std::env::temp_dir().join(format!(
            "yzarr_prop_{}_{:x}", std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let store = metric_store::zarr::ZarrStore::create(
            &dir,
            metric_store::zarr::ZarrOptions { chunk_points: chunk, ..Default::default() },
        ).unwrap();
        use metric_store::store::MetricStore;
        store.write_series(&series).unwrap();
        let back = store.read_series("m", "c").unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(series.len(), back.len());
        for (a, b) in series.points.iter().zip(&back.points) {
            prop_assert_eq!(a.step, b.step);
            prop_assert_eq!(a.epoch, b.epoch);
            prop_assert_eq!(a.time_us, b.time_us);
            prop_assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }
}
