//! # rocrate
//!
//! A from-scratch implementation of [RO-Crate 1.1] research-object
//! packaging: a directory bundling data together with a JSON-LD
//! metadata descriptor (`ro-crate-metadata.json`).
//!
//! The yProv4ML paper (§4, Table 2) uses RO-Crate as the *packaging*
//! companion to W3C PROV's *representation*: a run's artifact directory
//! is wrapped in a crate so a single experiment can be shared as one
//! self-describing object.
//!
//! ```
//! use rocrate::{RoCrate, EntitySpec};
//!
//! let dir = std::env::temp_dir().join("rocrate_doctest");
//! std::fs::remove_dir_all(&dir).ok();
//! std::fs::create_dir_all(&dir).unwrap();
//! std::fs::write(dir.join("model.ckpt"), b"weights").unwrap();
//!
//! let mut crate_ = RoCrate::new("MODIS-FM run 1", "A training run");
//! crate_.add_file(EntitySpec::file("model.ckpt").with_description("final checkpoint"));
//! crate_.write(&dir).unwrap();
//!
//! let back = RoCrate::read(&dir).unwrap();
//! assert_eq!(back.name(), "MODIS-FM run 1");
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [RO-Crate 1.1]: https://www.researchobject.org/ro-crate/1.1/

pub mod crate_;
pub mod validate;

pub use crate_::{EntitySpec, RoCrate, RoCrateError};
pub use validate::{validate_crate, CrateIssue};
