//! The crate model and its JSON-LD (de)serialization.

use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// The conformance IRI of RO-Crate 1.1.
pub const CONFORMS_TO: &str = "https://w3id.org/ro/crate/1.1";
/// The JSON-LD context of RO-Crate 1.1.
pub const CONTEXT: &str = "https://w3id.org/ro/crate/1.1/context";
/// File name of the metadata descriptor.
pub const METADATA_FILE: &str = "ro-crate-metadata.json";

/// Errors from reading or writing crates.
#[derive(Debug)]
pub enum RoCrateError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The metadata file is not valid JSON.
    Json(serde_json::Error),
    /// The JSON was readable but not a well-formed RO-Crate.
    Malformed(String),
    /// A data entity references a file missing from the directory.
    MissingFile(String),
}

impl fmt::Display for RoCrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoCrateError::Io(e) => write!(f, "i/o error: {e}"),
            RoCrateError::Json(e) => write!(f, "invalid JSON: {e}"),
            RoCrateError::Malformed(m) => write!(f, "malformed crate: {m}"),
            RoCrateError::MissingFile(p) => write!(f, "data entity missing from crate: {p}"),
        }
    }
}

impl std::error::Error for RoCrateError {}

impl From<std::io::Error> for RoCrateError {
    fn from(e: std::io::Error) -> Self {
        RoCrateError::Io(e)
    }
}
impl From<serde_json::Error> for RoCrateError {
    fn from(e: serde_json::Error) -> Self {
        RoCrateError::Json(e)
    }
}

/// One contextual or data entity in the crate graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EntitySpec {
    /// The entity `@id` (a crate-relative path for files).
    pub id: String,
    /// The entity `@type` (e.g. `File`, `Dataset`, `Person`).
    pub types: Vec<String>,
    /// Flat string properties (`name`, `description`, ...).
    pub properties: BTreeMap<String, String>,
    /// Reference properties: property → target entity ids.
    pub references: BTreeMap<String, Vec<String>>,
}

impl EntitySpec {
    /// A `File` data entity for a crate-relative path.
    pub fn file(path: impl Into<String>) -> Self {
        EntitySpec {
            id: path.into(),
            types: vec!["File".into()],
            properties: BTreeMap::new(),
            references: BTreeMap::new(),
        }
    }

    /// A contextual entity with an explicit id and type.
    pub fn contextual(id: impl Into<String>, ty: impl Into<String>) -> Self {
        EntitySpec {
            id: id.into(),
            types: vec![ty.into()],
            properties: BTreeMap::new(),
            references: BTreeMap::new(),
        }
    }

    /// Sets the `name` property.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.properties.insert("name".into(), name.into());
        self
    }

    /// Sets the `description` property.
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.properties.insert("description".into(), d.into());
        self
    }

    /// Sets an arbitrary string property.
    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.insert(key.into(), value.into());
        self
    }

    /// Adds a reference to another entity.
    pub fn with_reference(mut self, key: impl Into<String>, target: impl Into<String>) -> Self {
        self.references
            .entry(key.into())
            .or_default()
            .push(target.into());
        self
    }

    fn is_file(&self) -> bool {
        self.types.iter().any(|t| t == "File")
    }
}

/// An RO-Crate under construction or loaded from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RoCrate {
    name: String,
    description: String,
    entities: Vec<EntitySpec>,
}

impl RoCrate {
    /// Starts an empty crate with root-dataset name and description.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        RoCrate {
            name: name.into(),
            description: description.into(),
            entities: Vec::new(),
        }
    }

    /// The root dataset's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root dataset's description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// All non-root entities.
    pub fn entities(&self) -> &[EntitySpec] {
        &self.entities
    }

    /// Ids of the `File` data entities (the root's `hasPart`).
    pub fn file_ids(&self) -> Vec<&str> {
        self.entities
            .iter()
            .filter(|e| e.is_file())
            .map(|e| e.id.as_str())
            .collect()
    }

    /// Looks up an entity by id.
    pub fn get(&self, id: &str) -> Option<&EntitySpec> {
        self.entities.iter().find(|e| e.id == id)
    }

    /// Adds a data or contextual entity.
    pub fn add_file(&mut self, spec: EntitySpec) -> &mut Self {
        self.entities.push(spec);
        self
    }

    /// Adds a contextual entity (alias of [`Self::add_file`] kept for
    /// call-site readability).
    pub fn add_entity(&mut self, spec: EntitySpec) -> &mut Self {
        self.entities.push(spec);
        self
    }

    /// Serializes the metadata descriptor as JSON-LD.
    pub fn to_metadata_json(&self) -> Value {
        let mut graph = Vec::new();

        graph.push(json!({
            "@id": METADATA_FILE,
            "@type": "CreativeWork",
            "conformsTo": { "@id": CONFORMS_TO },
            "about": { "@id": "./" },
        }));

        let has_part: Vec<Value> = self
            .entities
            .iter()
            .filter(|e| e.is_file())
            .map(|e| json!({ "@id": e.id }))
            .collect();
        graph.push(json!({
            "@id": "./",
            "@type": "Dataset",
            "name": self.name,
            "description": self.description,
            "hasPart": has_part,
        }));

        for e in &self.entities {
            let mut obj = Map::new();
            obj.insert("@id".into(), json!(e.id));
            obj.insert(
                "@type".into(),
                if e.types.len() == 1 {
                    json!(e.types[0])
                } else {
                    json!(e.types)
                },
            );
            for (k, v) in &e.properties {
                obj.insert(k.clone(), json!(v));
            }
            for (k, targets) in &e.references {
                let refs: Vec<Value> = targets.iter().map(|t| json!({ "@id": t })).collect();
                obj.insert(
                    k.clone(),
                    if refs.len() == 1 {
                        refs.into_iter().next().expect("len checked")
                    } else {
                        Value::Array(refs)
                    },
                );
            }
            graph.push(Value::Object(obj));
        }

        json!({ "@context": CONTEXT, "@graph": graph })
    }

    /// Writes `ro-crate-metadata.json` into `dir`, verifying that every
    /// `File` entity actually exists there.
    pub fn write(&self, dir: impl AsRef<Path>) -> Result<(), RoCrateError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for e in self.entities.iter().filter(|e| e.is_file()) {
            if !dir.join(&e.id).is_file() {
                return Err(RoCrateError::MissingFile(e.id.clone()));
            }
        }
        let text = serde_json::to_string_pretty(&self.to_metadata_json())?;
        std::fs::write(dir.join(METADATA_FILE), text)?;
        Ok(())
    }

    /// Reads a crate from a directory containing the descriptor.
    pub fn read(dir: impl AsRef<Path>) -> Result<RoCrate, RoCrateError> {
        let text = std::fs::read_to_string(dir.as_ref().join(METADATA_FILE))?;
        Self::from_metadata_json(&serde_json::from_str(&text)?)
    }

    /// Parses the JSON-LD descriptor.
    pub fn from_metadata_json(value: &Value) -> Result<RoCrate, RoCrateError> {
        let graph = value
            .get("@graph")
            .and_then(Value::as_array)
            .ok_or_else(|| RoCrateError::Malformed("missing @graph".into()))?;

        let find = |id: &str| -> Option<&Map<String, Value>> {
            graph
                .iter()
                .filter_map(Value::as_object)
                .find(|o| o.get("@id").and_then(Value::as_str) == Some(id))
        };

        let descriptor = find(METADATA_FILE)
            .ok_or_else(|| RoCrateError::Malformed("missing metadata descriptor".into()))?;
        let root_id = descriptor
            .get("about")
            .and_then(|a| a.get("@id"))
            .and_then(Value::as_str)
            .ok_or_else(|| RoCrateError::Malformed("descriptor lacks 'about'".into()))?;
        let root = find(root_id)
            .ok_or_else(|| RoCrateError::Malformed(format!("missing root dataset {root_id}")))?;

        let name = root
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let description = root
            .get("description")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();

        let mut entities = Vec::new();
        for obj in graph.iter().filter_map(Value::as_object) {
            let id = obj
                .get("@id")
                .and_then(Value::as_str)
                .ok_or_else(|| RoCrateError::Malformed("entity without @id".into()))?;
            if id == METADATA_FILE || id == root_id {
                continue;
            }
            let types = match obj.get("@type") {
                Some(Value::String(s)) => vec![s.clone()],
                Some(Value::Array(a)) => a
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect(),
                _ => Vec::new(),
            };
            let mut spec = EntitySpec {
                id: id.to_string(),
                types,
                properties: BTreeMap::new(),
                references: BTreeMap::new(),
            };
            for (k, v) in obj {
                if k.starts_with('@') {
                    continue;
                }
                match v {
                    Value::String(s) => {
                        spec.properties.insert(k.clone(), s.clone());
                    }
                    Value::Object(o) => {
                        if let Some(target) = o.get("@id").and_then(Value::as_str) {
                            spec.references
                                .entry(k.clone())
                                .or_default()
                                .push(target.to_string());
                        }
                    }
                    Value::Array(items) => {
                        for item in items {
                            if let Some(target) = item.get("@id").and_then(Value::as_str) {
                                spec.references
                                    .entry(k.clone())
                                    .or_default()
                                    .push(target.to_string());
                            }
                        }
                    }
                    _ => {}
                }
            }
            entities.push(spec);
        }

        Ok(RoCrate {
            name,
            description,
            entities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rocrate_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> RoCrate {
        let mut c = RoCrate::new("run-0001", "MODIS-FM scaling run");
        c.add_file(
            EntitySpec::file("model.ckpt")
                .with_name("checkpoint")
                .with_property("encodingFormat", "application/octet-stream")
                .with_reference("author", "#researcher"),
        );
        c.add_file(EntitySpec::file("prov.json").with_description("W3C PROV provenance"));
        c.add_entity(EntitySpec::contextual("#researcher", "Person").with_name("A. Researcher"));
        c
    }

    #[test]
    fn metadata_structure() {
        let v = sample().to_metadata_json();
        assert_eq!(v["@context"], CONTEXT);
        let graph = v["@graph"].as_array().unwrap();
        assert_eq!(graph.len(), 5); // descriptor + root + 3 entities
        assert_eq!(graph[0]["conformsTo"]["@id"], CONFORMS_TO);
        let root = &graph[1];
        assert_eq!(root["@id"], "./");
        assert_eq!(root["hasPart"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = tmpdir("roundtrip");
        std::fs::write(dir.join("model.ckpt"), b"w").unwrap();
        std::fs::write(dir.join("prov.json"), b"{}").unwrap();
        let c = sample();
        c.write(&dir).unwrap();
        let back = RoCrate::read(&dir).unwrap();
        assert_eq!(back, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_refuses_missing_files() {
        let dir = tmpdir("missing");
        // model.ckpt not created.
        let err = sample().write(&dir).unwrap_err();
        assert!(matches!(err, RoCrateError::MissingFile(p) if p == "model.ckpt"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_descriptors_rejected() {
        for bad in [
            json!({}),
            json!({"@graph": []}),
            json!({"@graph": [{"@id": METADATA_FILE, "@type": "CreativeWork"}]}),
        ] {
            assert!(RoCrate::from_metadata_json(&bad).is_err());
        }
    }

    #[test]
    fn file_ids_and_lookup() {
        let c = sample();
        assert_eq!(c.file_ids(), vec!["model.ckpt", "prov.json"]);
        assert!(c.get("#researcher").is_some());
        assert!(c.get("nope").is_none());
        assert_eq!(
            c.get("model.ckpt").unwrap().references["author"],
            vec!["#researcher"]
        );
    }

    #[test]
    fn multi_type_entities_roundtrip() {
        let dir = tmpdir("multitype");
        std::fs::write(dir.join("data.nc"), b"x").unwrap();
        let mut c = RoCrate::new("n", "d");
        let mut spec = EntitySpec::file("data.nc");
        spec.types.push("Dataset".into());
        c.add_file(spec);
        c.write(&dir).unwrap();
        let back = RoCrate::read(&dir).unwrap();
        assert_eq!(back.get("data.nc").unwrap().types, vec!["File", "Dataset"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
