//! Structural validation of a crate directory.

use crate::crate_::{EntitySpec, RoCrate, RoCrateError, METADATA_FILE};
use std::path::Path;

/// A validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrateIssue {
    /// A `File` entity has no corresponding file on disk.
    MissingFile(String),
    /// A file exists in the directory but no entity describes it.
    UndescribedFile(String),
    /// A reference points at an id that is not in the graph.
    DanglingReference {
        /// The referencing entity.
        from: String,
        /// The property holding the reference.
        property: String,
        /// The missing target id.
        target: String,
    },
    /// Two entities share the same id.
    DuplicateId(String),
}

/// Validates a crate directory against its descriptor.
///
/// External references (`http://...`, `https://...`, `#fragment` ids
/// that exist, `./`) are fine; everything else must resolve inside the
/// crate.
pub fn validate_crate(dir: impl AsRef<Path>) -> Result<Vec<CrateIssue>, RoCrateError> {
    let dir = dir.as_ref();
    let crate_ = RoCrate::read(dir)?;
    let mut issues = Vec::new();

    // Duplicate ids.
    let mut seen = std::collections::BTreeSet::new();
    for e in crate_.entities() {
        if !seen.insert(&e.id) {
            issues.push(CrateIssue::DuplicateId(e.id.clone()));
        }
    }

    // File entities exist on disk.
    for id in crate_.file_ids() {
        if !dir.join(id).is_file() {
            issues.push(CrateIssue::MissingFile(id.to_string()));
        }
    }

    // Files on disk are described (descriptor itself exempt).
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name != METADATA_FILE && crate_.get(&name).is_none() {
                issues.push(CrateIssue::UndescribedFile(name));
            }
        }
    }

    // References resolve.
    let known: std::collections::BTreeSet<&str> = crate_
        .entities()
        .iter()
        .map(|e| e.id.as_str())
        .chain(["./", METADATA_FILE])
        .collect();
    for e in crate_.entities() {
        for (property, targets) in &e.references {
            for target in targets {
                let external = target.starts_with("http://") || target.starts_with("https://");
                if !external && !known.contains(target.as_str()) {
                    issues.push(CrateIssue::DanglingReference {
                        from: e.id.clone(),
                        property: property.clone(),
                        target: target.clone(),
                    });
                }
            }
        }
    }

    issues.sort_by_key(|i| format!("{i:?}"));
    Ok(issues)
}

/// Convenience: build a crate wrapping every file in a directory, with
/// generic `File` entities — the "wrapper around the artifact
/// directory" the paper describes.
pub fn wrap_directory(
    dir: impl AsRef<Path>,
    name: &str,
    description: &str,
) -> Result<RoCrate, RoCrateError> {
    let dir = dir.as_ref();
    let mut crate_ = RoCrate::new(name, description);
    let mut files = Vec::new();
    collect_files(dir, dir, &mut files)?;
    files.sort();
    for rel in files {
        if rel == METADATA_FILE {
            continue;
        }
        crate_.add_file(EntitySpec::file(rel));
    }
    crate_.write(dir)?;
    Ok(crate_)
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), RoCrateError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_files(root, &path, out)?;
        } else {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crate_::EntitySpec;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rocval_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_crate_validates() {
        let dir = tmpdir("clean");
        std::fs::write(dir.join("a.txt"), "x").unwrap();
        let mut c = RoCrate::new("n", "d");
        c.add_file(EntitySpec::file("a.txt"));
        c.write(&dir).unwrap();
        assert!(validate_crate(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_missing_and_undescribed_files() {
        let dir = tmpdir("drift");
        std::fs::write(dir.join("described.txt"), "x").unwrap();
        let mut c = RoCrate::new("n", "d");
        c.add_file(EntitySpec::file("described.txt"));
        c.write(&dir).unwrap();
        // Drift after writing: one described file vanishes, a stray
        // appears.
        std::fs::remove_file(dir.join("described.txt")).unwrap();
        std::fs::write(dir.join("stray.bin"), "y").unwrap();
        let issues = validate_crate(&dir).unwrap();
        assert!(issues.contains(&CrateIssue::MissingFile("described.txt".into())));
        assert!(issues.contains(&CrateIssue::UndescribedFile("stray.bin".into())));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detects_dangling_references() {
        let dir = tmpdir("dangling");
        std::fs::write(dir.join("a.txt"), "x").unwrap();
        let mut c = RoCrate::new("n", "d");
        c.add_file(EntitySpec::file("a.txt").with_reference("author", "#ghost"));
        c.write(&dir).unwrap();
        let issues = validate_crate(&dir).unwrap();
        assert_eq!(issues.len(), 1);
        assert!(matches!(
            &issues[0],
            CrateIssue::DanglingReference { target, .. } if target == "#ghost"
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_references_allowed() {
        let dir = tmpdir("external");
        std::fs::write(dir.join("a.txt"), "x").unwrap();
        let mut c = RoCrate::new("n", "d");
        c.add_file(
            EntitySpec::file("a.txt")
                .with_reference("license", "https://creativecommons.org/licenses/by/4.0/"),
        );
        c.write(&dir).unwrap();
        assert!(validate_crate(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrap_directory_covers_everything() {
        let dir = tmpdir("wrap");
        std::fs::write(dir.join("prov.json"), "{}").unwrap();
        std::fs::create_dir_all(dir.join("artifacts")).unwrap();
        std::fs::write(dir.join("artifacts/model.ckpt"), "w").unwrap();
        let c = wrap_directory(&dir, "run", "wrapped run").unwrap();
        assert_eq!(c.file_ids().len(), 2);
        assert!(c.get("artifacts/model.ckpt").is_some());
        // The produced crate validates (the nested file is described).
        let issues = validate_crate(&dir).unwrap();
        assert!(issues.is_empty(), "{issues:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
