//! Property tests: RO-Crate metadata round-trips for arbitrary entity
//! graphs, and the parser never panics on arbitrary JSON.

use proptest::prelude::*;
use rocrate::{EntitySpec, RoCrate};

fn arb_id() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_.-]{0,12}"
}

fn arb_entity() -> impl Strategy<Value = EntitySpec> {
    (
        arb_id(),
        prop_oneof![
            Just("File"),
            Just("Dataset"),
            Just("Person"),
            Just("SoftwareApplication")
        ],
        prop::collection::btree_map("[a-z]{1,8}", "[ -~&&[^\"\\\\]]{0,20}", 0..4),
        prop::collection::btree_map("[a-z]{1,8}", prop::collection::vec(arb_id(), 1..3), 0..3),
    )
        .prop_map(|(id, ty, props, refs)| {
            let mut e = EntitySpec::contextual(format!("#{id}"), ty);
            for (k, v) in props {
                e = e.with_property(format!("p_{k}"), v);
            }
            for (k, targets) in refs {
                for t in targets {
                    e = e.with_reference(format!("r_{k}"), format!("#{t}"));
                }
            }
            e
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metadata_roundtrips(
        name in "[ -~&&[^\"\\\\]]{0,30}",
        desc in "[ -~&&[^\"\\\\]]{0,60}",
        entities in prop::collection::vec(arb_entity(), 0..10),
    ) {
        let mut crate_ = RoCrate::new(name, desc);
        // Deduplicate ids: the model allows duplicates but the
        // round-trip comparison is only meaningful without them.
        let mut seen = std::collections::BTreeSet::new();
        for e in entities {
            if seen.insert(e.id.clone()) {
                crate_.add_entity(e);
            }
        }
        let json = crate_.to_metadata_json();
        let back = RoCrate::from_metadata_json(&json).unwrap();
        prop_assert_eq!(back, crate_);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_json(
        text in "[ -~]{0,200}",
    ) {
        if let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) {
            let _ = RoCrate::from_metadata_json(&value); // must not panic
        }
    }

    #[test]
    fn parser_never_panics_on_structured_garbage(
        keys in prop::collection::vec("[a-z@]{1,8}", 0..8),
    ) {
        let mut graph = Vec::new();
        for k in &keys {
            graph.push(serde_json::json!({ k.as_str(): 1 }));
        }
        let value = serde_json::json!({"@context": "x", "@graph": graph});
        let _ = RoCrate::from_metadata_json(&value); // must not panic
    }
}
