//! Property tests over the provenance pipeline: arbitrary record
//! streams must fold identically through the sync and buffered
//! collectors, survive the journal, and always produce valid PROV.

use proptest::prelude::*;
use yprov4ml::collector::{Collector, RunState};
use yprov4ml::journal::{read_journal, JournalHeader, JournalWriter};
use yprov4ml::model::{Context, Direction, LogRecord, ParamValue};
use yprov4ml::prov_emit::{build_document, RunIdentity};
use yprov4ml::spill::SpillOutcome;

fn arb_context() -> impl Strategy<Value = Context> {
    prop_oneof![
        Just(Context::Training),
        Just(Context::Validation),
        Just(Context::Testing),
        "[a-z]{1,8}".prop_map(Context::Custom),
    ]
}

fn arb_param_value() -> impl Strategy<Value = ParamValue> {
    prop_oneof![
        any::<i64>().prop_map(ParamValue::Int),
        // Finite doubles: NaN params would break state comparison
        // without testing anything new (NaN behaviour is covered in
        // metric values below).
        (-1e15f64..1e15).prop_map(ParamValue::Float),
        "[ -~]{0,16}".prop_map(ParamValue::Text),
        any::<bool>().prop_map(ParamValue::Bool),
    ]
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        ("[a-z]{1,10}", arb_param_value(), any::<bool>()).prop_map(|(name, value, input)| {
            LogRecord::Param {
                name,
                value,
                direction: if input {
                    Direction::Input
                } else {
                    Direction::Output
                },
            }
        }),
        (
            "[a-z]{1,10}",
            arb_context(),
            any::<u64>(),
            any::<u32>(),
            any::<i64>(),
            any::<f64>()
        )
            .prop_map(
                |(name, context, step, epoch, time_us, value)| LogRecord::Metric {
                    name,
                    context,
                    step,
                    epoch,
                    time_us,
                    value,
                }
            ),
        (arb_context(), any::<i64>())
            .prop_map(|(context, time_us)| LogRecord::ContextStart { context, time_us }),
        (arb_context(), any::<i64>())
            .prop_map(|(context, time_us)| LogRecord::ContextEnd { context, time_us }),
    ]
}

fn states_equal_modulo_nan(a: &RunState, b: &RunState) -> bool {
    // MetricSeries PartialEq fails on NaN values; compare bitwise.
    if a.params != b.params
        || a.artifacts != b.artifacts
        || a.context_spans != b.context_spans
        || a.max_epoch != b.max_epoch
        || a.metric_samples != b.metric_samples
        || a.metrics.len() != b.metrics.len()
    {
        return false;
    }
    a.metrics
        .iter()
        .zip(b.metrics.iter())
        .all(|((ka, sa), (kb, sb))| {
            ka == kb
                && sa.points.len() == sb.points.len()
                && sa.points.iter().zip(&sb.points).all(|(x, y)| {
                    x.step == y.step
                        && x.epoch == y.epoch
                        && x.time_us == y.time_us
                        && x.value.to_bits() == y.value.to_bits()
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sync_and_buffered_collectors_agree(
        records in prop::collection::vec(arb_record(), 0..200),
    ) {
        let sync = Collector::synchronous();
        let buffered = Collector::buffered().unwrap();
        for r in &records {
            sync.log(r.clone()).unwrap();
            buffered.log(r.clone()).unwrap();
        }
        let a = sync.close().unwrap();
        let b = buffered.close().unwrap();
        prop_assert!(states_equal_modulo_nan(&a, &b));
    }

    #[test]
    fn journal_replay_reproduces_state(
        records in prop::collection::vec(arb_record(), 0..150),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "yprop_journal_{}_{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let header = JournalHeader {
            version: 1,
            experiment: "prop".into(),
            run: "r".into(),
            user: "u".into(),
            started_us: 0,
        };
        let writer = JournalWriter::create(&dir, &header).unwrap();
        let mut direct = RunState::default();
        for r in &records {
            writer.append(r).unwrap();
            direct.apply(r.clone());
        }
        drop(writer);
        let replay = read_journal(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(replay.records, records.len());
        prop_assert_eq!(replay.skipped, 0);
        prop_assert!(states_equal_modulo_nan(&replay.state, &direct));
    }

    #[test]
    fn emitted_documents_always_validate(
        records in prop::collection::vec(arb_record(), 0..120),
    ) {
        let mut state = RunState::default();
        for r in records {
            state.apply(r);
        }
        let identity = RunIdentity {
            experiment: "prop".into(),
            run: "r".into(),
            user: "u".into(),
            started_us: 0,
            ended_us: 1,
        };
        let spill = SpillOutcome { store_path: None, links: Vec::new(), external_bytes: 0 };
        let doc = build_document(&identity, &state, &spill, false);
        let issues = prov_model::validate(&doc);
        prop_assert!(
            prov_model::validate::is_valid(&doc),
            "invalid doc from arbitrary state: {issues:?}"
        );
        // And it survives the JSON round trip.
        let json = doc.to_json_string().unwrap();
        prop_assert!(prov_model::ProvDocument::from_json_str(&json).is_ok());
    }
}
