//! Property tests for journal crash robustness: whatever a crash does
//! to the journal's *record region* — truncation at an arbitrary byte,
//! a single flipped bit — recovery must neither panic nor error, and
//! must replay exactly a valid prefix of the accepted records.

use proptest::prelude::*;
use yprov4ml::journal::{read_journal, JournalHeader, JournalWriter, JOURNAL_FILE};
use yprov4ml::model::{Context, LogRecord};

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "yprop_chaos_{tag}_{}_{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a journal of `n` metric records, returning the run dir, the
/// raw journal bytes, and the byte offset of each record line's end
/// (i.e. one past its newline).
fn journal_bytes(tag: &str, n: usize) -> (std::path::PathBuf, Vec<u8>, Vec<usize>) {
    let dir = fresh_dir(tag);
    let writer =
        JournalWriter::create(&dir, &JournalHeader::new("chaos", "victim", "prop", 7)).unwrap();
    for i in 0..n {
        writer
            .append(&LogRecord::Metric {
                name: "loss".into(),
                context: Context::Training,
                step: i as u64,
                epoch: 0,
                time_us: i as i64,
                value: i as f64 * 0.25,
            })
            .unwrap();
    }
    writer.close().unwrap();
    let bytes = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    let mut line_ends = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            line_ends.push(i + 1);
        }
    }
    (dir, bytes, line_ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating anywhere in the record region (at or after the end of
    /// the header line) never panics or errors, and recovers exactly
    /// the records whose full line fits in the surviving prefix, with
    /// at most one torn line counted as skipped.
    #[test]
    fn truncation_recovers_a_valid_prefix(
        n in 1usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let (dir, bytes, line_ends) = journal_bytes("trunc", n);
        let header_end = line_ends[0];
        let cut = header_end
            + ((bytes.len() - header_end) as f64 * cut_frac) as usize;
        let cut = cut.min(bytes.len());
        std::fs::write(dir.join(JOURNAL_FILE), &bytes[..cut]).unwrap();

        let replay = read_journal(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        // A line survives if it fits including its newline (e <= cut),
        // or if only its trailing newline was cut (e == cut + 1): the
        // final chunk then still carries the full framed record.
        let complete = line_ends[1..].iter().filter(|&&e| e <= cut + 1).count();
        prop_assert_eq!(replay.records, complete);
        prop_assert!(replay.skipped <= 1, "skipped {}", replay.skipped);
        prop_assert_eq!(replay.state.metric_samples, complete);
    }

    /// Truncating *inside the header* is the one structural failure:
    /// recovery must report an error (there is nothing to recover into)
    /// but still must not panic.
    #[test]
    fn header_truncation_errors_cleanly(
        n in 1usize..10,
        cut_frac in 0.0f64..1.0,
    ) {
        let (dir, bytes, line_ends) = journal_bytes("hdr", n);
        let cut = (line_ends[0] as f64 * cut_frac) as usize;
        // Stay strictly inside the header JSON: cutting at its last
        // byte or later leaves parseable JSON (the newline is optional
        // for the final line).
        let cut = cut.min(line_ends[0] - 2);
        std::fs::write(dir.join(JOURNAL_FILE), &bytes[..cut]).unwrap();
        let result = read_journal(&dir);
        std::fs::remove_dir_all(&dir).ok();
        prop_assert!(result.is_err());
    }

    /// Flipping any single bit in the record region never panics or
    /// errors; the CRC catches the corruption. One line is lost when
    /// the payload is hit, two when a newline is destroyed (the
    /// neighbours merge) — never more, and never a bogus extra record.
    #[test]
    fn single_bit_flip_is_detected(
        n in 2usize..40,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (dir, mut bytes, line_ends) = journal_bytes("flip", n);
        let header_end = line_ends[0];
        let pos = header_end
            + ((bytes.len() - header_end - 1) as f64 * pos_frac) as usize;
        let made_newline_or_was = bytes[pos] == b'\n' || bytes[pos] ^ (1 << bit) == b'\n';
        bytes[pos] ^= 1 << bit;
        std::fs::write(dir.join(JOURNAL_FILE), &bytes).unwrap();

        let replay = read_journal(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        prop_assert!(replay.records <= n);
        let max_lost = if made_newline_or_was { 2 } else { 1 };
        prop_assert!(
            n - replay.records <= max_lost,
            "lost {} records (max {max_lost})",
            n - replay.records
        );
        // Splitting a line in two must not fabricate records: every
        // replayed record passed its CRC.
        prop_assert!(replay.records + replay.skipped <= n + 1);
    }
}
