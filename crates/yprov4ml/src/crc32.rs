//! CRC-32 (IEEE 802.3), implemented from scratch.
//!
//! Frames every journal record so [`crate::journal::read_journal`] can
//! tell a torn or bit-flipped line from a valid one: SHA-256 (see
//! [`crate::hash`]) is overkill for a per-record integrity check on the
//! logging hot path, while a table-driven CRC costs nanoseconds and
//! catches every burst error shorter than 32 bits.
//!
//! The variant is the ubiquitous reflected CRC-32 with polynomial
//! `0x04C11DB7` (reflected `0xEDB88320`), init and final XOR
//! `0xFFFFFFFF` — the same function as zlib's `crc32()`.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes, producing the checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32/IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"incremental feeding must match the one-shot form";
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"journal record payload";
        let reference = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
