//! Content-addressed source-tree snapshots.
//!
//! Stands in for the paper's git-diff tracking (§3.1): a [`Snapshot`]
//! hashes every file under a root (SHA-256) plus a combined tree hash,
//! and two snapshots diff into added/removed/modified sets. Unlike git,
//! there is no object store — provenance only needs to *identify*
//! versions, the artifacts themselves are logged separately.

use crate::hash::{sha256_hex, Sha256};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A point-in-time content snapshot of a file tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    root: PathBuf,
    /// Relative path → (content hash, size).
    files: BTreeMap<PathBuf, (String, u64)>,
}

/// Differences between two snapshots.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TreeDiff {
    /// Files present only in the newer snapshot.
    pub added: Vec<PathBuf>,
    /// Files present only in the older snapshot.
    pub removed: Vec<PathBuf>,
    /// Files whose content hash changed.
    pub modified: Vec<PathBuf>,
}

impl TreeDiff {
    /// Total number of changed paths.
    pub fn total_changes(&self) -> usize {
        self.added.len() + self.removed.len() + self.modified.len()
    }

    /// True when the trees are identical.
    pub fn is_empty(&self) -> bool {
        self.total_changes() == 0
    }
}

impl Snapshot {
    /// Walks `root` and hashes every regular file. Hidden directories
    /// (starting with `.`) and common build-output directories are
    /// skipped, mirroring what a `.gitignore` usually excludes.
    pub fn take(root: impl AsRef<Path>) -> std::io::Result<Snapshot> {
        let root = root.as_ref().to_path_buf();
        let mut files = BTreeMap::new();
        walk(&root, &root, &mut files)?;
        Ok(Snapshot { root, files })
    }

    /// The snapshot root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of files captured.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// The hash of one file, if captured.
    pub fn file_hash(&self, rel: impl AsRef<Path>) -> Option<&str> {
        self.files.get(rel.as_ref()).map(|(h, _)| h.as_str())
    }

    /// A combined hash over all `(path, hash)` pairs — two trees with
    /// the same tree hash have identical content.
    pub fn tree_hash(&self) -> String {
        let mut hasher = Sha256::new();
        for (path, (hash, size)) in &self.files {
            hasher.update(path.to_string_lossy().as_bytes());
            hasher.update(b"\0");
            hasher.update(hash.as_bytes());
            hasher.update(&size.to_le_bytes());
        }
        crate::hash::to_hex(&hasher.finish())
    }

    /// Changes from `self` (older) to `newer`.
    pub fn diff(&self, newer: &Snapshot) -> TreeDiff {
        let mut diff = TreeDiff::default();
        for (path, (hash, _)) in &self.files {
            match newer.files.get(path) {
                None => diff.removed.push(path.clone()),
                Some((new_hash, _)) if new_hash != hash => diff.modified.push(path.clone()),
                _ => {}
            }
        }
        for path in newer.files.keys() {
            if !self.files.contains_key(path) {
                diff.added.push(path.clone());
            }
        }
        diff
    }
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut BTreeMap<PathBuf, (String, u64)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" || name == "__pycache__" {
            continue;
        }
        let ftype = entry.file_type()?;
        if ftype.is_dir() {
            walk(root, &path, files)?;
        } else if ftype.is_file() {
            let bytes = std::fs::read(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            files.insert(rel, (sha256_hex(&bytes), bytes.len() as u64));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yvcs_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(d.join("src")).unwrap();
        std::fs::write(d.join("train.py"), "lr = 0.001").unwrap();
        std::fs::write(d.join("src/model.py"), "class Model: pass").unwrap();
        d
    }

    #[test]
    fn snapshot_captures_tree() {
        let d = fixture("capture");
        let snap = Snapshot::take(&d).unwrap();
        assert_eq!(snap.file_count(), 2);
        assert!(snap.file_hash("train.py").is_some());
        assert!(snap.file_hash("src/model.py").is_some());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn identical_trees_have_equal_hash_and_empty_diff() {
        let d = fixture("identical");
        let a = Snapshot::take(&d).unwrap();
        let b = Snapshot::take(&d).unwrap();
        assert_eq!(a.tree_hash(), b.tree_hash());
        assert!(a.diff(&b).is_empty());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn diff_classifies_changes() {
        let d = fixture("classify");
        let before = Snapshot::take(&d).unwrap();
        std::fs::write(d.join("train.py"), "lr = 0.01  # tuned").unwrap();
        std::fs::write(d.join("eval.py"), "print('new')").unwrap();
        std::fs::remove_file(d.join("src/model.py")).unwrap();
        let after = Snapshot::take(&d).unwrap();

        let diff = before.diff(&after);
        assert_eq!(diff.modified, vec![PathBuf::from("train.py")]);
        assert_eq!(diff.added, vec![PathBuf::from("eval.py")]);
        assert_eq!(diff.removed, vec![PathBuf::from("src/model.py")]);
        assert_eq!(diff.total_changes(), 3);
        assert_ne!(before.tree_hash(), after.tree_hash());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn hidden_and_build_dirs_skipped() {
        let d = fixture("skips");
        std::fs::create_dir_all(d.join(".git")).unwrap();
        std::fs::write(d.join(".git/config"), "noise").unwrap();
        std::fs::create_dir_all(d.join("target")).unwrap();
        std::fs::write(d.join("target/out.bin"), "artifact").unwrap();
        let snap = Snapshot::take(&d).unwrap();
        assert_eq!(snap.file_count(), 2, "only source files counted");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tree_hash_depends_on_paths_too() {
        let d1 = fixture("paths1");
        let d2 = fixture("paths2");
        std::fs::rename(d2.join("train.py"), d2.join("renamed.py")).unwrap();
        let h1 = Snapshot::take(&d1).unwrap().tree_hash();
        let h2 = Snapshot::take(&d2).unwrap().tree_hash();
        assert_ne!(h1, h2, "same contents, different layout");
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d2).ok();
    }
}
