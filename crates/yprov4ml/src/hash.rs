//! SHA-256, implemented from scratch (FIPS 180-4).
//!
//! Used for content-addressing artifacts and source snapshots: two runs
//! that logged byte-identical checkpoints provably share lineage, and
//! the development-tracking use case (§3.1) diffs file trees by digest.

/// Initial hash values (first 32 bits of the fractional parts of the
/// square roots of the first 8 primes).
const H0: [u32; 8] = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A, 0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
];

/// Round constants (first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes).
const K: [u32; 64] = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1, 0x923F82A4, 0xAB1C5ED5,
    0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3, 0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174,
    0xE49B69C1, 0xEFBE4786, 0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147, 0x06CA6351, 0x14292967,
    0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13, 0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85,
    0xA2BFE8A1, 0xA81A664B, 0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A, 0x5B9CCA4F, 0x682E6FF3,
    0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208, 0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Starts a fresh hash.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Feeds bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("len checked");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes, producing the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        // update() changed total_len; irrelevant now, we captured bit_len.
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.total_len = 0; // silence further accounting
        let mut block = self.buffer;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block.clone());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunks_exact(4)"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finish()
}

/// One-shot SHA-256, hex-encoded.
pub fn sha256_hex(data: &[u8]) -> String {
    to_hex(&sha256(data))
}

/// Hex encoding of a digest.
pub fn to_hex(digest: &[u8]) -> String {
    let mut s = String::with_capacity(digest.len() * 2);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// SHA-256 of a file's contents, streaming in 64 KiB blocks.
pub fn sha256_file(path: &std::path::Path) -> std::io::Result<String> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let mut hasher = Sha256::new();
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        hasher.update(&buf[..n]);
    }
    Ok(to_hex(&hasher.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            to_hex(&h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256_hex(&data);
        for split in [1usize, 55, 56, 63, 64, 65, 127, 128, 500, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(to_hex(&h.finish()), oneshot, "split {split}");
        }
    }

    #[test]
    fn lengths_around_padding_edge() {
        // 55, 56, 57 bytes cross the one-vs-two-block padding boundary.
        for n in 50..70usize {
            let data = vec![0x61u8; n];
            let digest = sha256_hex(&data);
            assert_eq!(digest.len(), 64);
            // Consistency against incremental byte-by-byte feed.
            let mut h = Sha256::new();
            for b in &data {
                h.update(&[*b]);
            }
            assert_eq!(to_hex(&h.finish()), digest, "len {n}");
        }
    }

    #[test]
    fn file_hash_matches_buffer_hash() {
        let path = std::env::temp_dir().join(format!("sha_test_{}", std::process::id()));
        let data = b"provenance is a hash chain".repeat(5000);
        std::fs::write(&path, &data).unwrap();
        assert_eq!(sha256_file(&path).unwrap(), sha256_hex(&data));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256_hex(b"run-1"), sha256_hex(b"run-2"));
    }
}
