//! The plugin system.
//!
//! The paper positions yProv4ML as "flexible and extensible", letting
//! users "integrate additional data collection tools via plugins". A
//! [`ProvPlugin`] hooks three moments of a run — start, periodic tick,
//! end — and emits extra parameters/metrics through a [`PluginSink`].
//!
//! Three plugins ship with the library, mirroring the paper's
//! collection categories:
//!
//! * [`EnergyPlugin`] — power/energy telemetry from an
//!   `energy-monitor` power source;
//! * [`SystemStatsPlugin`] — host statistics (memory, CPU share);
//! * [`SourceSnapshotPlugin`] — content-addressed source-tree snapshots
//!   for the development-tracking use case (§3.1).

use crate::collector::Collector;
use crate::model::{Context, Direction, LogRecord, ParamValue};
use crate::vcs::Snapshot;
use energy_monitor::energy::EnergyAccumulator;
use energy_monitor::sampler::{PowerSource, VirtualClock};
use std::path::PathBuf;
use std::sync::Arc;

/// The channel through which plugins emit records.
pub struct PluginSink<'a> {
    collector: &'a Collector,
    tick: u64,
}

impl<'a> PluginSink<'a> {
    /// Builds a sink over a collector (normally done by [`crate::Run`],
    /// public so plugins can be driven and benchmarked standalone).
    pub fn new(collector: &'a Collector) -> Self {
        PluginSink { collector, tick: 0 }
    }

    /// Emits a parameter.
    pub fn param(&mut self, name: impl Into<String>, value: impl Into<ParamValue>) {
        let _ = self.collector.log(LogRecord::Param {
            name: name.into(),
            value: value.into(),
            direction: Direction::Output,
        });
    }

    /// Emits a metric sample under a custom context.
    pub fn metric(&mut self, name: impl Into<String>, step: u64, time_us: i64, value: f64) {
        let _ = self.collector.log(LogRecord::Metric {
            name: name.into(),
            context: Context::Custom("telemetry".into()),
            step,
            epoch: 0,
            time_us,
            value,
        });
        self.tick += 1;
    }
}

/// A data-collection plugin.
pub trait ProvPlugin: Send {
    /// Short identifier used in parameter names.
    fn name(&self) -> &str;
    /// Called once when the run starts.
    fn on_run_start(&mut self, _sink: &mut PluginSink) {}
    /// Called on every `Run::plugin_tick` (typically once per step).
    fn on_tick(&mut self, _sink: &mut PluginSink) {}
    /// Called once when the run finishes.
    fn on_run_end(&mut self, _sink: &mut PluginSink) {}
}

// ---------------------------------------------------------------------------
// Energy plugin
// ---------------------------------------------------------------------------

/// Samples a power source on every tick and logs watts plus integrated
/// kWh, the metrics behind the paper's energy trade-off study.
pub struct EnergyPlugin {
    source: Arc<dyn PowerSource>,
    clock: Arc<VirtualClock>,
    acc: EnergyAccumulator,
    ticks: u64,
}

impl EnergyPlugin {
    /// Builds the plugin from a power source and the clock that
    /// timestamps its samples.
    pub fn new(source: Arc<dyn PowerSource>, clock: Arc<VirtualClock>) -> Self {
        EnergyPlugin {
            source,
            clock,
            acc: EnergyAccumulator::new(),
            ticks: 0,
        }
    }

    /// Energy integrated so far, joules.
    pub fn joules(&self) -> f64 {
        self.acc.joules()
    }
}

impl ProvPlugin for EnergyPlugin {
    fn name(&self) -> &str {
        "energy"
    }

    fn on_run_start(&mut self, sink: &mut PluginSink) {
        sink.param("energy.device", self.source.label());
    }

    fn on_tick(&mut self, sink: &mut PluginSink) {
        let t = self.clock.now_s();
        let w = self.source.watts();
        self.acc.add_sample(t, w);
        let time_us = (t * 1e6) as i64;
        sink.metric("power_w", self.ticks, time_us, w);
        sink.metric("energy_kwh", self.ticks, time_us, self.acc.kwh());
        self.ticks += 1;
    }

    fn on_run_end(&mut self, sink: &mut PluginSink) {
        sink.param("energy.total_kwh", self.acc.kwh());
        sink.param("energy.peak_w", self.acc.peak_watts());
        sink.param("energy.mean_w", self.acc.mean_watts());
    }
}

// ---------------------------------------------------------------------------
// System stats plugin
// ---------------------------------------------------------------------------

/// Logs host statistics per tick. Real deployments read `/proc`; here
/// the values come from a caller-provided sampler closure so tests and
/// simulations stay deterministic.
pub struct SystemStatsPlugin {
    sampler: Box<dyn FnMut() -> SystemStats + Send>,
    ticks: u64,
}

/// One host-statistics reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemStats {
    /// Resident memory, bytes.
    pub memory_bytes: u64,
    /// CPU utilization, 0..=1.
    pub cpu_util: f64,
}

impl SystemStatsPlugin {
    /// Builds from a stats closure.
    pub fn new(sampler: impl FnMut() -> SystemStats + Send + 'static) -> Self {
        SystemStatsPlugin {
            sampler: Box::new(sampler),
            ticks: 0,
        }
    }

    /// A sampler reading the current process's own stats where
    /// available, falling back to zeros on unsupported platforms.
    pub fn self_process() -> Self {
        SystemStatsPlugin::new(|| {
            let memory_bytes = std::fs::read_to_string("/proc/self/statm")
                .ok()
                .and_then(|s| {
                    s.split_whitespace()
                        .nth(1)
                        .and_then(|p| p.parse::<u64>().ok())
                })
                .map(|pages| pages * 4096)
                .unwrap_or(0);
            SystemStats {
                memory_bytes,
                cpu_util: 0.0,
            }
        })
    }
}

impl ProvPlugin for SystemStatsPlugin {
    fn name(&self) -> &str {
        "system-stats"
    }

    fn on_tick(&mut self, sink: &mut PluginSink) {
        let stats = (self.sampler)();
        let time_us = self.ticks as i64;
        sink.metric(
            "memory_bytes",
            self.ticks,
            time_us,
            stats.memory_bytes as f64,
        );
        sink.metric("cpu_util", self.ticks, time_us, stats.cpu_util);
        self.ticks += 1;
    }
}

// ---------------------------------------------------------------------------
// Source snapshot plugin
// ---------------------------------------------------------------------------

/// Records a content-addressed snapshot of a source tree at run start
/// and the tree diff at run end — the paper's §3.1 "development graph"
/// with "tracking git differences", without requiring git.
pub struct SourceSnapshotPlugin {
    root: PathBuf,
    start_snapshot: Option<Snapshot>,
}

impl SourceSnapshotPlugin {
    /// Watches the tree rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        SourceSnapshotPlugin {
            root: root.into(),
            start_snapshot: None,
        }
    }
}

impl ProvPlugin for SourceSnapshotPlugin {
    fn name(&self) -> &str {
        "source-snapshot"
    }

    fn on_run_start(&mut self, sink: &mut PluginSink) {
        if let Ok(snap) = Snapshot::take(&self.root) {
            sink.param("source.tree_hash", snap.tree_hash());
            sink.param("source.files", snap.file_count());
            self.start_snapshot = Some(snap);
        }
    }

    fn on_run_end(&mut self, sink: &mut PluginSink) {
        let Some(start) = &self.start_snapshot else {
            return;
        };
        if let Ok(end) = Snapshot::take(&self.root) {
            let diff = start.diff(&end);
            sink.param("source.files_changed_during_run", diff.total_changes());
            if !diff.is_empty() {
                sink.param("source.end_tree_hash", end.tree_hash());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(collector: &Arc<Collector>) -> crate::collector::RunState {
        collector.close().unwrap()
    }

    #[test]
    fn energy_plugin_logs_power_and_totals() {
        let collector = Collector::synchronous();
        let clock = VirtualClock::manual();
        let source: Arc<dyn PowerSource> = Arc::new(|| 300.0);
        let mut plugin = EnergyPlugin::new(source, Arc::clone(&clock));
        let mut sink = PluginSink::new(&collector);
        plugin.on_run_start(&mut sink);
        for _ in 0..5 {
            plugin.on_tick(&mut sink);
            clock.advance(1.0);
        }
        plugin.on_run_end(&mut sink);
        assert!((plugin.joules() - 300.0 * 4.0).abs() < 1e-9);

        let state = drain(&collector);
        assert!(state.params.contains_key("energy.total_kwh"));
        assert!(state.params.contains_key("energy.device"));
        let power = &state.metrics[&("power_w".to_string(), "telemetry".to_string())];
        assert_eq!(power.len(), 5);
        assert!(power.points.iter().all(|p| p.value == 300.0));
    }

    #[test]
    fn system_stats_plugin_emits_series() {
        let collector = Collector::synchronous();
        let mut n = 0u64;
        let mut plugin = SystemStatsPlugin::new(move || {
            n += 1;
            SystemStats {
                memory_bytes: n * 1024,
                cpu_util: 0.5,
            }
        });
        let mut sink = PluginSink::new(&collector);
        for _ in 0..3 {
            plugin.on_tick(&mut sink);
        }
        let state = drain(&collector);
        let mem = &state.metrics[&("memory_bytes".to_string(), "telemetry".to_string())];
        assert_eq!(mem.len(), 3);
        assert_eq!(mem.points[2].value, 3.0 * 1024.0);
    }

    #[test]
    fn self_process_stats_do_not_crash() {
        let collector = Collector::synchronous();
        let mut plugin = SystemStatsPlugin::self_process();
        let mut sink = PluginSink::new(&collector);
        plugin.on_tick(&mut sink);
        let state = drain(&collector);
        assert_eq!(state.metric_samples, 2);
    }

    #[test]
    fn source_snapshot_detects_changes() {
        let dir = std::env::temp_dir().join(format!("ysnap_plugin_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.py"), "print('v1')").unwrap();

        let collector = Collector::synchronous();
        let mut plugin = SourceSnapshotPlugin::new(&dir);
        let mut sink = PluginSink::new(&collector);
        plugin.on_run_start(&mut sink);
        std::fs::write(dir.join("train.py"), "print('v2 — tweaked mid-run')").unwrap();
        plugin.on_run_end(&mut sink);

        let state = drain(&collector);
        assert!(state.params.contains_key("source.tree_hash"));
        assert_eq!(
            state.params["source.files_changed_during_run"].0,
            ParamValue::Int(1)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
