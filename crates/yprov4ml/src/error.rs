//! Error type of the provenance library.

use std::fmt;

/// Errors surfaced by the yprov4ml API.
#[derive(Debug)]
pub enum ProvMLError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The metric spill store failed.
    Store(metric_store::StoreError),
    /// PROV document construction or serialization failed.
    Prov(prov_model::ProvError),
    /// The run is already finished; no further logging is accepted.
    RunClosed(String),
    /// An experiment or run name was invalid.
    BadName(String),
    /// The background collector thread died.
    CollectorGone,
    /// A journal already exists where one would be created; pick
    /// [`crate::journal::JournalMode::Overwrite`] or
    /// [`crate::journal::JournalMode::Resume`] explicitly.
    JournalExists(std::path::PathBuf),
    /// The journal on disk is structurally unusable (empty file, bad
    /// header, mismatched rotation segments). Torn or corrupt *records*
    /// are never an error — they are skipped with a count.
    Journal(String),
}

impl fmt::Display for ProvMLError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvMLError::Io(e) => write!(f, "i/o error: {e}"),
            ProvMLError::Store(e) => write!(f, "metric store error: {e}"),
            ProvMLError::Prov(e) => write!(f, "provenance error: {e}"),
            ProvMLError::RunClosed(name) => write!(f, "run {name:?} is already finished"),
            ProvMLError::BadName(n) => write!(f, "invalid name: {n:?}"),
            ProvMLError::CollectorGone => write!(f, "collector thread terminated unexpectedly"),
            ProvMLError::JournalExists(p) => write!(
                f,
                "journal {} already exists; choose JournalMode::Overwrite or JournalMode::Resume",
                p.display()
            ),
            ProvMLError::Journal(msg) => write!(f, "journal error: {msg}"),
        }
    }
}

impl std::error::Error for ProvMLError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProvMLError::Io(e) => Some(e),
            ProvMLError::Store(e) => Some(e),
            ProvMLError::Prov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProvMLError {
    fn from(e: std::io::Error) -> Self {
        ProvMLError::Io(e)
    }
}
impl From<metric_store::StoreError> for ProvMLError {
    fn from(e: metric_store::StoreError) -> Self {
        ProvMLError::Store(e)
    }
}
impl From<prov_model::ProvError> for ProvMLError {
    fn from(e: prov_model::ProvError) -> Self {
        ProvMLError::Prov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: ProvMLError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ProvMLError::RunClosed("r1".into())
            .to_string()
            .contains("r1"));
        assert!(std::error::Error::source(&ProvMLError::CollectorGone).is_none());
        assert!(ProvMLError::JournalExists("/tmp/j.jsonl".into())
            .to_string()
            .contains("Overwrite"));
        assert!(ProvMLError::Journal("empty".into())
            .to_string()
            .contains("empty"));
    }
}
