//! # yprov4ml
//!
//! A Rust reproduction of the **yProv4ML** provenance-collection library
//! ("Provenance Tracking in Large-Scale Machine Learning Systems",
//! ICPP 2025): MLflow-style logging that produces W3C PROV-JSON.
//!
//! ## The data model (paper Figure 2)
//!
//! An [`Experiment`] groups [`Run`]s; each run is divided into
//! [`Context`]s (training / validation / testing / user-defined), and
//! the training and validation contexts are organized into epochs. A
//! run logs three categories of information:
//!
//! * **parameters** — one-time values (learning rate, model size, ...);
//! * **metrics** — values updated during training (loss, power, ...),
//!   each sample tagged with step, epoch and wall time;
//! * **artifacts** — files consumed or produced (datasets, checkpoints,
//!   source code), content-addressed with SHA-256.
//!
//! Everything can be flagged as an **input** or an **output**
//! ([`Direction`]), which becomes `used` vs. `wasGeneratedBy` edges in
//! the provenance graph — the relationship rework the paper describes
//! in §4.
//!
//! ## Quick start
//!
//! ```
//! use yprov4ml::{Experiment, Context, Direction};
//!
//! let dir = std::env::temp_dir().join("yprov4ml_doctest");
//! let experiment = Experiment::new("mnist-study", &dir).unwrap();
//! let mut run = experiment.start_run("baseline").unwrap();
//!
//! run.log_param("learning_rate", 1e-3);
//! run.log_input_param("dataset", "MNIST");
//! for step in 0..10u64 {
//!     run.log_metric("loss", Context::Training, step, 0, 1.0 / (step + 1) as f64);
//! }
//! run.log_artifact_bytes("model.ckpt", b"weights...", Direction::Output).unwrap();
//!
//! let report = run.finish().unwrap();
//! assert!(report.prov_json_path.exists());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! The produced PROV-JSON validates against the [`prov_model`] document
//! model, renders to DOT via [`prov_graph`], and bulky metrics can be
//! spilled to the chunked stores of [`metric_store`] (§4's Zarr/NetCDF
//! feature, Table 1).

pub mod artifact_store;
pub mod collector;
pub mod compare;
pub mod crc32;
pub mod error;
pub mod experiment;
pub mod forecast;
pub mod hash;
pub mod journal;
pub mod mlflow;
pub mod model;
pub mod monitor;
pub mod plugins;
pub mod prov_emit;
pub mod run;
pub mod spill;
pub mod vcs;

pub use error::ProvMLError;
pub use experiment::Experiment;
pub use journal::{
    recover, recover_detailed, JournalConfig, JournalMode, RecoveryReport, SyncPolicy,
};
pub use model::{Context, Direction, LogRecord, ParamValue, RunReport, RunStatus};
pub use run::{DeltaCadence, DeltaEmitter, FinalizeOptions, Run, RunOptions};
pub use spill::SpillPolicy;
