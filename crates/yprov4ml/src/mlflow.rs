//! MLflow-style module-level API.
//!
//! The paper positions yProv4ML as exposing "logging utilities similar
//! to MLFlow, allowing for quick integration". MLflow's Python API is
//! module-global (`mlflow.start_run()`, `mlflow.log_metric(...)`); this
//! module mirrors that surface over a process-global active run, so a
//! training loop ports with minimal edits:
//!
//! ```
//! use yprov4ml::mlflow;
//!
//! let dir = std::env::temp_dir().join("mlflow_shim_doctest");
//! mlflow::set_tracking_dir(&dir);
//! mlflow::set_experiment("ported-project").unwrap();
//! mlflow::start_run("first").unwrap();
//! mlflow::log_param("lr", 0.01);
//! for step in 0..10 {
//!     mlflow::log_metric("loss", 1.0 / (step + 1) as f64, step);
//! }
//! let report = mlflow::end_run().unwrap();
//! assert_eq!(report.metric_samples, 10);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! The richer, handle-based API ([`crate::Experiment`] / [`crate::Run`])
//! remains the primary interface; the shim trades explicitness for
//! drop-in familiarity, exactly as the paper describes.

use crate::error::ProvMLError;
use crate::experiment::Experiment;
use crate::model::{Context, Direction, ParamValue, RunReport};
use crate::run::{Run, RunOptions};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};

struct ShimState {
    tracking_dir: PathBuf,
    experiment: Option<Experiment>,
    active_run: Option<Run>,
}

impl Default for ShimState {
    fn default() -> Self {
        ShimState {
            tracking_dir: std::env::temp_dir().join("yprov4ml_tracking"),
            experiment: None,
            active_run: None,
        }
    }
}

static STATE: Mutex<Option<ShimState>> = Mutex::new(None);

fn with_state<T>(f: impl FnOnce(&mut ShimState) -> T) -> T {
    let mut guard = STATE.lock();
    f(guard.get_or_insert_with(ShimState::default))
}

/// Sets where experiments are stored (MLflow's tracking URI analogue).
pub fn set_tracking_dir(dir: impl AsRef<Path>) {
    with_state(|s| s.tracking_dir = dir.as_ref().to_path_buf());
}

/// Selects (creating if needed) the active experiment.
pub fn set_experiment(name: &str) -> Result<(), ProvMLError> {
    with_state(|s| {
        s.experiment = Some(Experiment::new(name, &s.tracking_dir)?);
        Ok(())
    })
}

/// Starts a run under the active experiment. Fails if another run is
/// already active (end it first) or no experiment is set.
pub fn start_run(name: &str) -> Result<(), ProvMLError> {
    start_run_with(name, RunOptions::default())
}

/// Starts a run with explicit options.
pub fn start_run_with(name: &str, options: RunOptions) -> Result<(), ProvMLError> {
    with_state(|s| {
        if s.active_run.is_some() {
            return Err(ProvMLError::BadName(format!(
                "a run is already active; end_run() before starting {name:?}"
            )));
        }
        let experiment = s
            .experiment
            .as_ref()
            .ok_or_else(|| ProvMLError::BadName("call set_experiment() first".into()))?;
        s.active_run = Some(experiment.start_run_with(name, options)?);
        Ok(())
    })
}

/// True when a run is active.
pub fn active() -> bool {
    with_state(|s| s.active_run.is_some())
}

fn with_run<T>(f: impl FnOnce(&Run) -> T) -> Result<T, ProvMLError> {
    with_state(|s| {
        let run = s
            .active_run
            .as_ref()
            .ok_or_else(|| ProvMLError::BadName("no active run".into()))?;
        Ok(f(run))
    })
}

/// Logs a parameter on the active run (no-op without one, like MLflow's
/// fluent API outside a run context — but returns the error for callers
/// who care).
pub fn log_param(key: &str, value: impl Into<ParamValue>) {
    let _ = with_run(|r| r.log_param(key, value));
}

/// Logs a training metric at a step.
pub fn log_metric(key: &str, value: f64, step: u64) {
    let _ = with_run(|r| r.log_metric(key, Context::Training, step, 0, value));
}

/// Logs a metric under an explicit context and epoch (the yProv4ML
/// extension MLflow lacks).
pub fn log_metric_in(key: &str, context: Context, value: f64, step: u64, epoch: u32) {
    let _ = with_run(|r| r.log_metric(key, context, step, epoch, value));
}

/// Copies a file into the run as an output artifact.
pub fn log_artifact(path: impl AsRef<Path>) -> Result<(), ProvMLError> {
    with_run(|r| r.log_artifact_file(path, Direction::Output).map(|_| ()))?
}

/// Stores text as an output artifact (MLflow's `log_text`).
pub fn log_text(name: &str, text: &str) -> Result<(), ProvMLError> {
    with_run(|r| {
        r.log_artifact_bytes(name, text.as_bytes(), Direction::Output)
            .map(|_| ())
    })?
}

/// Ends the active run, writing its provenance files.
pub fn end_run() -> Result<RunReport, ProvMLError> {
    let run = with_state(|s| {
        s.active_run
            .take()
            .ok_or_else(|| ProvMLError::BadName("no active run to end".into()))
    })?;
    run.finish()
}

/// Ends the active run with a failure marker.
pub fn end_run_failed() -> Result<RunReport, ProvMLError> {
    let run = with_state(|s| {
        s.active_run
            .take()
            .ok_or_else(|| ProvMLError::BadName("no active run to end".into()))
    })?;
    run.fail()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The shim is process-global; tests share one lock to stay serial.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn fresh_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ymlflow_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn fluent_api_full_cycle() {
        let _guard = TEST_LOCK.lock();
        let dir = fresh_dir("cycle");
        set_tracking_dir(&dir);
        set_experiment("shim-exp").unwrap();
        assert!(!active());

        start_run("r1").unwrap();
        assert!(active());
        log_param("lr", 0.5);
        for step in 0..20u64 {
            log_metric("loss", 1.0 / (step + 1) as f64, step);
        }
        log_metric_in("accuracy", Context::Validation, 0.9, 19, 0);
        log_text("notes.txt", "ported from mlflow").unwrap();

        let report = end_run().unwrap();
        assert!(!active());
        assert_eq!(report.metric_samples, 21);
        assert_eq!(report.params, 1);
        assert_eq!(report.artifacts, 1);
        assert!(report.prov_json_path.is_file());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misuse_is_rejected() {
        let _guard = TEST_LOCK.lock();
        let dir = fresh_dir("misuse");
        set_tracking_dir(&dir);
        // end without start
        assert!(end_run().is_err());
        // start without experiment would only fail on a fresh state —
        // set one, start, then double-start must fail.
        set_experiment("misuse-exp").unwrap();
        start_run("a").unwrap();
        assert!(start_run("b").is_err(), "double start rejected");
        end_run().unwrap();
        // artifact logging without a run errors.
        assert!(log_text("x", "y").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_runs_marked() {
        let _guard = TEST_LOCK.lock();
        let dir = fresh_dir("failed");
        set_tracking_dir(&dir);
        set_experiment("fail-exp").unwrap();
        start_run("boom").unwrap();
        log_param("lr", 100.0);
        let report = end_run_failed().unwrap();
        assert_eq!(report.status, crate::model::RunStatus::Failed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
