//! Experiments: named collections of runs (paper Figure 2, top level).

use crate::error::ProvMLError;
use crate::run::{Run, RunOptions};
use std::path::{Path, PathBuf};

/// An experiment groups related runs under one directory:
///
/// ```text
/// <base>/<experiment>/
///   run-0001/ prov.json prov.provn artifacts/ metrics.zarr ...
///   run-0002/ ...
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    name: String,
    dir: PathBuf,
}

impl Experiment {
    /// Creates (or opens) an experiment under `base`.
    pub fn new(name: impl Into<String>, base: impl AsRef<Path>) -> Result<Self, ProvMLError> {
        let name = name.into();
        validate_name(&name)?;
        let dir = base.as_ref().join(&name);
        std::fs::create_dir_all(&dir)?;
        Ok(Experiment { name, dir })
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The experiment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Starts a run with default options (buffered collector, inline
    /// metrics).
    pub fn start_run(&self, run_name: impl Into<String>) -> Result<Run, ProvMLError> {
        self.start_run_with(run_name, RunOptions::default())
    }

    /// Starts a run with explicit options.
    pub fn start_run_with(
        &self,
        run_name: impl Into<String>,
        options: RunOptions,
    ) -> Result<Run, ProvMLError> {
        let run_name = run_name.into();
        validate_name(&run_name)?;
        Run::start(self.name.clone(), run_name, &self.dir, options)
    }

    /// Names of runs already present on disk (finished or in progress).
    pub fn list_runs(&self) -> Result<Vec<String>, ProvMLError> {
        let mut runs = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                runs.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        runs.sort();
        Ok(runs)
    }

    /// Loads the provenance document of a finished run.
    pub fn load_run_document(
        &self,
        run_name: &str,
    ) -> Result<prov_model::ProvDocument, ProvMLError> {
        let path = self.dir.join(run_name).join("prov.json");
        let text = std::fs::read_to_string(path)?;
        Ok(prov_model::ProvDocument::from_json_str(&text)?)
    }

    /// Merges the provenance of **all** finished runs into one document
    /// — the paper's future-work item of "tracking all experiment runs
    /// in a single provenance file, to enable easier comparison with
    /// each individual execution". Runs without a `prov.json` (still
    /// active or crashed before finish) are skipped.
    pub fn combined_document(&self) -> Result<prov_model::ProvDocument, ProvMLError> {
        let mut combined = prov_model::ProvDocument::new();
        for run in self.list_runs()? {
            if !self.dir.join(&run).join("prov.json").is_file() {
                continue;
            }
            let doc = self.load_run_document(&run)?;
            combined.merge(&doc)?;
        }
        // Cross-run identity: artifacts with the same content hash
        // produced by one run and consumed by another are linked, so
        // lineage flows through job chains and shared datasets.
        crate::prov_emit::stitch_artifacts_by_digest(&mut combined);
        Ok(combined)
    }

    /// Writes the combined document next to the runs as
    /// `experiment-prov.json` and returns its path.
    pub fn write_combined_document(&self) -> Result<PathBuf, ProvMLError> {
        let doc = self.combined_document()?;
        let path = self.dir.join("experiment-prov.json");
        std::fs::write(&path, doc.to_json_string_pretty()?)?;
        Ok(path)
    }
}

fn validate_name(name: &str) -> Result<(), ProvMLError> {
    if name.is_empty()
        || name.len() > 128
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
        || name.starts_with('.')
    {
        return Err(ProvMLError::BadName(name.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yexp_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn creates_directory_layout() {
        let b = base("layout");
        let exp = Experiment::new("scaling-study", &b).unwrap();
        assert!(exp.dir().is_dir());
        assert_eq!(exp.name(), "scaling-study");
        assert!(exp.list_runs().unwrap().is_empty());
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn run_lifecycle_appears_in_listing() {
        let b = base("listing");
        let exp = Experiment::new("e1", &b).unwrap();
        let run = exp.start_run("run-0001").unwrap();
        run.finish().unwrap();
        assert_eq!(exp.list_runs().unwrap(), vec!["run-0001"]);
        let doc = exp.load_run_document("run-0001").unwrap();
        assert!(doc.element_count() > 0);
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn rejects_bad_names() {
        let b = base("badnames");
        assert!(Experiment::new("", &b).is_err());
        assert!(Experiment::new("has space", &b).is_err());
        assert!(Experiment::new("../escape", &b).is_err());
        assert!(Experiment::new(".hidden", &b).is_err());
        let exp = Experiment::new("ok", &b).unwrap();
        assert!(exp.start_run("run/1").is_err());
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn combined_document_merges_all_runs() {
        let b = base("combined");
        let exp = Experiment::new("e", &b).unwrap();
        for name in ["run-a", "run-b"] {
            let run = exp.start_run(name).unwrap();
            run.log_param("lr", 0.1);
            run.finish().unwrap();
        }
        // An unfinished run directory is skipped, not fatal.
        std::fs::create_dir_all(exp.dir().join("run-c-active")).unwrap();

        let combined = exp.combined_document().unwrap();
        let run_ty = prov_model::QName::yprov("RunExecution");
        let runs = combined
            .iter_elements()
            .filter(|e| e.has_type(&run_ty))
            .count();
        assert_eq!(runs, 2);

        let path = exp.write_combined_document().unwrap();
        assert!(path.is_file());
        let reloaded =
            prov_model::ProvDocument::from_json_str(&std::fs::read_to_string(&path).unwrap())
                .unwrap();
        assert_eq!(reloaded.element_count(), combined.element_count());
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn reopening_is_idempotent() {
        let b = base("reopen");
        Experiment::new("e", &b).unwrap();
        let again = Experiment::new("e", &b).unwrap();
        assert!(again.dir().is_dir());
        std::fs::remove_dir_all(&b).ok();
    }
}
