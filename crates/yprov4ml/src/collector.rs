//! The concurrent log collector.
//!
//! Logging must never stall the training loop (the paper's "minimal
//! overhead" requirement), so the default collector pushes records onto
//! an unbounded lock-free channel drained by a background thread that
//! folds them into the run state. A synchronous mode (mutex around the
//! state) exists for tests and for workloads where determinism matters
//! more than latency; the overhead benchmark (E7) compares the two.
//!
//! For high metric volumes the fold itself becomes the bottleneck, so a
//! third mode shards the fold across N background threads keyed by a
//! stable hash of the metric name ([`Collector::sharded`]): a metric
//! series never spans shards, every non-metric record routes to shard 0,
//! and [`Collector::close`] merges the shard states in shard order — a
//! deterministic reduction that reproduces the single-thread state for
//! any workload whose per-series record order is deterministic.
//! [`Collector::log_many`] complements it by batching many records into
//! one channel hop.

use crate::crc32::crc32;
use crate::error::ProvMLError;
use crate::model::{ArtifactMeta, Direction, LogRecord, ParamValue};
use crossbeam::channel::{unbounded, Receiver, Sender};
use metric_store::series::{MetricPoint, MetricSeries};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregated state of one run, built from the record stream.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunState {
    /// Parameters (later same-name records override earlier ones).
    pub params: BTreeMap<String, (ParamValue, Direction)>,
    /// Metric series keyed by `(metric name, context name)`.
    pub metrics: BTreeMap<(String, String), MetricSeries>,
    /// Logged artifacts.
    pub artifacts: Vec<ArtifactMeta>,
    /// Observed context spans: name → (first start µs, last end µs).
    pub context_spans: BTreeMap<String, (Option<i64>, Option<i64>)>,
    /// Highest epoch seen per context.
    pub max_epoch: BTreeMap<String, u32>,
    /// Total metric samples folded in.
    pub metric_samples: usize,
}

impl RunState {
    /// Folds one record into the state.
    pub fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::Param {
                name,
                value,
                direction,
            } => {
                self.params.insert(name, (value, direction));
            }
            LogRecord::Metric {
                name,
                context,
                step,
                epoch,
                time_us,
                value,
            } => {
                // The record's own strings key the map; clones happen
                // only on first sight of a series / context, not per
                // sample.
                let key = (name, context.name());
                let series = self
                    .metrics
                    .entry(key)
                    .or_insert_with_key(|k| MetricSeries::new(k.0.clone(), k.1.clone()));
                series.push(MetricPoint {
                    step,
                    epoch,
                    time_us,
                    value,
                });
                if let Some(slot) = self.max_epoch.get_mut(&series.context) {
                    *slot = (*slot).max(epoch);
                } else {
                    self.max_epoch.insert(series.context.clone(), epoch);
                }
                self.metric_samples += 1;
            }
            LogRecord::Artifact(meta) => self.artifacts.push(meta),
            LogRecord::ContextStart { context, time_us } => {
                let span = self
                    .context_spans
                    .entry(context.name())
                    .or_insert((None, None));
                if span.0.is_none() {
                    span.0 = Some(time_us);
                }
            }
            LogRecord::ContextEnd { context, time_us } => {
                let span = self
                    .context_spans
                    .entry(context.name())
                    .or_insert((None, None));
                span.1 = Some(time_us);
            }
        }
    }

    /// Merges another state into this one, consuming it — the reduction
    /// step of the sharded collector's `close`.
    ///
    /// Same-key metric series concatenate (`other` after `self`; shards
    /// key by metric name, so in sharded use the key sets are disjoint
    /// and this never happens); params keep `other`'s value on
    /// collision, preserving the last-write-wins rule when all params
    /// route to one shard; epochs merge by max; context spans keep the
    /// earliest start and the latest observed end.
    pub fn merge(&mut self, other: RunState) {
        self.params.extend(other.params);
        for (key, series) in other.metrics {
            match self.metrics.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(series);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().points.extend(series.points);
                }
            }
        }
        self.artifacts.extend(other.artifacts);
        for (name, (start, end)) in other.context_spans {
            let span = self.context_spans.entry(name).or_insert((None, None));
            if span.0.is_none() {
                span.0 = start;
            }
            if end.is_some() {
                span.1 = end;
            }
        }
        for (name, epoch) in other.max_epoch {
            let slot = self.max_epoch.entry(name).or_insert(0);
            *slot = (*slot).max(epoch);
        }
        self.metric_samples += other.metric_samples;
    }

    /// Names of contexts that logged anything.
    pub fn context_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .metrics
            .keys()
            .map(|(_, c)| c.clone())
            .chain(self.context_spans.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

enum Msg {
    Record(Box<LogRecord>),
    /// Many records folded off one channel hop (`log_many`).
    Batch(Vec<LogRecord>),
    Flush(Sender<()>),
    /// Ships a clone of the current state back without disturbing the
    /// fold — the live-streaming path's read point.
    Snapshot(Sender<RunState>),
    /// Final message: fold nothing more, ship the state back and exit.
    Shutdown(Sender<RunState>),
}

enum Inner {
    Sync(Mutex<RunState>),
    Buffered {
        tx: Sender<Msg>,
        handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    },
    /// N folding threads; metric records route by a stable hash of the
    /// metric name, everything else to shard 0.
    Sharded {
        txs: Vec<Sender<Msg>>,
        handles: Mutex<Option<Vec<std::thread::JoinHandle<()>>>>,
    },
}

/// The drain loop every folding thread runs (buffered and sharded).
fn fold_loop(rx: Receiver<Msg>) {
    // Fold time is tracked per message, not per blocking recv, so the
    // histogram reflects work rather than idle waiting.
    let fold = obs::global().histogram("yprov4ml_collector_fold_seconds");
    let mut state = RunState::default();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Record(r) => {
                let _trace = obs::trace::span("collector_fold");
                fold.time(|| state.apply(*r))
            }
            Msg::Batch(records) => {
                let mut trace = obs::trace::span("collector_fold");
                if obs::trace::is_enabled() {
                    trace.annotate("records", records.len().to_string());
                }
                fold.time(|| {
                    for r in records {
                        state.apply(r);
                    }
                })
            }
            Msg::Flush(ack) => {
                let _ = ack.send(());
            }
            Msg::Snapshot(out) => {
                let _ = out.send(state.clone());
            }
            Msg::Shutdown(out) => {
                let _ = out.send(std::mem::take(&mut state));
                return;
            }
        }
    }
}

/// Which shard a record folds on. Metric records spread by name so one
/// series never spans shards (keeping per-series order intact); all
/// state with cross-record ordering semantics (param overrides,
/// artifact order, context spans) stays on shard 0.
fn shard_index(record: &LogRecord, shards: usize) -> usize {
    match record {
        LogRecord::Metric { name, .. } => crc32(name.as_bytes()) as usize % shards,
        _ => 0,
    }
}

/// The collector: accepts records from any thread and folds them into a
/// [`RunState`]. Shared behind an `Arc`; all methods take `&self`.
pub struct Collector {
    inner: Inner,
    accepted: AtomicUsize,
    /// Submit-side latency (inline fold in sync mode, channel send
    /// otherwise) — the tracker cost the training loop actually feels.
    enqueue: Arc<obs::Histogram>,
}

fn enqueue_histogram() -> Arc<obs::Histogram> {
    obs::global().histogram("yprov4ml_collector_enqueue_seconds")
}

impl Collector {
    /// A synchronous collector (records folded inline under a mutex).
    pub fn synchronous() -> Arc<Self> {
        Arc::new(Collector {
            inner: Inner::Sync(Mutex::new(RunState::default())),
            accepted: AtomicUsize::new(0),
            enqueue: enqueue_histogram(),
        })
    }

    /// A buffered collector with a background folding thread.
    ///
    /// Errors if the OS refuses to spawn the thread (resource
    /// exhaustion) — a library should report that, not panic.
    pub fn buffered() -> Result<Arc<Self>, ProvMLError> {
        let (tx, rx) = unbounded::<Msg>();
        let handle = std::thread::Builder::new()
            .name("yprov4ml-collector".into())
            .spawn(move || fold_loop(rx))?;
        Ok(Arc::new(Collector {
            inner: Inner::Buffered {
                tx,
                handle: Mutex::new(Some(handle)),
            },
            accepted: AtomicUsize::new(0),
            enqueue: enqueue_histogram(),
        }))
    }

    /// A collector folding on `shards` background threads, for runs
    /// whose metric volume outgrows a single folding thread.
    ///
    /// `shards <= 1` falls back to [`Collector::buffered`]. Determinism:
    /// records for one metric always fold on the same shard (stable
    /// name hash) and `close` merges shard states in shard order, so the
    /// final [`RunState`] equals the buffered collector's whenever the
    /// per-series submission order is deterministic — concurrent
    /// producers logging disjoint metrics included.
    pub fn sharded(shards: usize) -> Result<Arc<Self>, ProvMLError> {
        if shards <= 1 {
            return Collector::buffered();
        }
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (tx, rx) = unbounded::<Msg>();
            // On spawn failure the already-started shards exit on their
            // own once `txs` drops and their channels disconnect.
            let handle = std::thread::Builder::new()
                .name(format!("yprov4ml-collector-{i}"))
                .spawn(move || fold_loop(rx))?;
            txs.push(tx);
            handles.push(handle);
        }
        Ok(Arc::new(Collector {
            inner: Inner::Sharded {
                txs,
                handles: Mutex::new(Some(handles)),
            },
            accepted: AtomicUsize::new(0),
            enqueue: enqueue_histogram(),
        }))
    }

    /// Submits a record. Non-blocking in buffered and sharded modes.
    pub fn log(&self, record: LogRecord) -> Result<(), ProvMLError> {
        let _span = self.enqueue.start_span();
        let _trace = obs::trace::span("collector_enqueue");
        match &self.inner {
            Inner::Sync(state) => state.lock().apply(record),
            Inner::Buffered { tx, .. } => tx
                .send(Msg::Record(Box::new(record)))
                .map_err(|_| ProvMLError::CollectorGone)?,
            Inner::Sharded { txs, .. } => {
                let shard = shard_index(&record, txs.len());
                txs[shard]
                    .send(Msg::Record(Box::new(record)))
                    .map_err(|_| ProvMLError::CollectorGone)?;
            }
        }
        // Counted only after a successful submit: a record rejected
        // with `CollectorGone` was never accepted.
        self.accepted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Submits a batch of records with one channel operation per shard,
    /// amortizing the per-record send and box of [`Collector::log`].
    pub fn log_many(&self, records: Vec<LogRecord>) -> Result<(), ProvMLError> {
        let count = records.len();
        if count == 0 {
            return Ok(());
        }
        let _span = self.enqueue.start_span();
        let mut trace = obs::trace::span("collector_enqueue");
        if obs::trace::is_enabled() {
            trace.annotate("records", count.to_string());
        }
        match &self.inner {
            Inner::Sync(state) => {
                let mut state = state.lock();
                for r in records {
                    state.apply(r);
                }
            }
            Inner::Buffered { tx, .. } => tx
                .send(Msg::Batch(records))
                .map_err(|_| ProvMLError::CollectorGone)?,
            Inner::Sharded { txs, .. } => {
                let shards = txs.len();
                let mut per_shard: Vec<Vec<LogRecord>> = (0..shards).map(|_| Vec::new()).collect();
                for r in records {
                    per_shard[shard_index(&r, shards)].push(r);
                }
                for (tx, batch) in txs.iter().zip(per_shard) {
                    if batch.is_empty() {
                        continue;
                    }
                    tx.send(Msg::Batch(batch))
                        .map_err(|_| ProvMLError::CollectorGone)?;
                }
            }
        }
        self.accepted.fetch_add(count, Ordering::Relaxed);
        Ok(())
    }

    /// Blocks until all records submitted so far are folded in.
    pub fn flush(&self) -> Result<(), ProvMLError> {
        match &self.inner {
            Inner::Sync(_) => Ok(()),
            Inner::Buffered { tx, .. } => {
                let (ack_tx, ack_rx) = unbounded();
                tx.send(Msg::Flush(ack_tx))
                    .map_err(|_| ProvMLError::CollectorGone)?;
                ack_rx.recv().map_err(|_| ProvMLError::CollectorGone)
            }
            Inner::Sharded { txs, .. } => {
                // Fan the barrier out first, then collect every ack.
                let mut acks = Vec::with_capacity(txs.len());
                for tx in txs {
                    let (ack_tx, ack_rx) = unbounded();
                    tx.send(Msg::Flush(ack_tx))
                        .map_err(|_| ProvMLError::CollectorGone)?;
                    acks.push(ack_rx);
                }
                for ack in acks {
                    ack.recv().map_err(|_| ProvMLError::CollectorGone)?;
                }
                Ok(())
            }
        }
    }

    /// A point-in-time clone of the folded state, without closing the
    /// collector — the delta-streaming path reads cumulative snapshots
    /// here while the run keeps logging.
    ///
    /// The snapshot reflects every record folded when the collector
    /// thread services the request; call [`Collector::flush`] first for
    /// a submit-side barrier. In sharded mode the per-shard snapshots
    /// merge in shard order, the same deterministic reduction `close`
    /// uses, so a snapshot taken after a flush equals what `close`
    /// would have returned at that instant.
    pub fn snapshot(&self) -> Result<RunState, ProvMLError> {
        match &self.inner {
            Inner::Sync(state) => Ok(state.lock().clone()),
            Inner::Buffered { tx, .. } => {
                let (out_tx, out_rx) = unbounded();
                tx.send(Msg::Snapshot(out_tx))
                    .map_err(|_| ProvMLError::CollectorGone)?;
                out_rx.recv().map_err(|_| ProvMLError::CollectorGone)
            }
            Inner::Sharded { txs, .. } => {
                let mut outs = Vec::with_capacity(txs.len());
                for tx in txs {
                    let (out_tx, out_rx) = unbounded();
                    tx.send(Msg::Snapshot(out_tx))
                        .map_err(|_| ProvMLError::CollectorGone)?;
                    outs.push(out_rx);
                }
                let mut state = RunState::default();
                for out in outs {
                    let shard_state = out.recv().map_err(|_| ProvMLError::CollectorGone)?;
                    state.merge(shard_state);
                }
                Ok(state)
            }
        }
    }

    /// Number of records accepted (submitted) so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Shuts the collector down and returns the final state.
    ///
    /// Idempotence: the first call wins; later calls (or logging after
    /// close, in buffered mode) report [`ProvMLError::CollectorGone`].
    pub fn close(&self) -> Result<RunState, ProvMLError> {
        match &self.inner {
            Inner::Sync(state) => Ok(std::mem::take(&mut *state.lock())),
            Inner::Buffered { tx, handle } => {
                let joined = handle.lock().take().ok_or(ProvMLError::CollectorGone)?;
                let (out_tx, out_rx) = unbounded();
                tx.send(Msg::Shutdown(out_tx))
                    .map_err(|_| ProvMLError::CollectorGone)?;
                let state = out_rx.recv().map_err(|_| ProvMLError::CollectorGone)?;
                joined.join().map_err(|_| ProvMLError::CollectorGone)?;
                Ok(state)
            }
            Inner::Sharded { txs, handles } => {
                let joined = handles.lock().take().ok_or(ProvMLError::CollectorGone)?;
                // All shards drain concurrently; the merge then runs in
                // shard order, which makes the reduction deterministic.
                let mut outs = Vec::with_capacity(txs.len());
                for tx in txs {
                    let (out_tx, out_rx) = unbounded();
                    tx.send(Msg::Shutdown(out_tx))
                        .map_err(|_| ProvMLError::CollectorGone)?;
                    outs.push(out_rx);
                }
                let merge = obs::global().histogram("yprov4ml_collector_merge_seconds");
                let mut state = RunState::default();
                for (shard, out) in outs.into_iter().enumerate() {
                    let shard_state = out.recv().map_err(|_| ProvMLError::CollectorGone)?;
                    let mut trace = obs::trace::span("collector_shard_merge");
                    if obs::trace::is_enabled() {
                        trace.annotate("shard", shard.to_string());
                    }
                    merge.time(|| state.merge(shard_state));
                }
                for h in joined {
                    h.join().map_err(|_| ProvMLError::CollectorGone)?;
                }
                Ok(state)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Context;

    fn metric(name: &str, step: u64, value: f64) -> LogRecord {
        LogRecord::Metric {
            name: name.into(),
            context: Context::Training,
            step,
            epoch: (step / 10) as u32,
            time_us: step as i64,
            value,
        }
    }

    #[test]
    fn sync_collector_folds_records() {
        let c = Collector::synchronous();
        c.log(LogRecord::Param {
            name: "lr".into(),
            value: ParamValue::Float(0.001),
            direction: Direction::Input,
        })
        .unwrap();
        for i in 0..100 {
            c.log(metric("loss", i, 1.0 / (i + 1) as f64)).unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.params.len(), 1);
        assert_eq!(state.metric_samples, 100);
        let series = &state.metrics[&("loss".to_string(), "training".to_string())];
        assert_eq!(series.len(), 100);
        assert_eq!(state.max_epoch["training"], 9);
    }

    #[test]
    fn buffered_collector_reaches_same_state_as_sync() {
        let records: Vec<LogRecord> = (0..1000).map(|i| metric("loss", i, i as f64)).collect();
        let sync = Collector::synchronous();
        let buf = Collector::buffered().unwrap();
        for r in &records {
            sync.log(r.clone()).unwrap();
            buf.log(r.clone()).unwrap();
        }
        assert_eq!(sync.close().unwrap(), buf.close().unwrap());
    }

    #[test]
    fn flush_makes_submissions_visible() {
        let c = Collector::buffered().unwrap();
        for i in 0..500 {
            c.log(metric("m", i, 0.0)).unwrap();
        }
        c.flush().unwrap();
        assert_eq!(c.accepted(), 500);
        let state = c.close().unwrap();
        assert_eq!(state.metric_samples, 500);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let c = Collector::buffered().unwrap();
        let mut handles = Vec::new();
        for rank in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.log(metric(&format!("rank{rank}"), i, i as f64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.metric_samples, 8000);
        for rank in 0..8 {
            let s = &state.metrics[&(format!("rank{rank}"), "training".to_string())];
            assert_eq!(s.len(), 1000);
            // Per-producer order is preserved by the channel.
            for (i, p) in s.points.iter().enumerate() {
                assert_eq!(p.step, i as u64);
            }
        }
    }

    #[test]
    fn snapshot_is_cumulative_and_leaves_the_collector_live() {
        for c in [
            Collector::synchronous(),
            Collector::buffered().unwrap(),
            Collector::sharded(3).unwrap(),
        ] {
            for i in 0..100 {
                c.log(metric(&format!("m{}", i % 5), i, i as f64)).unwrap();
            }
            c.flush().unwrap();
            let early = c.snapshot().unwrap();
            assert_eq!(early.metric_samples, 100);
            for i in 100..250 {
                c.log(metric(&format!("m{}", i % 5), i, i as f64)).unwrap();
            }
            c.flush().unwrap();
            let late = c.snapshot().unwrap();
            assert_eq!(late.metric_samples, 250);
            // The snapshot never drained anything: close sees it all.
            assert_eq!(c.close().unwrap(), late);
        }
    }

    #[test]
    fn double_close_errors() {
        let c = Collector::buffered().unwrap();
        c.log(metric("m", 0, 1.0)).unwrap();
        assert!(c.close().is_ok());
        assert!(matches!(c.close(), Err(ProvMLError::CollectorGone)));
        assert!(matches!(
            c.log(metric("m", 1, 1.0)),
            Err(ProvMLError::CollectorGone)
        ));
    }

    #[test]
    fn context_spans_recorded() {
        let c = Collector::synchronous();
        c.log(LogRecord::ContextStart {
            context: Context::Training,
            time_us: 100,
        })
        .unwrap();
        c.log(LogRecord::ContextEnd {
            context: Context::Training,
            time_us: 900,
        })
        .unwrap();
        let state = c.close().unwrap();
        assert_eq!(state.context_spans["training"], (Some(100), Some(900)));
        assert_eq!(state.context_names(), vec!["training"]);
    }

    #[test]
    fn sharded_close_equals_sync_state_on_concurrent_producers() {
        // Non-metric records go in deterministically from this thread;
        // 8 producers then log disjoint metric names concurrently.
        let fixed: Vec<LogRecord> = vec![
            LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(0.1),
                direction: Direction::Input,
            },
            LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(0.01),
                direction: Direction::Input,
            },
            LogRecord::ContextStart {
                context: Context::Training,
                time_us: 5,
            },
        ];
        let reference = Collector::synchronous();
        let sharded = Collector::sharded(4).unwrap();
        for r in &fixed {
            reference.log(r.clone()).unwrap();
            sharded.log(r.clone()).unwrap();
        }
        for rank in 0..8u64 {
            for i in 0..500 {
                reference
                    .log(metric(&format!("rank{rank}"), i, i as f64))
                    .unwrap();
            }
        }
        let mut handles = Vec::new();
        for rank in 0..8u64 {
            let c = Arc::clone(&sharded);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    c.log(metric(&format!("rank{rank}"), i, i as f64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let end = LogRecord::ContextEnd {
            context: Context::Training,
            time_us: 999,
        };
        reference.log(end.clone()).unwrap();
        sharded.log(end).unwrap();
        assert_eq!(sharded.accepted(), reference.accepted());
        assert_eq!(sharded.close().unwrap(), reference.close().unwrap());
    }

    #[test]
    fn log_many_reaches_same_state_as_individual_logs() {
        let records: Vec<LogRecord> = (0..300)
            .flat_map(|i| {
                ["loss", "accuracy", "power"]
                    .into_iter()
                    .map(move |m| metric(m, i, i as f64))
            })
            .collect();
        let reference = Collector::synchronous();
        for r in &records {
            reference.log(r.clone()).unwrap();
        }
        let expected = reference.close().unwrap();

        for collector in [
            Collector::synchronous(),
            Collector::buffered().unwrap(),
            Collector::sharded(3).unwrap(),
        ] {
            collector.log_many(records.clone()).unwrap();
            collector.log_many(Vec::new()).unwrap();
            assert_eq!(collector.accepted(), records.len());
            assert_eq!(collector.close().unwrap(), expected);
        }
    }

    #[test]
    fn rejected_records_are_not_counted_as_accepted() {
        let c = Collector::buffered().unwrap();
        c.log(metric("m", 0, 1.0)).unwrap();
        c.close().unwrap();
        assert!(c.log(metric("m", 1, 1.0)).is_err());
        assert!(c.log_many(vec![metric("m", 2, 1.0)]).is_err());
        assert_eq!(c.accepted(), 1, "rejected records must not count");
    }

    #[test]
    fn sharded_flush_makes_submissions_visible() {
        let c = Collector::sharded(4).unwrap();
        for i in 0..500 {
            c.log(metric(&format!("m{}", i % 7), i, 0.0)).unwrap();
        }
        c.flush().unwrap();
        assert_eq!(c.accepted(), 500);
        let state = c.close().unwrap();
        assert_eq!(state.metric_samples, 500);
        assert!(matches!(c.close(), Err(ProvMLError::CollectorGone)));
    }

    #[test]
    fn single_shard_falls_back_to_buffered() {
        let c = Collector::sharded(1).unwrap();
        for i in 0..100 {
            c.log(metric("loss", i, i as f64)).unwrap();
        }
        assert_eq!(c.close().unwrap().metric_samples, 100);
    }

    #[test]
    fn merge_combines_disjoint_states() {
        let a = Collector::synchronous();
        a.log(metric("loss", 0, 1.0)).unwrap();
        a.log(LogRecord::ContextStart {
            context: Context::Training,
            time_us: 10,
        })
        .unwrap();
        let b = Collector::synchronous();
        b.log(LogRecord::Metric {
            name: "power".into(),
            context: Context::Training,
            step: 0,
            epoch: 7,
            time_us: 0,
            value: 250.0,
        })
        .unwrap();
        b.log(LogRecord::ContextEnd {
            context: Context::Training,
            time_us: 90,
        })
        .unwrap();
        let mut merged = a.close().unwrap();
        merged.merge(b.close().unwrap());
        assert_eq!(merged.metric_samples, 2);
        assert_eq!(merged.metrics.len(), 2);
        assert_eq!(merged.max_epoch["training"], 7);
        assert_eq!(merged.context_spans["training"], (Some(10), Some(90)));
    }

    #[test]
    fn param_override_keeps_latest() {
        let c = Collector::synchronous();
        for v in [1.0, 2.0, 3.0] {
            c.log(LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(v),
                direction: Direction::Input,
            })
            .unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.params["lr"].0, ParamValue::Float(3.0));
    }
}
