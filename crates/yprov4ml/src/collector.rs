//! The concurrent log collector.
//!
//! Logging must never stall the training loop (the paper's "minimal
//! overhead" requirement), so the default collector pushes records onto
//! an unbounded lock-free channel drained by a background thread that
//! folds them into the run state. A synchronous mode (mutex around the
//! state) exists for tests and for workloads where determinism matters
//! more than latency; the overhead benchmark (E7) compares the two.

use crate::error::ProvMLError;
use crate::model::{ArtifactMeta, Direction, LogRecord, ParamValue};
use crossbeam::channel::{unbounded, Sender};
use metric_store::series::{MetricPoint, MetricSeries};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Aggregated state of one run, built from the record stream.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunState {
    /// Parameters (later same-name records override earlier ones).
    pub params: BTreeMap<String, (ParamValue, Direction)>,
    /// Metric series keyed by `(metric name, context name)`.
    pub metrics: BTreeMap<(String, String), MetricSeries>,
    /// Logged artifacts.
    pub artifacts: Vec<ArtifactMeta>,
    /// Observed context spans: name → (first start µs, last end µs).
    pub context_spans: BTreeMap<String, (Option<i64>, Option<i64>)>,
    /// Highest epoch seen per context.
    pub max_epoch: BTreeMap<String, u32>,
    /// Total metric samples folded in.
    pub metric_samples: usize,
}

impl RunState {
    /// Folds one record into the state.
    pub fn apply(&mut self, record: LogRecord) {
        match record {
            LogRecord::Param { name, value, direction } => {
                self.params.insert(name, (value, direction));
            }
            LogRecord::Metric { name, context, step, epoch, time_us, value } => {
                let ctx_name = context.name();
                let key = (name.clone(), ctx_name.clone());
                let series = self
                    .metrics
                    .entry(key)
                    .or_insert_with(|| MetricSeries::new(name, ctx_name.clone()));
                series.push(MetricPoint { step, epoch, time_us, value });
                let slot = self.max_epoch.entry(ctx_name).or_insert(0);
                *slot = (*slot).max(epoch);
                self.metric_samples += 1;
            }
            LogRecord::Artifact(meta) => self.artifacts.push(meta),
            LogRecord::ContextStart { context, time_us } => {
                let span = self
                    .context_spans
                    .entry(context.name())
                    .or_insert((None, None));
                if span.0.is_none() {
                    span.0 = Some(time_us);
                }
            }
            LogRecord::ContextEnd { context, time_us } => {
                let span = self
                    .context_spans
                    .entry(context.name())
                    .or_insert((None, None));
                span.1 = Some(time_us);
            }
        }
    }

    /// Names of contexts that logged anything.
    pub fn context_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .metrics
            .keys()
            .map(|(_, c)| c.clone())
            .chain(self.context_spans.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }
}

enum Msg {
    Record(Box<LogRecord>),
    Flush(Sender<()>),
    /// Final message: fold nothing more, ship the state back and exit.
    Shutdown(Sender<RunState>),
}

enum Inner {
    Sync(Mutex<RunState>),
    Buffered {
        tx: Sender<Msg>,
        handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    },
}

/// The collector: accepts records from any thread and folds them into a
/// [`RunState`]. Shared behind an `Arc`; all methods take `&self`.
pub struct Collector {
    inner: Inner,
    accepted: AtomicUsize,
}

impl Collector {
    /// A synchronous collector (records folded inline under a mutex).
    pub fn synchronous() -> Arc<Self> {
        Arc::new(Collector {
            inner: Inner::Sync(Mutex::new(RunState::default())),
            accepted: AtomicUsize::new(0),
        })
    }

    /// A buffered collector with a background folding thread.
    ///
    /// Errors if the OS refuses to spawn the thread (resource
    /// exhaustion) — a library should report that, not panic.
    pub fn buffered() -> Result<Arc<Self>, ProvMLError> {
        let (tx, rx) = unbounded::<Msg>();
        let handle = std::thread::Builder::new()
            .name("yprov4ml-collector".into())
            .spawn(move || {
                let mut state = RunState::default();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Record(r) => state.apply(*r),
                        Msg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                        Msg::Shutdown(out) => {
                            let _ = out.send(std::mem::take(&mut state));
                            return;
                        }
                    }
                }
            })?;
        Ok(Arc::new(Collector {
            inner: Inner::Buffered { tx, handle: Mutex::new(Some(handle)) },
            accepted: AtomicUsize::new(0),
        }))
    }

    /// Submits a record. Non-blocking in buffered mode.
    pub fn log(&self, record: LogRecord) -> Result<(), ProvMLError> {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        match &self.inner {
            Inner::Sync(state) => {
                state.lock().apply(record);
                Ok(())
            }
            Inner::Buffered { tx, .. } => tx
                .send(Msg::Record(Box::new(record)))
                .map_err(|_| ProvMLError::CollectorGone),
        }
    }

    /// Blocks until all records submitted so far are folded in.
    pub fn flush(&self) -> Result<(), ProvMLError> {
        match &self.inner {
            Inner::Sync(_) => Ok(()),
            Inner::Buffered { tx, .. } => {
                let (ack_tx, ack_rx) = unbounded();
                tx.send(Msg::Flush(ack_tx))
                    .map_err(|_| ProvMLError::CollectorGone)?;
                ack_rx.recv().map_err(|_| ProvMLError::CollectorGone)
            }
        }
    }

    /// Number of records accepted (submitted) so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Shuts the collector down and returns the final state.
    ///
    /// Idempotence: the first call wins; later calls (or logging after
    /// close, in buffered mode) report [`ProvMLError::CollectorGone`].
    pub fn close(&self) -> Result<RunState, ProvMLError> {
        match &self.inner {
            Inner::Sync(state) => Ok(std::mem::take(&mut *state.lock())),
            Inner::Buffered { tx, handle } => {
                let joined = handle.lock().take().ok_or(ProvMLError::CollectorGone)?;
                let (out_tx, out_rx) = unbounded();
                tx.send(Msg::Shutdown(out_tx))
                    .map_err(|_| ProvMLError::CollectorGone)?;
                let state = out_rx.recv().map_err(|_| ProvMLError::CollectorGone)?;
                joined.join().map_err(|_| ProvMLError::CollectorGone)?;
                Ok(state)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Context;

    fn metric(name: &str, step: u64, value: f64) -> LogRecord {
        LogRecord::Metric {
            name: name.into(),
            context: Context::Training,
            step,
            epoch: (step / 10) as u32,
            time_us: step as i64,
            value,
        }
    }

    #[test]
    fn sync_collector_folds_records() {
        let c = Collector::synchronous();
        c.log(LogRecord::Param {
            name: "lr".into(),
            value: ParamValue::Float(0.001),
            direction: Direction::Input,
        })
        .unwrap();
        for i in 0..100 {
            c.log(metric("loss", i, 1.0 / (i + 1) as f64)).unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.params.len(), 1);
        assert_eq!(state.metric_samples, 100);
        let series = &state.metrics[&("loss".to_string(), "training".to_string())];
        assert_eq!(series.len(), 100);
        assert_eq!(state.max_epoch["training"], 9);
    }

    #[test]
    fn buffered_collector_reaches_same_state_as_sync() {
        let records: Vec<LogRecord> = (0..1000).map(|i| metric("loss", i, i as f64)).collect();
        let sync = Collector::synchronous();
        let buf = Collector::buffered().unwrap();
        for r in &records {
            sync.log(r.clone()).unwrap();
            buf.log(r.clone()).unwrap();
        }
        assert_eq!(sync.close().unwrap(), buf.close().unwrap());
    }

    #[test]
    fn flush_makes_submissions_visible() {
        let c = Collector::buffered().unwrap();
        for i in 0..500 {
            c.log(metric("m", i, 0.0)).unwrap();
        }
        c.flush().unwrap();
        assert_eq!(c.accepted(), 500);
        let state = c.close().unwrap();
        assert_eq!(state.metric_samples, 500);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let c = Collector::buffered().unwrap();
        let mut handles = Vec::new();
        for rank in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    c.log(metric(&format!("rank{rank}"), i, i as f64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.metric_samples, 8000);
        for rank in 0..8 {
            let s = &state.metrics[&(format!("rank{rank}"), "training".to_string())];
            assert_eq!(s.len(), 1000);
            // Per-producer order is preserved by the channel.
            for (i, p) in s.points.iter().enumerate() {
                assert_eq!(p.step, i as u64);
            }
        }
    }

    #[test]
    fn double_close_errors() {
        let c = Collector::buffered().unwrap();
        c.log(metric("m", 0, 1.0)).unwrap();
        assert!(c.close().is_ok());
        assert!(matches!(c.close(), Err(ProvMLError::CollectorGone)));
        assert!(matches!(c.log(metric("m", 1, 1.0)), Err(ProvMLError::CollectorGone)));
    }

    #[test]
    fn context_spans_recorded() {
        let c = Collector::synchronous();
        c.log(LogRecord::ContextStart { context: Context::Training, time_us: 100 })
            .unwrap();
        c.log(LogRecord::ContextEnd { context: Context::Training, time_us: 900 })
            .unwrap();
        let state = c.close().unwrap();
        assert_eq!(state.context_spans["training"], (Some(100), Some(900)));
        assert_eq!(state.context_names(), vec!["training"]);
    }

    #[test]
    fn param_override_keeps_latest() {
        let c = Collector::synchronous();
        for v in [1.0, 2.0, 3.0] {
            c.log(LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(v),
                direction: Direction::Input,
            })
            .unwrap();
        }
        let state = c.close().unwrap();
        assert_eq!(state.params["lr"].0, ParamValue::Float(3.0));
    }
}
