//! Write-ahead journal and crash recovery.
//!
//! Provenance whose collection dies with the job is worth little — the
//! runs most in need of auditing are the ones that crashed (§3.1, and
//! the trustworthy-provenance direction of §4). With journaling enabled
//! ([`crate::run::RunOptions::journal`]), every [`LogRecord`] is
//! appended to `journal.jsonl` in the run directory *before* it enters
//! the in-memory collector. [`recover`] rebuilds the run state from
//! that journal and writes the provenance files a crashed process never
//! got to write.
//!
//! Format (version 2): line 1 is a JSON header (`experiment`, `run`,
//! `user`, `started_us`, `version`); every further line is one
//! serialized [`LogRecord`] framed as `crc32_hex<space>json`, where the
//! CRC-32 (IEEE, [`crate::crc32`]) covers the JSON bytes. Torn or
//! bit-flipped lines — the usual crash artifacts — fail the CRC and are
//! skipped with a count, never an error. Version-1 journals (plain JSON
//! lines, no CRC) are still read.
//!
//! Durability is configurable through [`SyncPolicy`] (fsync every
//! record, every N records, or only on explicit flush) and long runs can
//! rotate into bounded segments (`journal.0001.jsonl`, ...) via
//! [`JournalConfig::rotate_bytes`]. [`JournalMode`] governs what happens
//! when a journal already exists: the default refuses rather than
//! silently truncating a previous run's crash evidence.

use crate::collector::RunState;
use crate::crc32::crc32;
use crate::error::ProvMLError;
use crate::model::{LogRecord, RunReport, RunStatus};
use crate::prov_emit::{build_document, RunIdentity};
use crate::spill::{spill_metrics, SpillPolicy};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};

/// File name of the journal (segment 0) inside a run directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Current journal format version (CRC-framed records).
pub const JOURNAL_VERSION: u32 = 2;

/// File name of rotation segment `segment` (0 is [`JOURNAL_FILE`]).
pub fn segment_file_name(segment: u32) -> String {
    if segment == 0 {
        JOURNAL_FILE.to_string()
    } else {
        format!("journal.{segment:04}.jsonl")
    }
}

/// The journal header (first line of every segment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version.
    pub version: u32,
    /// Experiment name.
    pub experiment: String,
    /// Run name.
    pub run: String,
    /// Responsible user.
    pub user: String,
    /// Run start, µs since the epoch.
    pub started_us: i64,
}

impl JournalHeader {
    /// A header stamped with the current [`JOURNAL_VERSION`].
    pub fn new(experiment: &str, run: &str, user: &str, started_us: i64) -> Self {
        JournalHeader {
            version: JOURNAL_VERSION,
            experiment: experiment.to_string(),
            run: run.to_string(),
            user: user.to_string(),
            started_us,
        }
    }
}

/// When the journal file is fsynced to stable storage.
///
/// `BufWriter` flushing alone leaves data in the OS page cache; only
/// `fsync` survives power loss. `Always` is the durability of a classic
/// database WAL, `EveryN` bounds the loss window to N records at a
/// fraction of the cost, `OnFlush` trusts the OS (crash of the process
/// alone still loses nothing, since the write goes through before the
/// record is acknowledged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every record.
    Always,
    /// fsync after every N records (N is clamped to at least 1).
    EveryN(u32),
    /// fsync only on explicit [`JournalWriter::flush`] / close.
    OnFlush,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::EveryN(64)
    }
}

/// What to do when a journal already exists in the run directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JournalMode {
    /// Refuse with [`ProvMLError::JournalExists`] — never silently
    /// destroy the crash evidence of a previous run.
    #[default]
    FailIfExists,
    /// Truncate the existing journal (and remove stale rotation
    /// segments) and start over.
    Overwrite,
    /// Append to the existing journal's highest segment, keeping its
    /// on-disk header (and therefore its format version).
    Resume,
}

/// Durability and rotation knobs for [`JournalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JournalConfig {
    /// fsync cadence.
    pub sync: SyncPolicy,
    /// Behaviour when a journal already exists.
    pub mode: JournalMode,
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (`None` = never rotate).
    pub rotate_bytes: Option<u64>,
}

struct WriterState {
    file: BufWriter<File>,
    segment: u32,
    segment_bytes: u64,
    unsynced: u32,
    /// Records are CRC-framed iff the governing header is version ≥ 2
    /// (resuming a v1 journal keeps writing v1 lines so the reader sees
    /// one consistent format).
    crc_framed: bool,
}

/// An append-only journal writer shared across logging threads.
pub struct JournalWriter {
    inner: Mutex<WriterState>,
    dir: PathBuf,
    path0: PathBuf,
    config: JournalConfig,
    header_line: String,
    /// Full append latency (serialize + write + any fsync).
    append_hist: std::sync::Arc<obs::Histogram>,
    /// fsync latency alone, the dominant durability cost.
    fsync_hist: std::sync::Arc<obs::Histogram>,
}

/// Best-effort directory fsync so a freshly created file's name entry
/// survives power loss (a no-op where directories cannot be opened).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Writes the header line into a fresh segment file and fsyncs it.
fn init_segment(file: File, header_line: &str) -> std::io::Result<(BufWriter<File>, u64)> {
    let mut w = BufWriter::new(file);
    w.write_all(header_line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()?;
    w.get_ref().sync_all()?;
    Ok((w, header_line.len() as u64 + 1))
}

impl JournalWriter {
    /// Creates the journal with the default [`JournalConfig`] (refuse if
    /// one exists, fsync every 64 records, no rotation).
    pub fn create(run_dir: &Path, header: &JournalHeader) -> Result<Self, ProvMLError> {
        Self::create_with(run_dir, header, JournalConfig::default())
    }

    /// Creates (or resumes) the journal under an explicit config.
    ///
    /// The header written to disk is stamped with [`JOURNAL_VERSION`]
    /// regardless of `header.version`; in `Resume` mode the existing
    /// on-disk header wins, so mixed-version segments never occur.
    pub fn create_with(
        run_dir: &Path,
        header: &JournalHeader,
        config: JournalConfig,
    ) -> Result<Self, ProvMLError> {
        let path0 = run_dir.join(JOURNAL_FILE);
        let mut stamped = header.clone();
        stamped.version = JOURNAL_VERSION;
        let fresh_line = serde_json::to_string(&stamped).map_err(metric_store::StoreError::Json)?;

        let (state, header_line) = match config.mode {
            JournalMode::FailIfExists => {
                let file = OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(&path0)
                    .map_err(|e| {
                        if e.kind() == std::io::ErrorKind::AlreadyExists {
                            ProvMLError::JournalExists(path0.clone())
                        } else {
                            ProvMLError::Io(e)
                        }
                    })?;
                let (file, bytes) = init_segment(file, &fresh_line)?;
                (
                    WriterState {
                        file,
                        segment: 0,
                        segment_bytes: bytes,
                        unsynced: 0,
                        crc_framed: true,
                    },
                    fresh_line,
                )
            }
            JournalMode::Overwrite => {
                // Remove stale rotation segments so a later recovery
                // cannot mix records from two different runs.
                let mut seg = 1u32;
                while run_dir.join(segment_file_name(seg)).exists() {
                    std::fs::remove_file(run_dir.join(segment_file_name(seg)))?;
                    seg += 1;
                }
                let (file, bytes) = init_segment(File::create(&path0)?, &fresh_line)?;
                (
                    WriterState {
                        file,
                        segment: 0,
                        segment_bytes: bytes,
                        unsynced: 0,
                        crc_framed: true,
                    },
                    fresh_line,
                )
            }
            JournalMode::Resume => {
                if !path0.exists() {
                    let (file, bytes) = init_segment(File::create(&path0)?, &fresh_line)?;
                    (
                        WriterState {
                            file,
                            segment: 0,
                            segment_bytes: bytes,
                            unsynced: 0,
                            crc_framed: true,
                        },
                        fresh_line,
                    )
                } else {
                    let mut first = String::new();
                    BufReader::new(File::open(&path0)?).read_line(&mut first)?;
                    let disk_header: JournalHeader = serde_json::from_str(first.trim_end())
                        .map_err(|e| {
                            ProvMLError::Journal(format!(
                                "{}: unreadable header, cannot resume: {e}",
                                path0.display()
                            ))
                        })?;
                    let mut segment = 0u32;
                    while run_dir.join(segment_file_name(segment + 1)).exists() {
                        segment += 1;
                    }
                    let file = OpenOptions::new()
                        .append(true)
                        .open(run_dir.join(segment_file_name(segment)))?;
                    let segment_bytes = file.metadata()?.len();
                    (
                        WriterState {
                            file: BufWriter::new(file),
                            segment,
                            segment_bytes,
                            unsynced: 0,
                            crc_framed: disk_header.version >= 2,
                        },
                        first.trim_end().to_string(),
                    )
                }
            }
        };

        sync_dir(run_dir)?;
        Ok(JournalWriter {
            inner: Mutex::new(state),
            dir: run_dir.to_path_buf(),
            path0,
            config,
            header_line,
            append_hist: obs::global().histogram("yprov4ml_journal_append_seconds"),
            fsync_hist: obs::global().histogram("yprov4ml_journal_fsync_seconds"),
        })
    }

    fn rotate(&self, st: &mut WriterState) -> Result<(), ProvMLError> {
        st.file.flush()?;
        st.file.get_ref().sync_all()?;
        let segment = st.segment + 1;
        let path = self.dir.join(segment_file_name(segment));
        let (file, bytes) = init_segment(File::create(&path)?, &self.header_line)?;
        sync_dir(&self.dir)?;
        st.file = file;
        st.segment = segment;
        st.segment_bytes = bytes;
        st.unsynced = 0;
        Ok(())
    }

    /// Appends one record. The line is always flushed to the OS before
    /// returning (a process crash loses at most the in-flight line);
    /// whether it is also fsynced is governed by [`SyncPolicy`].
    pub fn append(&self, record: &LogRecord) -> Result<(), ProvMLError> {
        let _span = self.append_hist.start_span();
        let json = serde_json::to_vec(record).map_err(metric_store::StoreError::Json)?;
        let mut st = self.inner.lock();
        if let Some(limit) = self.config.rotate_bytes {
            if st.segment_bytes >= limit {
                self.rotate(&mut st)?;
            }
        }
        let mut written = json.len() as u64 + 1;
        if st.crc_framed {
            let prefix = format!("{:08x} ", crc32(&json));
            st.file.write_all(prefix.as_bytes())?;
            written += prefix.len() as u64;
        }
        st.file.write_all(&json)?;
        st.file.write_all(b"\n")?;
        st.file.flush()?;
        st.segment_bytes += written;
        match self.config.sync {
            SyncPolicy::Always => {
                self.fsync_hist.time(|| st.file.get_ref().sync_all())?;
                st.unsynced = 0;
            }
            SyncPolicy::EveryN(n) => {
                st.unsynced += 1;
                if st.unsynced >= n.max(1) {
                    self.fsync_hist.time(|| st.file.get_ref().sync_all())?;
                    st.unsynced = 0;
                }
            }
            SyncPolicy::OnFlush => {}
        }
        Ok(())
    }

    /// Flushes and fsyncs everything written so far.
    pub fn flush(&self) -> Result<(), ProvMLError> {
        let mut st = self.inner.lock();
        st.file.flush()?;
        self.fsync_hist.time(|| st.file.get_ref().sync_all())?;
        st.unsynced = 0;
        Ok(())
    }

    /// Closes the journal: flush, fsync the file, fsync the directory.
    pub fn close(self) -> Result<(), ProvMLError> {
        let mut st = self.inner.into_inner();
        st.file.flush()?;
        st.file.get_ref().sync_all()?;
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// The path of segment 0 (`journal.jsonl`).
    pub fn path(&self) -> &Path {
        &self.path0
    }
}

/// Result of reading a journal back.
#[derive(Debug)]
pub struct JournalReplay {
    /// The parsed header (segment 0's).
    pub header: JournalHeader,
    /// The reconstructed run state.
    pub state: RunState,
    /// Number of complete records recovered.
    pub records: usize,
    /// Number of torn/corrupt lines skipped (normally 0 or 1).
    pub skipped: usize,
    /// Number of segment files read.
    pub segments: usize,
}

/// Parses a CRC-framed record line; `None` on any framing or checksum
/// failure (the caller counts it as skipped).
fn parse_framed(chunk: &[u8]) -> Option<LogRecord> {
    if chunk.len() < 10 {
        return None;
    }
    let (crc_hex, rest) = chunk.split_at(8);
    if rest[0] != b' ' {
        return None;
    }
    let stored = u32::from_str_radix(std::str::from_utf8(crc_hex).ok()?, 16).ok()?;
    let json = &rest[1..];
    if crc32(json) != stored {
        return None;
    }
    serde_json::from_slice(json).ok()
}

/// Reads a journal (all rotation segments, in order) into a
/// [`JournalReplay`].
///
/// Only *structural* problems error (segment 0 missing, an unparseable
/// header, a continuation segment from a different run); torn or
/// corrupt record lines are skipped with a count. The byte-level reader
/// (`split`, not `lines`) tolerates invalid UTF-8 from flipped bytes.
pub fn read_journal(run_dir: &Path) -> Result<JournalReplay, ProvMLError> {
    let mut state = RunState::default();
    let mut records = 0usize;
    let mut skipped = 0usize;
    let mut header: Option<JournalHeader> = None;
    let mut segments = 0usize;

    loop {
        let path = run_dir.join(segment_file_name(segments as u32));
        if segments > 0 && !path.exists() {
            break;
        }
        let file = File::open(&path)?;
        let mut chunks = BufReader::new(file).split(b'\n');

        let header_bytes = chunks
            .next()
            .ok_or_else(|| ProvMLError::Journal(format!("{}: empty journal", path.display())))??;
        let seg_header: JournalHeader =
            serde_json::from_slice(&header_bytes).map_err(metric_store::StoreError::Json)?;
        match &header {
            None => header = Some(seg_header),
            Some(h) => {
                if h.experiment != seg_header.experiment || h.run != seg_header.run {
                    return Err(ProvMLError::Journal(format!(
                        "{}: segment header names run {:?}/{:?}, expected {:?}/{:?}",
                        path.display(),
                        seg_header.experiment,
                        seg_header.run,
                        h.experiment,
                        h.run
                    )));
                }
            }
        }
        let crc_framed = header.as_ref().expect("just set").version >= 2;

        for chunk in chunks {
            let chunk = chunk?;
            if chunk.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            let parsed = if crc_framed {
                parse_framed(&chunk)
            } else {
                serde_json::from_slice::<LogRecord>(&chunk).ok()
            };
            match parsed {
                Some(record) => {
                    state.apply(record);
                    records += 1;
                }
                None => skipped += 1, // torn or corrupt — count, never fail
            }
        }
        segments += 1;
    }

    Ok(JournalReplay {
        header: header.expect("segment 0 was read"),
        state,
        records,
        skipped,
        segments,
    })
}

/// What [`recover_detailed`] found in the journal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryReport {
    /// Complete records replayed.
    pub records: usize,
    /// Torn/corrupt lines skipped.
    pub skipped: usize,
    /// Segment files read.
    pub segments: usize,
    /// Parameters reconstructed.
    pub params: usize,
    /// Metric samples reconstructed.
    pub metric_samples: usize,
    /// Artifacts reconstructed.
    pub artifacts: usize,
    /// Artifacts whose stored file no longer exists — invalidated by the
    /// crash in the emitted provenance.
    pub orphaned_artifacts: Vec<String>,
}

/// Recovers a crashed run: rebuilds its state from the journal, spills
/// metrics per `spill`, and writes `prov.json` / `prov.provn` marked
/// with `yprov4ml:status = "recovered"`.
///
/// The emitted document records the failure itself: a `yprov4ml:Crash`
/// activity informed by the run, a `yprov4ml:Recovery` activity informed
/// by the crash, and a `wasInvalidatedBy` edge from every artifact whose
/// stored file did not survive.
pub fn recover_detailed(
    run_dir: &Path,
    spill: &SpillPolicy,
) -> Result<(RunReport, RecoveryReport), ProvMLError> {
    let replay = read_journal(run_dir)?;
    let state = replay.state;

    let series: Vec<&metric_store::series::MetricSeries> = state.metrics.values().collect();
    let outcome = spill_metrics(run_dir, spill, &series)?;

    // End time: the latest timestamp the journal saw.
    let ended_us = state
        .metrics
        .values()
        .filter_map(|s| s.points.last().map(|p| p.time_us))
        .chain(state.artifacts.iter().map(|a| a.logged_at_us))
        .max()
        .unwrap_or(replay.header.started_us);

    let identity = RunIdentity {
        experiment: replay.header.experiment.clone(),
        run: replay.header.run.clone(),
        user: replay.header.user.clone(),
        started_us: replay.header.started_us,
        ended_us,
    };
    let mut doc = build_document(&identity, &state, &outcome, spill.is_inline());
    let run_q = prov_model::QName::new("exp", replay.header.run.clone());
    let crash_q = prov_model::QName::new("exp", format!("{}/crash", replay.header.run));
    let recovery_q = prov_model::QName::new("exp", format!("{}/recovery", replay.header.run));

    doc.activity(run_q.clone())
        .attr(
            prov_model::QName::yprov("status"),
            prov_model::AttrValue::from("recovered"),
        )
        .attr(
            prov_model::QName::yprov("journal_records"),
            prov_model::AttrValue::Int(replay.records as i64),
        )
        .attr(
            prov_model::QName::yprov("journal_skipped"),
            prov_model::AttrValue::Int(replay.skipped as i64),
        );

    doc.activity(crash_q.clone())
        .prov_type(prov_model::QName::yprov("Crash"))
        .label(format!("crash of {}", replay.header.run))
        .start_time(prov_model::XsdDateTime::from_epoch_micros(ended_us));
    doc.was_informed_by(crash_q.clone(), run_q);

    doc.activity(recovery_q.clone())
        .prov_type(prov_model::QName::yprov("Recovery"))
        .label(format!("journal recovery of {}", replay.header.run))
        .attr(
            prov_model::QName::yprov("journal_segments"),
            prov_model::AttrValue::Int(replay.segments as i64),
        );
    doc.was_informed_by(recovery_q, crash_q.clone());

    let mut orphaned_artifacts = Vec::new();
    for artifact in &state.artifacts {
        if !artifact.stored_path.is_file() {
            let entity = prov_model::QName::new(
                "exp",
                format!("{}/artifact/{}", replay.header.run, artifact.name),
            );
            doc.add_relation(prov_model::Relation::new(
                prov_model::RelationKind::WasInvalidatedBy,
                entity,
                crash_q.clone(),
            ));
            orphaned_artifacts.push(artifact.name.clone());
        }
    }

    // Flight recorder: when tracing is live, dump the surviving span
    // rings next to the recovered provenance and link the dump into
    // the document as evidence generated by the crash. Gated on the
    // tracing flag so a disabled run's output stays byte-identical.
    if obs::trace::is_enabled() {
        let trace_path = run_dir.join("trace_crash.json");
        let spans = obs::trace::dump_flight_recorder(&trace_path)?;
        let trace_q = prov_model::QName::new("exp", format!("{}/trace_crash", replay.header.run));
        doc.entity(trace_q.clone())
            .prov_type(prov_model::QName::yprov("trace"))
            .label(format!("crash flight recorder of {}", replay.header.run))
            .attr(
                prov_model::QName::yprov("file_path"),
                prov_model::AttrValue::from(trace_path.display().to_string()),
            )
            .attr(
                prov_model::QName::yprov("spans"),
                prov_model::AttrValue::Int(spans as i64),
            );
        doc.was_generated_by(trace_q, crash_q.clone());
    }

    let prov_json_path = run_dir.join("prov.json");
    let provn_path = run_dir.join("prov.provn");
    // Same streaming writer the normal finalize path uses; the bytes
    // are identical to the old to_json_string_pretty route.
    crate::prov_emit::write_prov_files(&doc, &prov_json_path, &provn_path)?;

    let report = RunReport {
        experiment: replay.header.experiment,
        run: replay.header.run,
        status: RunStatus::Recovered,
        prov_json_bytes: std::fs::metadata(&prov_json_path)?.len(),
        prov_json_path,
        provn_path,
        metric_store_path: outcome.store_path,
        params: state.params.len(),
        metric_samples: state.metric_samples,
        artifacts: state.artifacts.len(),
    };
    let recovery = RecoveryReport {
        records: replay.records,
        skipped: replay.skipped,
        segments: replay.segments,
        params: report.params,
        metric_samples: report.metric_samples,
        artifacts: report.artifacts,
        orphaned_artifacts,
    };
    Ok((report, recovery))
}

/// [`recover_detailed`] without the [`RecoveryReport`].
pub fn recover(run_dir: &Path, spill: &SpillPolicy) -> Result<RunReport, ProvMLError> {
    recover_detailed(run_dir, spill).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Context, Direction, ParamValue};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yjournal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn header() -> JournalHeader {
        JournalHeader::new("exp", "crashed-run", "tester", 1_000)
    }

    fn metric(i: u64) -> LogRecord {
        LogRecord::Metric {
            name: "loss".into(),
            context: Context::Training,
            step: i,
            epoch: 0,
            time_us: 1_000 + i as i64,
            value: 1.0 / (i + 1) as f64,
        }
    }

    fn write_records_with(dir: &Path, n: u64, config: JournalConfig) {
        let writer = JournalWriter::create_with(dir, &header(), config).unwrap();
        writer
            .append(&LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(0.01),
                direction: Direction::Input,
            })
            .unwrap();
        for i in 0..n {
            writer.append(&metric(i)).unwrap();
        }
        writer.close().unwrap();
    }

    fn write_records(dir: &Path, n: u64) {
        write_records_with(dir, n, JournalConfig::default());
    }

    #[test]
    fn journal_roundtrips() {
        let dir = tmp("roundtrip");
        write_records(&dir, 100);
        let replay = read_journal(&dir).unwrap();
        let mut expect = header();
        expect.version = JOURNAL_VERSION;
        assert_eq!(replay.header, expect);
        assert_eq!(replay.records, 101);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.segments, 1);
        assert_eq!(replay.state.metric_samples, 100);
        assert_eq!(replay.state.params.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped() {
        let dir = tmp("torn");
        write_records(&dir, 50);
        // Simulate a crash mid-write: append half a record.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(b"{\"Metric\":{\"name\":\"loss\",\"conte")
            .unwrap();
        drop(f);

        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.records, 51);
        assert_eq!(replay.skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_byte_fails_crc_and_is_skipped() {
        let dir = tmp("bitflip");
        write_records(&dir, 20);
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the JSON of some middle record (well past
        // the header line, not a newline).
        let first_nl = bytes.iter().position(|&b| b == b'\n').unwrap();
        let target = first_nl + 200;
        assert_ne!(bytes[target], b'\n');
        bytes[target] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();

        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.records + replay.skipped, 21);
        assert_eq!(replay.skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_v1_journal_reads_plain_lines() {
        let dir = tmp("legacy");
        let mut h = header();
        h.version = 1;
        let mut content = serde_json::to_string(&h).unwrap();
        content.push('\n');
        for i in 0..5u64 {
            content.push_str(&serde_json::to_string(&metric(i)).unwrap());
            content.push('\n');
        }
        std::fs::write(dir.join(JOURNAL_FILE), content).unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.header.version, 1);
        assert_eq!(replay.records, 5);
        assert_eq!(replay.skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_journal() {
        let dir = tmp("exists");
        write_records(&dir, 3);
        let err = match JournalWriter::create(&dir, &header()) {
            Ok(_) => panic!("create must refuse an existing journal"),
            Err(e) => e,
        };
        assert!(matches!(err, ProvMLError::JournalExists(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_mode_starts_over_and_clears_segments() {
        let dir = tmp("overwrite");
        // First run rotates into several segments.
        write_records_with(
            &dir,
            50,
            JournalConfig {
                rotate_bytes: Some(512),
                ..Default::default()
            },
        );
        assert!(dir.join(segment_file_name(1)).exists());

        write_records_with(
            &dir,
            2,
            JournalConfig {
                mode: JournalMode::Overwrite,
                ..Default::default()
            },
        );
        assert!(!dir.join(segment_file_name(1)).exists());
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.records, 3);
        assert_eq!(replay.segments, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_mode_appends() {
        let dir = tmp("resume");
        write_records(&dir, 10);
        let writer = JournalWriter::create_with(
            &dir,
            &header(),
            JournalConfig {
                mode: JournalMode::Resume,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 10..15u64 {
            writer.append(&metric(i)).unwrap();
        }
        writer.close().unwrap();
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.records, 16); // 1 param + 15 metrics
        assert_eq!(replay.skipped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_and_reads_back_in_order() {
        let dir = tmp("rotate");
        write_records_with(
            &dir,
            200,
            JournalConfig {
                rotate_bytes: Some(1024),
                ..Default::default()
            },
        );
        let replay = read_journal(&dir).unwrap();
        assert!(replay.segments > 1, "expected rotation, got 1 segment");
        assert_eq!(replay.records, 201);
        assert_eq!(replay.skipped, 0);
        // Order preserved: the series is replayed with ascending steps.
        let series = replay
            .state
            .metrics
            .values()
            .next()
            .expect("loss series exists");
        let steps: Vec<u64> = series.points.iter().map(|p| p.step).collect();
        let mut sorted = steps.clone();
        sorted.sort_unstable();
        assert_eq!(steps, sorted);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_all_produce_readable_journals() {
        for (tag, sync) in [
            ("sync_always", SyncPolicy::Always),
            ("sync_every", SyncPolicy::EveryN(3)),
            ("sync_flush", SyncPolicy::OnFlush),
        ] {
            let dir = tmp(tag);
            write_records_with(
                &dir,
                10,
                JournalConfig {
                    sync,
                    ..Default::default()
                },
            );
            let replay = read_journal(&dir).unwrap();
            assert_eq!(replay.records, 11);
            assert_eq!(replay.skipped, 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn recover_writes_provenance() {
        let dir = tmp("recover");
        write_records(&dir, 200);
        // No prov.json exists — the "process" died before finish().
        assert!(!dir.join("prov.json").exists());

        let (report, recovery) = recover_detailed(&dir, &SpillPolicy::Inline).unwrap();
        assert_eq!(report.status, RunStatus::Recovered);
        assert_eq!(report.metric_samples, 200);
        assert_eq!(recovery.records, 201);
        assert_eq!(recovery.skipped, 0);
        assert!(recovery.orphaned_artifacts.is_empty());
        assert!(report.prov_json_path.is_file());

        let doc = prov_model::ProvDocument::from_json_str(
            &std::fs::read_to_string(&report.prov_json_path).unwrap(),
        )
        .unwrap();
        let act = doc
            .get(&prov_model::QName::new("exp", "crashed-run"))
            .unwrap();
        assert_eq!(
            act.attr(&prov_model::QName::yprov("status"))
                .and_then(|v| v.as_str()),
            Some("recovered")
        );
        // The crash and recovery activities are present and linked.
        assert!(doc
            .get(&prov_model::QName::new("exp", "crashed-run/crash"))
            .is_some());
        assert!(doc
            .get(&prov_model::QName::new("exp", "crashed-run/recovery"))
            .is_some());
        assert!(prov_model::validate::is_valid(&doc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_prov_json_matches_pretty_serializer_bytes() {
        // Recovery emits through the streaming writer; its output must
        // stay byte-identical to the to_json_string_pretty path.
        let dir = tmp("parity");
        write_records(&dir, 25);
        let (report, _) = recover_detailed(&dir, &SpillPolicy::Inline).unwrap();
        let emitted = std::fs::read_to_string(&report.prov_json_path).unwrap();
        let doc = prov_model::ProvDocument::from_json_str(&emitted).unwrap();
        assert_eq!(doc.to_json_string_pretty().unwrap(), emitted);
        assert_eq!(report.prov_json_bytes, emitted.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_marks_orphaned_artifacts_invalidated() {
        let dir = tmp("orphans");
        let writer = JournalWriter::create(&dir, &header()).unwrap();
        writer
            .append(&LogRecord::Artifact(crate::model::ArtifactMeta {
                name: "model.ckpt".into(),
                stored_path: dir.join("artifacts/model.ckpt"), // never written
                sha256: "00".repeat(32),
                bytes: 123,
                direction: Direction::Output,
                context: None,
                logged_at_us: 2_000,
            }))
            .unwrap();
        writer.close().unwrap();

        let (report, recovery) = recover_detailed(&dir, &SpillPolicy::Inline).unwrap();
        assert_eq!(report.artifacts, 1);
        assert_eq!(recovery.orphaned_artifacts, vec!["model.ckpt".to_string()]);

        let doc = prov_model::ProvDocument::from_json_str(
            &std::fs::read_to_string(&report.prov_json_path).unwrap(),
        )
        .unwrap();
        let invalidated: Vec<_> = doc
            .relations_of(prov_model::RelationKind::WasInvalidatedBy)
            .collect();
        assert_eq!(invalidated.len(), 1);
        assert!(prov_model::validate::is_valid(&doc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_with_spill() {
        let dir = tmp("recover_spill");
        write_records(&dir, 300);
        let report = recover(&dir, &SpillPolicy::Zarr(Default::default())).unwrap();
        assert!(report.metric_store_path.is_some());
        let series = crate::spill::read_spilled(&dir, "loss", "training").unwrap();
        assert_eq!(series.len(), 300);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_errors() {
        let dir = tmp("missing");
        assert!(read_journal(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_journal_errors() {
        let dir = tmp("empty");
        std::fs::write(dir.join(JOURNAL_FILE), "").unwrap();
        assert!(read_journal(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
