//! Write-ahead journal and crash recovery.
//!
//! Provenance whose collection dies with the job is worth little — the
//! runs most in need of auditing are the ones that crashed (§3.1, and
//! the trustworthy-provenance direction of §4). With journaling enabled
//! ([`crate::run::RunOptions::journal`]), every [`LogRecord`] is
//! appended to `journal.jsonl` in the run directory *before* it enters
//! the in-memory collector. [`recover`] rebuilds the run state from
//! that journal and writes the provenance files a crashed process never
//! got to write.
//!
//! Format: line 1 is a JSON header (`experiment`, `run`, `user`,
//! `started_us`, `version`); every further line is one serialized
//! [`LogRecord`]. Torn trailing lines (the usual crash artifact) are
//! skipped with a count, never an error.

use crate::collector::RunState;
use crate::error::ProvMLError;
use crate::model::{LogRecord, RunReport, RunStatus};
use crate::prov_emit::{build_document, RunIdentity};
use crate::spill::{spill_metrics, SpillPolicy};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};

/// File name of the journal inside a run directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// The journal header (first line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version.
    pub version: u32,
    /// Experiment name.
    pub experiment: String,
    /// Run name.
    pub run: String,
    /// Responsible user.
    pub user: String,
    /// Run start, µs since the epoch.
    pub started_us: i64,
}

/// An append-only journal writer shared across logging threads.
pub struct JournalWriter {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates the journal and writes its header.
    pub fn create(run_dir: &Path, header: &JournalHeader) -> Result<Self, ProvMLError> {
        let path = run_dir.join(JOURNAL_FILE);
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        serde_json::to_writer(&mut file, header).map_err(metric_store::StoreError::Json)?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(JournalWriter { file: Mutex::new(file), path })
    }

    /// Appends one record (flushing so a crash loses at most the
    /// in-flight line).
    pub fn append(&self, record: &LogRecord) -> Result<(), ProvMLError> {
        let mut file = self.file.lock();
        serde_json::to_writer(&mut *file, record).map_err(metric_store::StoreError::Json)?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(())
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Result of reading a journal back.
#[derive(Debug)]
pub struct JournalReplay {
    /// The parsed header.
    pub header: JournalHeader,
    /// The reconstructed run state.
    pub state: RunState,
    /// Number of complete records recovered.
    pub records: usize,
    /// Number of torn/corrupt lines skipped (normally 0 or 1).
    pub skipped: usize,
}

/// Reads a journal file into a [`JournalReplay`].
pub fn read_journal(run_dir: &Path) -> Result<JournalReplay, ProvMLError> {
    let path = run_dir.join(JOURNAL_FILE);
    let file = std::fs::File::open(&path)?;
    let mut lines = BufReader::new(file).lines();

    let header_line = lines
        .next()
        .ok_or_else(|| ProvMLError::BadName(format!("{}: empty journal", path.display())))??;
    let header: JournalHeader =
        serde_json::from_str(&header_line).map_err(metric_store::StoreError::Json)?;

    let mut state = RunState::default();
    let mut records = 0usize;
    let mut skipped = 0usize;
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<LogRecord>(&line) {
            Ok(record) => {
                state.apply(record);
                records += 1;
            }
            Err(_) => skipped += 1, // torn tail from the crash
        }
    }
    Ok(JournalReplay { header, state, records, skipped })
}

/// Recovers a crashed run: rebuilds its state from the journal, spills
/// metrics per `spill`, and writes `prov.json` / `prov.provn` marked
/// with `yprov4ml:status = "recovered"`.
pub fn recover(run_dir: &Path, spill: &SpillPolicy) -> Result<RunReport, ProvMLError> {
    let replay = read_journal(run_dir)?;
    let state = replay.state;

    let series: Vec<&metric_store::series::MetricSeries> = state.metrics.values().collect();
    let outcome = spill_metrics(run_dir, spill, &series)?;

    // End time: the latest timestamp the journal saw.
    let ended_us = state
        .metrics
        .values()
        .filter_map(|s| s.points.last().map(|p| p.time_us))
        .chain(state.artifacts.iter().map(|a| a.logged_at_us))
        .max()
        .unwrap_or(replay.header.started_us);

    let identity = RunIdentity {
        experiment: replay.header.experiment.clone(),
        run: replay.header.run.clone(),
        user: replay.header.user.clone(),
        started_us: replay.header.started_us,
        ended_us,
    };
    let mut doc = build_document(&identity, &state, &outcome, spill.is_inline());
    doc.activity(prov_model::QName::new("exp", replay.header.run.clone()))
        .attr(
            prov_model::QName::yprov("status"),
            prov_model::AttrValue::from("recovered"),
        )
        .attr(
            prov_model::QName::yprov("journal_records"),
            prov_model::AttrValue::Int(replay.records as i64),
        );

    let prov_json_path = run_dir.join("prov.json");
    let provn_path = run_dir.join("prov.provn");
    std::fs::write(&prov_json_path, doc.to_json_string_pretty()?)?;
    std::fs::write(&provn_path, prov_model::provn::to_provn(&doc))?;

    Ok(RunReport {
        experiment: replay.header.experiment,
        run: replay.header.run,
        status: RunStatus::Failed,
        prov_json_bytes: std::fs::metadata(&prov_json_path)?.len(),
        prov_json_path,
        provn_path,
        metric_store_path: outcome.store_path,
        params: state.params.len(),
        metric_samples: state.metric_samples,
        artifacts: state.artifacts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Context, Direction, ParamValue};

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yjournal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn header() -> JournalHeader {
        JournalHeader {
            version: 1,
            experiment: "exp".into(),
            run: "crashed-run".into(),
            user: "tester".into(),
            started_us: 1_000,
        }
    }

    fn write_records(dir: &Path, n: u64) {
        let writer = JournalWriter::create(dir, &header()).unwrap();
        writer
            .append(&LogRecord::Param {
                name: "lr".into(),
                value: ParamValue::Float(0.01),
                direction: Direction::Input,
            })
            .unwrap();
        for i in 0..n {
            writer
                .append(&LogRecord::Metric {
                    name: "loss".into(),
                    context: Context::Training,
                    step: i,
                    epoch: 0,
                    time_us: 1_000 + i as i64,
                    value: 1.0 / (i + 1) as f64,
                })
                .unwrap();
        }
    }

    #[test]
    fn journal_roundtrips() {
        let dir = tmp("roundtrip");
        write_records(&dir, 100);
        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.header, header());
        assert_eq!(replay.records, 101);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.state.metric_samples, 100);
        assert_eq!(replay.state.params.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped() {
        let dir = tmp("torn");
        write_records(&dir, 50);
        // Simulate a crash mid-write: append half a record.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        f.write_all(b"{\"Metric\":{\"name\":\"loss\",\"conte").unwrap();
        drop(f);

        let replay = read_journal(&dir).unwrap();
        assert_eq!(replay.records, 51);
        assert_eq!(replay.skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_writes_provenance() {
        let dir = tmp("recover");
        write_records(&dir, 200);
        // No prov.json exists — the "process" died before finish().
        assert!(!dir.join("prov.json").exists());

        let report = recover(&dir, &SpillPolicy::Inline).unwrap();
        assert_eq!(report.status, RunStatus::Failed);
        assert_eq!(report.metric_samples, 200);
        assert!(report.prov_json_path.is_file());

        let doc = prov_model::ProvDocument::from_json_str(
            &std::fs::read_to_string(&report.prov_json_path).unwrap(),
        )
        .unwrap();
        let act = doc
            .get(&prov_model::QName::new("exp", "crashed-run"))
            .unwrap();
        assert_eq!(
            act.attr(&prov_model::QName::yprov("status"))
                .and_then(|v| v.as_str()),
            Some("recovered")
        );
        assert!(prov_model::validate::is_valid(&doc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_with_spill() {
        let dir = tmp("recover_spill");
        write_records(&dir, 300);
        let report = recover(&dir, &SpillPolicy::Zarr(Default::default())).unwrap();
        assert!(report.metric_store_path.is_some());
        let series = crate::spill::read_spilled(&dir, "loss", "training").unwrap();
        assert_eq!(series.len(), 300);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_errors() {
        let dir = tmp("missing");
        assert!(read_journal(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_journal_errors() {
        let dir = tmp("empty");
        std::fs::write(dir.join(JOURNAL_FILE), "").unwrap();
        assert!(read_journal(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
