//! Metric spill-out: where a run's bulky time-series go.
//!
//! The paper's §4: by default everything lands in one PROV-JSON file;
//! the newest library version can instead store time series in
//! "more advanced open file formats, such as NetCDF and Zarr", keeping
//! the top-level provenance file small (Table 1 measures the gain).

use crate::error::ProvMLError;
use metric_store::json_store::JsonStore;
use metric_store::netcdf::{NcOptions, NcStore};
use metric_store::series::MetricSeries;
use metric_store::store::MetricStore;
use metric_store::zarr::{ZarrOptions, ZarrStore};
use metric_store::{StorageFormat, WorkerPool};
use std::path::{Path, PathBuf};

/// Where metric series are persisted at run finish.
#[derive(Debug, Clone, Default)]
pub enum SpillPolicy {
    /// Keep every sample inline in the PROV-JSON document (the paper's
    /// `Original_file.json` baseline).
    #[default]
    Inline,
    /// Spill to a Zarr-like chunked store next to the provenance file.
    Zarr(ZarrOptions),
    /// Spill to a NetCDF-like single file next to the provenance file.
    NetCdf(NcOptions),
    /// Spill to plain JSON side files (one per series). Mostly useful
    /// to isolate "out of the PROV file" from "binary format" effects
    /// in the ablation benchmarks.
    JsonFiles,
}

impl SpillPolicy {
    /// The storage format this policy corresponds to in reports.
    pub fn format(&self) -> StorageFormat {
        match self {
            SpillPolicy::Inline | SpillPolicy::JsonFiles => StorageFormat::InlineJson,
            SpillPolicy::Zarr(_) => StorageFormat::ZarrLike,
            SpillPolicy::NetCdf(_) => StorageFormat::NetCdfLike,
        }
    }

    /// True when metrics stay inside the PROV-JSON document.
    pub fn is_inline(&self) -> bool {
        matches!(self, SpillPolicy::Inline)
    }
}

/// Result of spilling a run's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillOutcome {
    /// Path of the store (directory or file), when not inline.
    pub store_path: Option<PathBuf>,
    /// `(metric name, context name, relative link)` for each spilled
    /// series, recorded in the provenance document.
    pub links: Vec<(String, String, String)>,
    /// Bytes used by the external store (0 when inline).
    pub external_bytes: u64,
}

/// Writes all series per the policy, rooted at the run directory,
/// encoding serially.
pub fn spill_metrics(
    run_dir: &Path,
    policy: &SpillPolicy,
    series: &[&MetricSeries],
) -> Result<SpillOutcome, ProvMLError> {
    spill_metrics_pooled(run_dir, policy, series, &WorkerPool::serial())
}

/// Writes all series per the policy, encoding through `pool` where the
/// backend supports it.
///
/// The on-disk bytes are identical for any pool size — the backends'
/// `write_many` overrides guarantee it (see the parity tests in the
/// integration crate).
pub fn spill_metrics_pooled(
    run_dir: &Path,
    policy: &SpillPolicy,
    series: &[&MetricSeries],
    pool: &WorkerPool,
) -> Result<SpillOutcome, ProvMLError> {
    match policy {
        SpillPolicy::Inline => Ok(SpillOutcome {
            store_path: None,
            links: Vec::new(),
            external_bytes: 0,
        }),
        SpillPolicy::Zarr(opts) => {
            let path = run_dir.join("metrics.zarr");
            let store = ZarrStore::create(&path, opts.clone())?;
            store.write_many(series, pool)?;
            finish_outcome(path, series, &store)
        }
        SpillPolicy::NetCdf(opts) => {
            let path = run_dir.join("metrics.nc");
            let store = NcStore::create(&path, opts.clone())?;
            store.write_many(series, pool)?;
            finish_outcome(path, series, &store)
        }
        SpillPolicy::JsonFiles => {
            let path = run_dir.join("metrics.json.d");
            let store = JsonStore::create(&path)?;
            store.write_many(series, pool)?;
            finish_outcome(path, series, &store)
        }
    }
}

fn finish_outcome(
    path: PathBuf,
    series: &[&MetricSeries],
    store: &dyn MetricStore,
) -> Result<SpillOutcome, ProvMLError> {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let links = series
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                s.context.clone(),
                format!("{file_name}#{}", s.key()),
            )
        })
        .collect();
    Ok(SpillOutcome {
        external_bytes: store.size_bytes()?,
        store_path: Some(path),
        links,
    })
}

/// Reads one spilled series back from a run directory, auto-detecting
/// the store that `spill_metrics` created.
pub fn read_spilled(
    run_dir: &Path,
    name: &str,
    context: &str,
) -> Result<MetricSeries, ProvMLError> {
    let zarr = run_dir.join("metrics.zarr");
    if zarr.is_dir() {
        return Ok(ZarrStore::open(&zarr)?.read_series(name, context)?);
    }
    let nc = run_dir.join("metrics.nc");
    if nc.is_file() {
        return Ok(NcStore::open(&nc)?.read_series(name, context)?);
    }
    let json = run_dir.join("metrics.json.d");
    if json.is_dir() {
        return Ok(JsonStore::create(&json)?.read_series(name, context)?);
    }
    Err(ProvMLError::Store(metric_store::StoreError::NotFound(
        format!("{name}@{context} under {}", run_dir.display()),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metric_store::series::MetricPoint;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yspill_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn series(name: &str, n: usize) -> MetricSeries {
        let mut s = MetricSeries::new(name, "training");
        for i in 0..n {
            s.push(MetricPoint {
                step: i as u64,
                epoch: 0,
                time_us: i as i64,
                value: i as f64 * 0.5,
            });
        }
        s
    }

    #[test]
    fn inline_spills_nothing() {
        let dir = tmpdir("inline");
        let s = series("loss", 100);
        let out = spill_metrics(&dir, &SpillPolicy::Inline, &[&s]).unwrap();
        assert!(out.store_path.is_none());
        assert_eq!(out.external_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zarr_spill_roundtrips() {
        let dir = tmpdir("zarr");
        let s = series("loss", 5000);
        let out = spill_metrics(&dir, &SpillPolicy::Zarr(ZarrOptions::default()), &[&s]).unwrap();
        assert!(out.store_path.as_ref().unwrap().ends_with("metrics.zarr"));
        assert!(out.external_bytes > 0);
        assert_eq!(out.links.len(), 1);
        assert!(out.links[0].2.contains("metrics.zarr#loss@training"));
        let back = read_spilled(&dir, "loss", "training").unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn netcdf_spill_roundtrips() {
        let dir = tmpdir("nc");
        let a = series("loss", 1000);
        let b = series("power", 1000);
        let out =
            spill_metrics(&dir, &SpillPolicy::NetCdf(NcOptions::default()), &[&a, &b]).unwrap();
        assert_eq!(out.links.len(), 2);
        assert_eq!(read_spilled(&dir, "power", "training").unwrap(), b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_files_spill_roundtrips() {
        let dir = tmpdir("jsonfiles");
        let s = series("loss", 200);
        spill_metrics(&dir, &SpillPolicy::JsonFiles, &[&s]).unwrap();
        assert_eq!(read_spilled(&dir, "loss", "training").unwrap(), s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_from_empty_dir_fails() {
        let dir = tmpdir("empty");
        assert!(read_spilled(&dir, "loss", "training").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formats_map_to_table1_rows() {
        assert_eq!(SpillPolicy::Inline.format(), StorageFormat::InlineJson);
        assert_eq!(
            SpillPolicy::Zarr(ZarrOptions::default()).format(),
            StorageFormat::ZarrLike
        );
        assert_eq!(
            SpillPolicy::NetCdf(NcOptions::default()).format(),
            StorageFormat::NetCdfLike
        );
        assert!(SpillPolicy::Inline.is_inline());
        assert!(!SpillPolicy::JsonFiles.is_inline());
    }
}
