//! The run-level data model (paper Figure 2).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;

/// A stage of the ML process within a run.
///
/// Training and validation are epoch-structured; testing usually runs
/// once; any further stage (data preparation, export, ...) is a custom
/// context, matching the paper's "others can be defined by the user".
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Context {
    /// The training loop.
    Training,
    /// Per-epoch validation.
    Validation,
    /// Final testing / evaluation.
    Testing,
    /// A user-defined stage.
    Custom(String),
}

impl Context {
    /// Canonical lowercase name used in keys and PROV identifiers.
    pub fn name(&self) -> String {
        match self {
            Context::Training => "training".into(),
            Context::Validation => "validation".into(),
            Context::Testing => "testing".into(),
            Context::Custom(s) => s.to_ascii_lowercase(),
        }
    }

    /// Parses a canonical name back into a context.
    pub fn from_name(name: &str) -> Context {
        match name {
            "training" => Context::Training,
            "validation" => Context::Validation,
            "testing" => Context::Testing,
            other => Context::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Whether a logged item is consumed or produced by the run.
///
/// Inputs become `used` edges in the provenance graph; outputs become
/// `wasGeneratedBy` edges (§4's relationship rework).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The run required this item (dataset, config, pretrained weights).
    Input,
    /// The run produced this item (checkpoints, metrics, reports).
    Output,
}

/// A parameter value: one-time configuration recorded at log time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Floating-point parameter.
    Float(f64),
    /// Integer parameter.
    Int(i64),
    /// Textual parameter.
    Text(String),
    /// Boolean flag.
    Bool(bool),
}

impl ParamValue {
    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Float(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Lexical rendering used in PROV attributes and reports.
    pub fn render(&self) -> String {
        match self {
            ParamValue::Float(v) => format!("{v:?}"),
            ParamValue::Int(v) => v.to_string(),
            ParamValue::Text(s) => s.clone(),
            ParamValue::Bool(b) => b.to_string(),
        }
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<u64> for ParamValue {
    fn from(v: u64) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Text(v.to_string())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Text(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

/// Metadata of a logged artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMeta {
    /// Logical name (`model.ckpt`).
    pub name: String,
    /// Where the artifact was copied inside the run directory.
    pub stored_path: PathBuf,
    /// Content digest (SHA-256, hex).
    pub sha256: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Input or output of the run.
    pub direction: Direction,
    /// Context it was logged under, if any.
    pub context: Option<Context>,
    /// Microseconds since the epoch at log time.
    pub logged_at_us: i64,
}

/// One record flowing from the user API to the collector thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// A parameter.
    Param {
        /// Parameter name.
        name: String,
        /// Parameter value.
        value: ParamValue,
        /// Input or output.
        direction: Direction,
    },
    /// One metric sample.
    Metric {
        /// Metric name.
        name: String,
        /// Context logged under.
        context: Context,
        /// Global step.
        step: u64,
        /// Epoch.
        epoch: u32,
        /// Wall time, µs since the Unix epoch.
        time_us: i64,
        /// The value.
        value: f64,
    },
    /// An artifact (already persisted; this is its metadata).
    Artifact(ArtifactMeta),
    /// A context began (carried for epoch/duration bookkeeping).
    ContextStart {
        /// The context.
        context: Context,
        /// µs timestamp.
        time_us: i64,
    },
    /// A context finished.
    ContextEnd {
        /// The context.
        context: Context,
        /// µs timestamp.
        time_us: i64,
    },
}

/// Lifecycle state of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Accepting log records.
    Active,
    /// Finished successfully; provenance file written.
    Finished,
    /// Finished with a failure marker.
    Failed,
    /// Died without writing provenance (detected, not chosen: a journal
    /// with no `prov.json` next to it).
    Crashed,
    /// Rebuilt from the write-ahead journal after a crash.
    Recovered,
}

/// What `Run::finish` returns: where everything was written.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Experiment name.
    pub experiment: String,
    /// Run name.
    pub run: String,
    /// Final status.
    pub status: RunStatus,
    /// The PROV-JSON provenance file.
    pub prov_json_path: PathBuf,
    /// The PROV-N rendering (human-readable).
    pub provn_path: PathBuf,
    /// Where spilled metrics went, if spilling was enabled.
    pub metric_store_path: Option<PathBuf>,
    /// Number of parameters logged.
    pub params: usize,
    /// Number of metric samples logged.
    pub metric_samples: usize,
    /// Number of artifacts logged.
    pub artifacts: usize,
    /// Total provenance-file size in bytes (PROV-JSON only).
    pub prov_json_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_names_roundtrip() {
        for ctx in [
            Context::Training,
            Context::Validation,
            Context::Testing,
            Context::Custom("preprocessing".into()),
        ] {
            assert_eq!(Context::from_name(&ctx.name()), ctx);
        }
        assert_eq!(Context::Custom("ETL".into()).name(), "etl");
    }

    #[test]
    fn param_conversions() {
        assert_eq!(ParamValue::from(0.5), ParamValue::Float(0.5));
        assert_eq!(ParamValue::from(3i64), ParamValue::Int(3));
        assert_eq!(ParamValue::from(3usize), ParamValue::Int(3));
        assert_eq!(ParamValue::from("adam"), ParamValue::Text("adam".into()));
        assert_eq!(ParamValue::from(true), ParamValue::Bool(true));
    }

    #[test]
    fn param_accessors() {
        assert_eq!(ParamValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(ParamValue::Int(4).as_f64(), Some(4.0));
        assert_eq!(ParamValue::Text("x".into()).as_f64(), None);
        assert_eq!(ParamValue::Float(0.1).render(), "0.1");
        assert_eq!(ParamValue::Bool(false).render(), "false");
    }

    #[test]
    fn context_display() {
        assert_eq!(Context::Training.to_string(), "training");
        assert_eq!(Context::Custom("Export".into()).to_string(), "export");
    }
}
