//! Online training guidance (paper §3.2, "trade-offs oriented
//! training").
//!
//! "An online provenance tracking process could give real-time
//! guidelines in how to proceed during the training process,
//! understanding when to stop ... the process could be stopped when a
//! specific threshold of energy, compute, or performance is achieved,
//! removing unnecessary iterations."
//!
//! [`TrainingMonitor`] consumes the same stream the provenance
//! collector sees (loss, energy, walltime per step) and answers
//! *should this run keep going?* against a [`StopPolicy`].

/// Budgets and targets that end a run early.
#[derive(Debug, Clone, PartialEq)]
pub struct StopPolicy {
    /// Stop when the loss has not improved by at least `min_delta`
    /// for `patience` consecutive observations (plateau detection).
    pub patience: Option<usize>,
    /// Minimum improvement that resets the plateau counter.
    pub min_delta: f64,
    /// Stop when total energy exceeds this many joules.
    pub energy_budget_j: Option<f64>,
    /// Stop when walltime exceeds this many seconds.
    pub walltime_budget_s: Option<f64>,
    /// Stop (successfully) when the loss reaches this target.
    pub target_loss: Option<f64>,
}

impl Default for StopPolicy {
    fn default() -> Self {
        StopPolicy {
            patience: Some(50),
            min_delta: 1e-4,
            energy_budget_j: None,
            walltime_budget_s: None,
            target_loss: None,
        }
    }
}

/// What the monitor recommends after an observation.
#[derive(Debug, Clone, PartialEq)]
pub enum Advice {
    /// Keep training.
    Continue,
    /// Stop: the target loss was reached.
    TargetReached {
        /// The loss that met the target.
        loss: f64,
    },
    /// Stop: no improvement for the configured patience.
    Plateaued {
        /// Best loss seen.
        best_loss: f64,
        /// Observations since the best loss improved.
        stale_for: usize,
    },
    /// Stop: the energy budget is exhausted.
    EnergyExhausted {
        /// Joules consumed.
        joules: f64,
    },
    /// Stop: the walltime budget is exhausted.
    WalltimeExhausted {
        /// Seconds elapsed.
        seconds: f64,
    },
}

impl Advice {
    /// True when the advice is to stop.
    pub fn should_stop(&self) -> bool {
        !matches!(self, Advice::Continue)
    }
}

/// The stateful monitor.
#[derive(Debug, Clone)]
pub struct TrainingMonitor {
    policy: StopPolicy,
    best_loss: f64,
    stale: usize,
    observations: usize,
}

impl TrainingMonitor {
    /// Starts monitoring under `policy`.
    pub fn new(policy: StopPolicy) -> Self {
        TrainingMonitor {
            policy,
            best_loss: f64::INFINITY,
            stale: 0,
            observations: 0,
        }
    }

    /// Number of observations consumed.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Best loss seen so far.
    pub fn best_loss(&self) -> f64 {
        self.best_loss
    }

    /// Feeds one observation and returns the recommendation. Budget
    /// checks run before progress checks: a run out of energy stops
    /// even while still improving.
    pub fn observe(&mut self, loss: f64, joules: f64, walltime_s: f64) -> Advice {
        self.observations += 1;

        if let Some(budget) = self.policy.energy_budget_j {
            if joules >= budget {
                return Advice::EnergyExhausted { joules };
            }
        }
        if let Some(budget) = self.policy.walltime_budget_s {
            if walltime_s >= budget {
                return Advice::WalltimeExhausted {
                    seconds: walltime_s,
                };
            }
        }
        if let Some(target) = self.policy.target_loss {
            if loss.is_finite() && loss <= target {
                return Advice::TargetReached { loss };
            }
        }
        if loss.is_finite() && loss < self.best_loss - self.policy.min_delta {
            self.best_loss = loss;
            self.stale = 0;
        } else {
            self.stale += 1;
            if loss.is_finite() && loss < self.best_loss {
                // Track tiny improvements without resetting patience.
                self.best_loss = loss;
            }
        }
        if let Some(patience) = self.policy.patience {
            if self.stale >= patience {
                return Advice::Plateaued {
                    best_loss: self.best_loss,
                    stale_for: self.stale,
                };
            }
        }
        Advice::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improving_loss_continues() {
        let mut m = TrainingMonitor::new(StopPolicy::default());
        for step in 0..200 {
            // Steady improvement well above min_delta.
            let advice = m.observe(1.0 - step as f64 * 0.004, 0.0, step as f64);
            assert_eq!(advice, Advice::Continue, "step {step}");
        }
        assert!((m.best_loss() - (1.0 - 199.0 * 0.004)).abs() < 1e-12);
    }

    #[test]
    fn diminishing_returns_eventually_plateau() {
        // A realistic 1/x curve: improvements shrink below min_delta and
        // the monitor calls the plateau — the §3.2 "removing unnecessary
        // iterations" behaviour.
        let mut m = TrainingMonitor::new(StopPolicy::default());
        let mut stopped_at = None;
        for step in 0..10_000u64 {
            if m.observe(1.0 / (step + 1) as f64, 0.0, step as f64)
                .should_stop()
            {
                stopped_at = Some(step);
                break;
            }
        }
        let at = stopped_at.expect("must stop on diminishing returns");
        assert!(at > 90 && at < 1_000, "stopped at {at}");
    }

    #[test]
    fn plateau_triggers_after_patience() {
        let mut m = TrainingMonitor::new(StopPolicy {
            patience: Some(10),
            ..Default::default()
        });
        assert_eq!(m.observe(0.5, 0.0, 0.0), Advice::Continue);
        let mut stopped = None;
        for i in 0..20 {
            let advice = m.observe(0.5, 0.0, i as f64);
            if advice.should_stop() {
                stopped = Some((i, advice));
                break;
            }
        }
        let (at, advice) = stopped.expect("plateau must trigger");
        assert_eq!(at, 9, "exactly after `patience` stale observations");
        assert!(matches!(advice, Advice::Plateaued { stale_for: 10, .. }));
    }

    #[test]
    fn tiny_improvements_do_not_reset_patience() {
        let mut m = TrainingMonitor::new(StopPolicy {
            patience: Some(5),
            min_delta: 0.01,
            ..Default::default()
        });
        m.observe(1.0, 0.0, 0.0);
        // Improvements below min_delta: still stale.
        let mut last = Advice::Continue;
        for i in 0..5 {
            last = m.observe(1.0 - 0.001 * (i + 1) as f64, 0.0, 0.0);
        }
        assert!(last.should_stop());
        // But the best loss tracked the drift.
        assert!((m.best_loss() - 0.995).abs() < 1e-12);
    }

    #[test]
    fn energy_budget_stops_even_when_improving() {
        let mut m = TrainingMonitor::new(StopPolicy {
            energy_budget_j: Some(1_000.0),
            ..Default::default()
        });
        assert_eq!(m.observe(1.0, 500.0, 1.0), Advice::Continue);
        let advice = m.observe(0.5, 1_500.0, 2.0);
        assert!(matches!(advice, Advice::EnergyExhausted { joules } if joules == 1_500.0));
    }

    #[test]
    fn walltime_budget_stops() {
        let mut m = TrainingMonitor::new(StopPolicy {
            walltime_budget_s: Some(7_200.0),
            patience: None,
            ..Default::default()
        });
        assert_eq!(m.observe(1.0, 0.0, 7_199.0), Advice::Continue);
        assert!(m.observe(1.0, 0.0, 7_200.0).should_stop());
    }

    #[test]
    fn target_loss_stops_successfully() {
        let mut m = TrainingMonitor::new(StopPolicy {
            target_loss: Some(0.1),
            ..Default::default()
        });
        assert_eq!(m.observe(0.5, 0.0, 0.0), Advice::Continue);
        assert!(matches!(
            m.observe(0.09, 0.0, 1.0),
            Advice::TargetReached { loss } if loss == 0.09
        ));
    }

    #[test]
    fn nan_losses_count_as_stale() {
        let mut m = TrainingMonitor::new(StopPolicy {
            patience: Some(3),
            ..Default::default()
        });
        m.observe(1.0, 0.0, 0.0);
        m.observe(f64::NAN, 0.0, 1.0);
        m.observe(f64::NAN, 0.0, 2.0);
        assert!(m.observe(f64::NAN, 0.0, 3.0).should_stop());
    }

    #[test]
    fn disabled_policy_never_stops() {
        let mut m = TrainingMonitor::new(StopPolicy {
            patience: None,
            energy_budget_j: None,
            walltime_budget_s: None,
            target_loss: None,
            min_delta: 0.0,
        });
        for i in 0..1_000 {
            assert_eq!(m.observe(1.0, 1e9, 1e9), Advice::Continue, "obs {i}");
        }
        assert_eq!(m.observations(), 1_000);
    }
}
