//! Content-addressed artifact storage shared across runs.
//!
//! Scaling studies log the *same* input dataset manifest, config files
//! and base checkpoints into dozens of runs; copying them per run
//! multiplies storage for no provenance value (the SHA-256 already
//! identifies the content). An [`ArtifactStore`] keeps one object per
//! digest under `objects/ab/cdef...` (git-style fan-out) and lets runs
//! reference objects instead of duplicating bytes.
//!
//! The store is safe for concurrent writers: objects are written to a
//! temp file and renamed into place, and an existing object is never
//! rewritten (content-addressing makes overwrites idempotent anyway).

use crate::error::ProvMLError;
use crate::hash::sha256_hex;
use std::path::{Path, PathBuf};

/// A content-addressed object store rooted at a directory.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Creates (or opens) a store at `root`.
    pub fn create(root: impl AsRef<Path>) -> Result<Self, ProvMLError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("objects"))?;
        Ok(ArtifactStore { root })
    }

    /// The store root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        let (fan, rest) = digest.split_at(2.min(digest.len()));
        self.root.join("objects").join(fan).join(rest)
    }

    /// Stores bytes, returning their digest. Idempotent: storing the
    /// same content twice writes once.
    pub fn put(&self, bytes: &[u8]) -> Result<String, ProvMLError> {
        let digest = sha256_hex(bytes);
        let path = self.object_path(&digest);
        if path.is_file() {
            return Ok(digest);
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename keeps concurrent writers from exposing
        // partial objects. The temp name is unique per call (process id
        // + global counter), so concurrent writers of the same digest
        // never share a temp file; the final rename atomically replaces
        // any object a racing writer installed first — harmless, since
        // content-addressing makes both byte-identical.
        static PUT_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let nonce = PUT_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp{}-{nonce}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                if !path.is_file() {
                    return Err(e.into());
                }
            }
        }
        Ok(digest)
    }

    /// Stores a file's contents.
    pub fn put_file(&self, path: impl AsRef<Path>) -> Result<String, ProvMLError> {
        let bytes = std::fs::read(path)?;
        self.put(&bytes)
    }

    /// Fetches an object's bytes.
    pub fn get(&self, digest: &str) -> Result<Vec<u8>, ProvMLError> {
        let path = self.object_path(digest);
        if !path.is_file() {
            return Err(ProvMLError::Store(metric_store::StoreError::NotFound(
                format!("object {digest}"),
            )));
        }
        let bytes = std::fs::read(&path)?;
        // Verify on read: a provenance store that silently serves
        // corrupted artifacts is worse than none.
        let actual = sha256_hex(&bytes);
        if actual != digest {
            return Err(ProvMLError::Store(metric_store::StoreError::Corrupt(
                format!("object {digest} has digest {actual}"),
            )));
        }
        Ok(bytes)
    }

    /// True when the object exists.
    pub fn contains(&self, digest: &str) -> bool {
        self.object_path(digest).is_file()
    }

    /// Materializes an object at `dest` (copy).
    pub fn checkout(&self, digest: &str, dest: impl AsRef<Path>) -> Result<(), ProvMLError> {
        let bytes = self.get(digest)?;
        if let Some(parent) = dest.as_ref().parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(dest, bytes)?;
        Ok(())
    }

    /// Number of objects and their total bytes.
    pub fn stats(&self) -> Result<(usize, u64), ProvMLError> {
        let mut count = 0usize;
        let mut bytes = 0u64;
        let objects = self.root.join("objects");
        for fan in std::fs::read_dir(&objects)? {
            let fan = fan?.path();
            if !fan.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(&fan)? {
                let meta = obj?.metadata()?;
                if meta.is_file() {
                    count += 1;
                    bytes += meta.len();
                }
            }
        }
        Ok((count, bytes))
    }

    /// Removes objects not in `referenced` (garbage collection after
    /// runs are deleted). Returns the number of objects removed.
    pub fn gc(
        &self,
        referenced: &std::collections::BTreeSet<String>,
    ) -> Result<usize, ProvMLError> {
        let mut removed = 0usize;
        let objects = self.root.join("objects");
        for fan in std::fs::read_dir(&objects)? {
            let fan = fan?.path();
            if !fan.is_dir() {
                continue;
            }
            let fan_name = fan.file_name().map(|n| n.to_string_lossy().into_owned());
            for obj in std::fs::read_dir(&fan)? {
                let obj = obj?.path();
                let digest = match (&fan_name, obj.file_name()) {
                    (Some(f), Some(rest)) => format!("{f}{}", rest.to_string_lossy()),
                    _ => continue,
                };
                if !referenced.contains(&digest) {
                    std::fs::remove_file(&obj)?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yobj_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn put_get_roundtrip() {
        let store = ArtifactStore::create(tmp("roundtrip")).unwrap();
        let digest = store.put(b"model weights").unwrap();
        assert_eq!(digest.len(), 64);
        assert!(store.contains(&digest));
        assert_eq!(store.get(&digest).unwrap(), b"model weights");
        assert!(!store.contains("00".repeat(32).as_str()));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn deduplication() {
        let store = ArtifactStore::create(tmp("dedup")).unwrap();
        let payload = vec![42u8; 100_000];
        for _ in 0..10 {
            store.put(&payload).unwrap();
        }
        let (count, bytes) = store.stats().unwrap();
        assert_eq!(count, 1, "ten identical puts, one object");
        assert_eq!(bytes, 100_000);
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corruption_detected_on_read() {
        let store = ArtifactStore::create(tmp("corrupt")).unwrap();
        let digest = store.put(b"honest bytes").unwrap();
        let path = store.object_path(&digest);
        std::fs::write(&path, b"tampered bytes").unwrap();
        assert!(store.get(&digest).is_err());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn checkout_materializes() {
        let store = ArtifactStore::create(tmp("checkout")).unwrap();
        let digest = store.put(b"dataset").unwrap();
        let dest = store.root().join("work/data.bin");
        store.checkout(&digest, &dest).unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"dataset");
        assert!(store
            .checkout(&"ff".repeat(32), store.root().join("x"))
            .is_err());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let store = ArtifactStore::create(tmp("concurrent")).unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    // Half shared content, half unique.
                    let content = if i % 2 == 0 {
                        format!("shared-{i}")
                    } else {
                        format!("unique-{t}-{i}")
                    };
                    store.put(content.as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (count, _) = store.stats().unwrap();
        assert_eq!(count, 25 + 8 * 25, "25 shared + 200 unique");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn gc_removes_unreferenced() {
        let store = ArtifactStore::create(tmp("gc")).unwrap();
        let keep = store.put(b"keep me").unwrap();
        let _drop1 = store.put(b"drop me 1").unwrap();
        let _drop2 = store.put(b"drop me 2").unwrap();
        let referenced: BTreeSet<String> = [keep.clone()].into_iter().collect();
        let removed = store.gc(&referenced).unwrap();
        assert_eq!(removed, 2);
        assert!(store.contains(&keep));
        assert_eq!(store.stats().unwrap().0, 1);
        std::fs::remove_dir_all(store.root()).ok();
    }
}
