//! The run handle: the MLflow-style logging surface.

use crate::collector::Collector;
use crate::error::ProvMLError;
use crate::hash::sha256_hex;
use crate::journal::{JournalConfig, JournalHeader, JournalWriter};
use crate::model::{ArtifactMeta, Context, Direction, LogRecord, ParamValue, RunReport, RunStatus};
use crate::plugins::{PluginSink, ProvPlugin};
use crate::prov_emit::{build_document, emit_alerts, emit_overhead, write_prov_files, RunIdentity};
use crate::spill::{spill_metrics_pooled, SpillOutcome, SpillPolicy};
use metric_store::WorkerPool;
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Knobs for the finalize pipeline (collector drain, metric spill,
/// provenance emission).
///
/// `threads == 1` (the default) reproduces the serial pipeline exactly:
/// single-threaded collector fold, serial chunk encoding, streaming
/// emission. Higher values shard the buffered collector across that
/// many folding threads and encode spill chunks on a work-stealing
/// pool of the same width. Output artifacts are byte-identical at any
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinalizeOptions {
    /// Folding/encoding threads used by the collector and spill pool.
    pub threads: usize,
}

impl Default for FinalizeOptions {
    fn default() -> Self {
        FinalizeOptions { threads: 1 }
    }
}

impl FinalizeOptions {
    /// Convenience constructor.
    pub fn with_threads(threads: usize) -> Self {
        FinalizeOptions {
            threads: threads.max(1),
        }
    }
}

/// When the live-streaming path cuts a provenance delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaCadence {
    /// One delta per completed epoch (fires on the first step of the
    /// next epoch, when the previous one is known to be over).
    EveryEpoch,
    /// One delta every N observed steps.
    EverySteps(u64),
}

/// Decides, step by step, when to cut the next streaming delta.
///
/// Feed it every training step via [`DeltaEmitter::observe`]; when it
/// answers `true`, take [`Run::snapshot_document`] and ship it with
/// `Client::upload_delta`. Cheap enough to call unconditionally in the
/// step loop.
#[derive(Debug)]
pub struct DeltaEmitter {
    cadence: DeltaCadence,
    last_epoch: Option<u32>,
    steps_since: u64,
    emitted: u64,
}

impl DeltaEmitter {
    /// An emitter with the given cadence.
    pub fn new(cadence: DeltaCadence) -> Self {
        DeltaEmitter {
            cadence,
            last_epoch: None,
            steps_since: 0,
            emitted: 0,
        }
    }

    /// Observes one training step; `true` means cut a delta now.
    pub fn observe(&mut self, _step: u64, epoch: u32) -> bool {
        let fire = match self.cadence {
            DeltaCadence::EveryEpoch => self.last_epoch.is_some_and(|prev| epoch != prev),
            DeltaCadence::EverySteps(n) => {
                self.steps_since += 1;
                self.steps_since >= n.max(1)
            }
        };
        self.last_epoch = Some(epoch);
        if fire {
            self.steps_since = 0;
            self.emitted += 1;
        }
        fire
    }

    /// How many deltas this emitter has asked for so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

/// Options controlling a run's collection behaviour.
#[derive(Default)]
pub struct RunOptions {
    /// Metric spill policy (inline by default — the paper's "normal"
    /// single-file output).
    pub spill: SpillPolicy,
    /// Use the synchronous collector instead of the buffered one.
    pub synchronous: bool,
    /// User recorded as the responsible agent.
    pub user: Option<String>,
    /// Plugins activated for this run.
    pub plugins: Vec<Box<dyn ProvPlugin>>,
    /// Write every record to a crash-recovery journal
    /// (`journal.jsonl`) before buffering it. See [`crate::journal`].
    /// Plugin-emitted records bypass the journal (they are
    /// reconstructible from their sources).
    pub journal: bool,
    /// Durability and rotation knobs for the journal (ignored unless
    /// `journal` is set).
    pub journal_config: JournalConfig,
    /// Finalize-pipeline parallelism (collector sharding + spill
    /// encoding). Ignored when `synchronous` is set.
    pub finalize: FinalizeOptions,
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("spill", &self.spill)
            .field("synchronous", &self.synchronous)
            .field("user", &self.user)
            .field("plugins", &self.plugins.len())
            .field("journal", &self.journal)
            .field("journal_config", &self.journal_config)
            .field("finalize", &self.finalize)
            .finish()
    }
}

/// An active run. Logging methods take `&self` and are safe to call
/// from any thread; [`Run::finish`] consumes the run and writes the
/// provenance files.
pub struct Run {
    experiment: String,
    name: String,
    dir: PathBuf,
    collector: Arc<Collector>,
    spill: SpillPolicy,
    finalize: FinalizeOptions,
    user: String,
    started_us: i64,
    plugins: Mutex<Vec<Box<dyn ProvPlugin>>>,
    journal: Option<JournalWriter>,
    /// Global observability registry at run start; subtracted at finish
    /// to isolate this run's tracker overhead (approximate when several
    /// runs share the process, since the registry is process-wide).
    obs_start: obs::Snapshot,
}

fn now_us() -> i64 {
    prov_model::XsdDateTime::now().epoch_micros()
}

impl Run {
    pub(crate) fn start(
        experiment: String,
        name: String,
        experiment_dir: &Path,
        options: RunOptions,
    ) -> Result<Run, ProvMLError> {
        let dir = experiment_dir.join(&name);
        std::fs::create_dir_all(dir.join("artifacts"))?;
        let collector = if options.synchronous {
            Collector::synchronous()
        } else {
            Collector::sharded(options.finalize.threads)?
        };
        let user = options.user.unwrap_or_else(|| "unknown".to_string());
        let started_us = now_us();
        let journal = if options.journal {
            Some(JournalWriter::create_with(
                &dir,
                &JournalHeader::new(&experiment, &name, &user, started_us),
                options.journal_config,
            )?)
        } else {
            None
        };
        let run = Run {
            experiment,
            name,
            dir,
            collector,
            spill: options.spill,
            finalize: options.finalize,
            user,
            started_us,
            plugins: Mutex::new(options.plugins),
            journal,
            obs_start: obs::global().snapshot(),
        };
        // Give plugins a chance to record environment parameters.
        {
            let mut plugins = run.plugins.lock();
            let mut sink = PluginSink::new(&run.collector);
            for p in plugins.iter_mut() {
                p.on_run_start(&mut sink);
            }
        }
        Ok(run)
    }

    /// The run name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The experiment this run belongs to.
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Journals (when enabled) and submits one record.
    fn submit(&self, record: LogRecord) -> Result<(), ProvMLError> {
        if let Some(journal) = &self.journal {
            journal.append(&record)?;
        }
        self.collector.log(record)
    }

    // ----- parameters ---------------------------------------------------

    /// Logs a parameter (input by default, like hyperparameters).
    pub fn log_param(&self, name: impl Into<String>, value: impl Into<ParamValue>) {
        self.log_param_dir(name, value, Direction::Input);
    }

    /// Logs an explicitly-input parameter.
    pub fn log_input_param(&self, name: impl Into<String>, value: impl Into<ParamValue>) {
        self.log_param_dir(name, value, Direction::Input);
    }

    /// Logs an output parameter (a derived one-time result).
    pub fn log_output_param(&self, name: impl Into<String>, value: impl Into<ParamValue>) {
        self.log_param_dir(name, value, Direction::Output);
    }

    fn log_param_dir(
        &self,
        name: impl Into<String>,
        value: impl Into<ParamValue>,
        direction: Direction,
    ) {
        let _ = self.submit(LogRecord::Param {
            name: name.into(),
            value: value.into(),
            direction,
        });
    }

    // ----- metrics ------------------------------------------------------

    /// Logs one metric sample with the current wall time.
    pub fn log_metric(
        &self,
        name: impl Into<String>,
        context: Context,
        step: u64,
        epoch: u32,
        value: f64,
    ) {
        self.log_metric_at(name, context, step, epoch, now_us(), value);
    }

    /// Logs one metric sample with an explicit timestamp (µs since the
    /// Unix epoch) — used by simulators running on virtual clocks.
    pub fn log_metric_at(
        &self,
        name: impl Into<String>,
        context: Context,
        step: u64,
        epoch: u32,
        time_us: i64,
        value: f64,
    ) {
        let _ = self.submit(LogRecord::Metric {
            name: name.into(),
            context,
            step,
            epoch,
            time_us,
            value,
        });
    }

    /// Journals (when enabled) and submits a batch of records in one
    /// collector round-trip.
    ///
    /// With the buffered or sharded collector this pays one channel
    /// send per shard instead of one per record — the fast path for
    /// tight logging loops and replay tools.
    pub fn log_many(&self, records: Vec<LogRecord>) -> Result<(), ProvMLError> {
        if let Some(journal) = &self.journal {
            for record in &records {
                journal.append(record)?;
            }
        }
        self.collector.log_many(records)
    }

    // ----- contexts -------------------------------------------------------

    /// Marks a context as started.
    pub fn start_context(&self, context: Context) {
        let _ = self.submit(LogRecord::ContextStart {
            context,
            time_us: now_us(),
        });
    }

    /// Marks a context as ended.
    pub fn end_context(&self, context: Context) {
        let _ = self.submit(LogRecord::ContextEnd {
            context,
            time_us: now_us(),
        });
    }

    // ----- artifacts -------------------------------------------------------

    /// Stores bytes as an artifact in the run directory and logs it.
    pub fn log_artifact_bytes(
        &self,
        name: impl Into<String>,
        bytes: &[u8],
        direction: Direction,
    ) -> Result<ArtifactMeta, ProvMLError> {
        self.log_artifact_bytes_in(name, bytes, direction, None)
    }

    /// Stores bytes as an artifact attached to a specific context.
    pub fn log_artifact_bytes_in(
        &self,
        name: impl Into<String>,
        bytes: &[u8],
        direction: Direction,
        context: Option<Context>,
    ) -> Result<ArtifactMeta, ProvMLError> {
        let name = name.into();
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let stored_path = self.dir.join("artifacts").join(&safe);
        std::fs::write(&stored_path, bytes)?;
        let meta = ArtifactMeta {
            name,
            stored_path,
            sha256: sha256_hex(bytes),
            bytes: bytes.len() as u64,
            direction,
            context,
            logged_at_us: now_us(),
        };
        self.submit(LogRecord::Artifact(meta.clone()))?;
        Ok(meta)
    }

    /// Copies a file into the run directory and logs it as an artifact.
    pub fn log_artifact_file(
        &self,
        path: impl AsRef<Path>,
        direction: Direction,
    ) -> Result<ArtifactMeta, ProvMLError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        self.log_artifact_bytes(name, &bytes, direction)
    }

    /// Logs a model checkpoint (an output artifact in the training
    /// context, typed as a model).
    pub fn log_model(
        &self,
        name: impl Into<String>,
        bytes: &[u8],
    ) -> Result<ArtifactMeta, ProvMLError> {
        self.log_artifact_bytes_in(name, bytes, Direction::Output, Some(Context::Training))
    }

    // ----- plugins ----------------------------------------------------------

    /// Invokes every plugin's periodic hook (call once per step or on a
    /// timer; plugins emit extra metrics through their sink).
    pub fn plugin_tick(&self) {
        let mut plugins = self.plugins.lock();
        let mut sink = PluginSink::new(&self.collector);
        for p in plugins.iter_mut() {
            p.on_tick(&mut sink);
        }
    }

    /// Number of log records accepted so far.
    pub fn records_accepted(&self) -> usize {
        self.collector.accepted()
    }

    /// Blocks until all submitted records are folded into the state.
    pub fn flush(&self) -> Result<(), ProvMLError> {
        self.collector.flush()
    }

    // ----- streaming ----------------------------------------------------------

    /// Builds a cumulative provenance snapshot of the live run — a
    /// valid standalone PROV-JSON document covering everything folded
    /// so far — without finishing the run.
    ///
    /// Each snapshot is a superset of the previous one (elements only
    /// accumulate, relations repeat verbatim), so the service's
    /// delta-merge endpoint folds a stream of them — capped by the
    /// finalize document — into exactly the document a finalize-only
    /// upload would have stored. Metrics are never spilled here (spill
    /// happens at finalize); with an inline spill policy the snapshot
    /// embeds the samples seen so far, otherwise only the series stats.
    /// The run activity's end time reflects the snapshot instant and is
    /// superseded by the next delta.
    pub fn snapshot_document(&self) -> Result<prov_model::ProvDocument, ProvMLError> {
        self.collector.flush()?;
        let state = self.collector.snapshot()?;
        let identity = RunIdentity {
            experiment: self.experiment.clone(),
            run: self.name.clone(),
            user: self.user.clone(),
            started_us: self.started_us,
            ended_us: now_us(),
        };
        let spill = SpillOutcome {
            store_path: None,
            links: Vec::new(),
            external_bytes: 0,
        };
        Ok(build_document(
            &identity,
            &state,
            &spill,
            self.spill.is_inline(),
        ))
    }

    // ----- finish -------------------------------------------------------------

    /// Finishes the run: drains the collector, spills metrics, writes
    /// `prov.json` + `prov.provn`, and returns a report.
    pub fn finish(self) -> Result<RunReport, ProvMLError> {
        self.finish_with_status(RunStatus::Finished)
    }

    /// Finishes the run with a failure marker (still writes provenance —
    /// failed runs are exactly the ones worth auditing).
    pub fn fail(self) -> Result<RunReport, ProvMLError> {
        self.finish_with_status(RunStatus::Failed)
    }

    fn finish_with_status(mut self, status: RunStatus) -> Result<RunReport, ProvMLError> {
        {
            let mut plugins = self.plugins.lock();
            let mut sink = PluginSink::new(&self.collector);
            for p in plugins.iter_mut() {
                p.on_run_end(&mut sink);
            }
        }
        let reg = obs::global();
        // One parent span over the whole finalize pipeline; each stage
        // below opens a child, so the trace shows where a slow finish
        // actually spent its time (the question the aggregate stage
        // histograms cannot answer per-run).
        let mut finalize_trace = obs::trace::span("finalize");
        if obs::trace::is_enabled() {
            finalize_trace.annotate("run", self.name.clone());
        }
        let state = {
            let _trace = obs::trace::span("finalize_drain");
            reg.histogram("yprov4ml_finalize_drain_seconds")
                .time(|| self.collector.close())?
        };
        // The journal is complete once the collector has drained; fsync
        // it (and its directory entry) so the WAL is durable even if
        // writing the provenance files below fails.
        if let Some(journal) = self.journal.take() {
            let _trace = obs::trace::span("finalize_journal_close");
            reg.histogram("yprov4ml_finalize_journal_close_seconds")
                .time(|| journal.close())?;
        }
        let ended_us = now_us();

        let pool = WorkerPool::new(self.finalize.threads);
        let series: Vec<&metric_store::series::MetricSeries> = state.metrics.values().collect();
        let spill = {
            let _trace = obs::trace::span("finalize_spill");
            reg.histogram("yprov4ml_finalize_spill_seconds")
                .time(|| spill_metrics_pooled(&self.dir, &self.spill, &series, &pool))?
        };

        // Snapshot before document building so the delta covers every
        // hot path the run exercised (collector, journal, spill); the
        // emit/write stages below time into the registry for the *next*
        // run's delta rather than their own.
        let overhead = if reg.is_enabled() {
            Some(reg.snapshot().delta_since(&self.obs_start))
        } else {
            None
        };

        let identity = RunIdentity {
            experiment: self.experiment.clone(),
            run: self.name.clone(),
            user: self.user.clone(),
            started_us: self.started_us,
            ended_us,
        };
        let mut doc = {
            let _trace = obs::trace::span("finalize_emit");
            reg.histogram("yprov4ml_finalize_emit_seconds")
                .time(|| build_document(&identity, &state, &spill, self.spill.is_inline()))
        };
        if status == RunStatus::Failed {
            doc.activity(prov_model::QName::new("exp", self.name.clone()))
                .attr(
                    prov_model::QName::yprov("status"),
                    prov_model::AttrValue::from("failed"),
                );
        }
        if let Some(delta) = overhead.filter(|d| !d.is_empty()) {
            emit_overhead(&mut doc, &identity, &delta);
        }
        // Fold in the ops plane's alert state, when a co-located
        // service installed one: breached thresholds become part of
        // the run's provenance, next to the overhead entities.
        if let Some(alerts) = obs::alerts::global() {
            emit_alerts(&mut doc, &identity, &alerts.states());
        }

        let prov_json_path = self.dir.join("prov.json");
        let provn_path = self.dir.join("prov.provn");
        {
            let _trace = obs::trace::span("finalize_write");
            reg.histogram("yprov4ml_finalize_write_seconds")
                .time(|| write_prov_files(&doc, &prov_json_path, &provn_path))?;
        }
        drop(finalize_trace);

        Ok(RunReport {
            experiment: self.experiment,
            run: self.name,
            status,
            prov_json_bytes: std::fs::metadata(&prov_json_path)?.len(),
            prov_json_path,
            provn_path,
            metric_store_path: spill.store_path,
            params: state.params.len(),
            metric_samples: state.metric_samples,
            artifacts: state.artifacts.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;

    fn base(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("yrun_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn full_run_lifecycle() {
        let b = base("lifecycle");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp.start_run("r1").unwrap();
        run.log_param("lr", 0.001);
        run.log_output_param("best_acc", 0.93);
        run.start_context(Context::Training);
        for step in 0..50u64 {
            run.log_metric("loss", Context::Training, step, (step / 10) as u32, 1.0);
        }
        run.end_context(Context::Training);
        run.log_artifact_bytes("data.bin", b"input bytes", Direction::Input)
            .unwrap();
        run.log_model("model.ckpt", b"weights").unwrap();

        let report = run.finish().unwrap();
        assert_eq!(report.status, RunStatus::Finished);
        assert_eq!(report.params, 2);
        assert_eq!(report.metric_samples, 50);
        assert_eq!(report.artifacts, 2);
        assert!(report.prov_json_path.is_file());
        assert!(report.provn_path.is_file());
        assert!(report.prov_json_bytes > 0);

        // The provenance file parses and validates.
        let doc = exp.load_run_document("r1").unwrap();
        assert!(prov_model::validate::is_valid(&doc));
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn artifact_content_addressing() {
        let b = base("artifacts");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp.start_run("r1").unwrap();
        let m1 = run
            .log_artifact_bytes("a.bin", b"same", Direction::Output)
            .unwrap();
        let m2 = run
            .log_artifact_bytes("b.bin", b"same", Direction::Output)
            .unwrap();
        let m3 = run
            .log_artifact_bytes("c.bin", b"different", Direction::Output)
            .unwrap();
        assert_eq!(m1.sha256, m2.sha256);
        assert_ne!(m1.sha256, m3.sha256);
        assert!(m1.stored_path.is_file());
        run.finish().unwrap();
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn spilled_run_writes_store_and_small_prov() {
        let b = base("spill");
        let exp = Experiment::new("e", &b).unwrap();

        let mk = |name: &str, spill: SpillPolicy| {
            let run = exp
                .start_run_with(
                    name,
                    RunOptions {
                        spill,
                        ..Default::default()
                    },
                )
                .unwrap();
            for step in 0..5000u64 {
                run.log_metric_at("loss", Context::Training, step, 0, step as i64, 0.5);
            }
            run.finish().unwrap()
        };

        let inline = mk("inline", SpillPolicy::Inline);
        let zarr = mk("zarr", SpillPolicy::Zarr(Default::default()));
        assert!(inline.metric_store_path.is_none());
        assert!(zarr.metric_store_path.as_ref().unwrap().exists());
        assert!(
            inline.prov_json_bytes > zarr.prov_json_bytes * 5,
            "inline {} vs spilled {}",
            inline.prov_json_bytes,
            zarr.prov_json_bytes
        );
        // Spilled data reads back.
        let series =
            crate::spill::read_spilled(&exp.dir().join("zarr"), "loss", "training").unwrap();
        assert_eq!(series.len(), 5000);
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn concurrent_ranks_log_safely() {
        let b = base("concurrent");
        let exp = Experiment::new("e", &b).unwrap();
        let run = Arc::new(exp.start_run("ddp").unwrap());
        let mut handles = Vec::new();
        for rank in 0..8u32 {
            let run = Arc::clone(&run);
            handles.push(std::thread::spawn(move || {
                for step in 0..500u64 {
                    run.log_metric(
                        format!("loss/rank{rank}"),
                        Context::Training,
                        step,
                        0,
                        step as f64,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let run = Arc::try_unwrap(run).ok().expect("all threads joined");
        let report = run.finish().unwrap();
        assert_eq!(report.metric_samples, 8 * 500);
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn failed_run_is_marked() {
        let b = base("failed");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp.start_run("crash").unwrap();
        run.log_param("lr", 10.0);
        let report = run.fail().unwrap();
        assert_eq!(report.status, RunStatus::Failed);
        let doc = exp.load_run_document("crash").unwrap();
        let act = doc.get(&prov_model::QName::new("exp", "crash")).unwrap();
        assert_eq!(
            act.attr(&prov_model::QName::yprov("status"))
                .and_then(|v| v.as_str()),
            Some("failed")
        );
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn parallel_finalize_run_works() {
        let b = base("parallel");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp
            .start_run_with(
                "r",
                RunOptions {
                    spill: SpillPolicy::Zarr(Default::default()),
                    finalize: FinalizeOptions::with_threads(8),
                    ..Default::default()
                },
            )
            .unwrap();
        run.log_param("lr", 0.01);
        run.start_context(Context::Training);
        let mut batch = Vec::new();
        for step in 0..4000u64 {
            for metric in ["loss", "acc", "grad_norm"] {
                batch.push(LogRecord::Metric {
                    name: metric.to_string(),
                    context: Context::Training,
                    step,
                    epoch: (step / 1000) as u32,
                    time_us: step as i64,
                    value: step as f64 * 0.25,
                });
            }
        }
        run.log_many(batch).unwrap();
        run.end_context(Context::Training);
        let report = run.finish().unwrap();
        assert_eq!(report.metric_samples, 3 * 4000);
        assert_eq!(report.params, 1);
        let series = crate::spill::read_spilled(&exp.dir().join("r"), "acc", "training").unwrap();
        assert_eq!(series.len(), 4000);
        let doc = exp.load_run_document("r").unwrap();
        assert!(prov_model::validate::is_valid(&doc));
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn delta_emitter_cadences() {
        let mut by_epoch = DeltaEmitter::new(DeltaCadence::EveryEpoch);
        let mut fired = Vec::new();
        for step in 0..30u64 {
            if by_epoch.observe(step, (step / 10) as u32) {
                fired.push(step);
            }
        }
        assert_eq!(
            fired,
            vec![10, 20],
            "fires on the first step of a new epoch"
        );
        assert_eq!(by_epoch.emitted(), 2);

        let mut by_steps = DeltaEmitter::new(DeltaCadence::EverySteps(7));
        let fired: Vec<u64> = (0..21u64).filter(|s| by_steps.observe(*s, 0)).collect();
        assert_eq!(fired, vec![6, 13, 20]);

        // A zero stride is clamped to 1, not a division-by-zero foot-gun.
        let mut every = DeltaEmitter::new(DeltaCadence::EverySteps(0));
        assert!(every.observe(0, 0));
    }

    #[test]
    fn streamed_snapshots_fold_into_the_finalized_document() {
        let b = base("stream");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp.start_run("r").unwrap();
        run.log_param("lr", 0.1);
        run.start_context(Context::Training);
        let mut emitter = DeltaEmitter::new(DeltaCadence::EveryEpoch);
        let mut merged: Option<prov_model::ProvDocument> = None;
        for step in 0..30u64 {
            let epoch = (step / 10) as u32;
            run.log_metric_at(
                "loss",
                Context::Training,
                step,
                epoch,
                step as i64,
                1.0 / (step + 1) as f64,
            );
            if emitter.observe(step, epoch) {
                let snap = run.snapshot_document().unwrap();
                assert!(prov_model::validate::is_valid(&snap));
                match &mut merged {
                    None => {
                        let mut base = snap;
                        base.canonicalize();
                        merged = Some(base);
                    }
                    Some(doc) => {
                        doc.apply_delta(&snap).unwrap();
                    }
                }
            }
        }
        assert_eq!(emitter.emitted(), 2);
        run.end_context(Context::Training);
        run.finish().unwrap();

        // The finalize document, applied as the last delta, must leave
        // the streamed replica byte-identical to the canonicalized
        // finalize-only document.
        let final_doc = exp.load_run_document("r").unwrap();
        let mut streamed = merged.unwrap();
        streamed.apply_delta(&final_doc).unwrap();
        let mut expected = final_doc;
        expected.canonicalize();
        assert_eq!(
            streamed.to_json_string().unwrap(),
            expected.to_json_string().unwrap(),
            "streamed snapshots + finalize delta must converge"
        );
        std::fs::remove_dir_all(&b).ok();
    }

    #[test]
    fn synchronous_mode_works() {
        let b = base("sync");
        let exp = Experiment::new("e", &b).unwrap();
        let run = exp
            .start_run_with(
                "r",
                RunOptions {
                    synchronous: true,
                    ..Default::default()
                },
            )
            .unwrap();
        run.log_metric("m", Context::Testing, 0, 0, 1.0);
        assert_eq!(run.records_accepted(), 1);
        run.flush().unwrap();
        let report = run.finish().unwrap();
        assert_eq!(report.metric_samples, 1);
        std::fs::remove_dir_all(&b).ok();
    }
}
