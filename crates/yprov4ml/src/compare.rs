//! Cross-run comparison and search.
//!
//! The paper's §3.2–§3.4 use cases: once runs are stored as provenance
//! documents, a researcher compares hyperparameters against outcomes,
//! searches previous runs similar to a planned one, and picks the best
//! configuration without re-running experiments.

use prov_model::{AttrValue, ProvDocument, QName};
use std::collections::BTreeMap;

/// A flattened view of one run's provenance, convenient for tabular
/// comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Run name (the run activity's local identifier).
    pub run: String,
    /// Parameters recorded on the run activity (`param/<name>`).
    pub params: BTreeMap<String, String>,
    /// Names of the parameters flagged as *inputs* (hyperparameters and
    /// configuration); the rest are derived outputs.
    pub input_params: std::collections::BTreeSet<String>,
    /// Final value of each metric (`<context>/<metric>` → last).
    pub metrics: BTreeMap<String, f64>,
    /// Names of artifacts the run produced.
    pub outputs: Vec<String>,
}

impl RunSummary {
    /// Extracts a summary from a run's provenance document.
    ///
    /// Returns `None` when the document does not contain a
    /// yprov4ml-shaped run activity.
    pub fn from_document(doc: &ProvDocument) -> Option<RunSummary> {
        let run_ty = QName::yprov("RunExecution");
        let activity = doc.iter_elements().find(|e| e.has_type(&run_ty))?;
        let run = activity.id.local().to_string();

        let mut params = BTreeMap::new();
        for (key, values) in &activity.attributes {
            if let Some(name) = key.local().strip_prefix("param/") {
                if let Some(v) = values.first() {
                    params.insert(name.to_string(), v.lexical());
                }
            }
        }
        let input_params: std::collections::BTreeSet<String> = activity
            .attrs(&QName::yprov("input_param"))
            .iter()
            .filter_map(|v| v.as_str().map(str::to_string))
            .collect();

        let metric_ty = QName::yprov("Metric");
        let mut metrics = BTreeMap::new();
        for el in doc.iter_elements().filter(|e| e.has_type(&metric_ty)) {
            let ctx = el
                .attr(&QName::yprov("context"))
                .and_then(AttrValue::as_str)
                .unwrap_or("unknown");
            let name = el.label().unwrap_or(el.id.local());
            if let Some(AttrValue::Double(last)) = el.attr(&QName::yprov("last")) {
                metrics.insert(format!("{ctx}/{name}"), *last);
            }
        }

        let artifact_ty = QName::yprov("Artifact");
        let mut outputs = Vec::new();
        for el in doc.iter_elements().filter(|e| e.has_type(&artifact_ty)) {
            // Outputs are the artifacts with a wasGeneratedBy edge.
            let generated = doc
                .relations_of(prov_model::RelationKind::WasGeneratedBy)
                .any(|r| r.subject == el.id);
            if generated {
                outputs.push(el.label().unwrap_or(el.id.local()).to_string());
            }
        }
        outputs.sort();

        Some(RunSummary {
            run,
            params,
            input_params,
            metrics,
            outputs,
        })
    }
}

/// Compares many runs: which parameters differ, and how a chosen metric
/// responded.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonTable {
    /// Parameter names that differ across at least two runs.
    pub varying_params: Vec<String>,
    /// One row per run: `(run name, varying param values, metric)`.
    pub rows: Vec<(String, Vec<String>, Option<f64>)>,
}

/// Builds a comparison over `summaries` for `metric` (e.g.
/// `"training/loss"`).
pub fn compare_runs(summaries: &[RunSummary], metric: &str) -> ComparisonTable {
    // When runs declare input parameters, only those participate in the
    // "what did the experimenter vary?" question — derived outputs
    // (final loss, energy, ...) trivially differ and would drown the
    // table in noise.
    let any_inputs = summaries.iter().any(|s| !s.input_params.is_empty());
    let relevant = |s: &RunSummary, name: &str| -> bool {
        !any_inputs
            || s.input_params.contains(name)
            || summaries
                .iter()
                .any(|other| other.input_params.contains(name))
    };
    // Find parameters whose value is not constant across runs.
    let mut all_params: BTreeMap<String, Vec<Option<&String>>> = BTreeMap::new();
    for s in summaries {
        for name in s.params.keys() {
            if relevant(s, name) {
                all_params.entry(name.clone()).or_default();
            }
        }
    }
    for values in all_params.values_mut() {
        *values = Vec::new();
    }
    for s in summaries {
        for (name, slot) in all_params.iter_mut() {
            slot.push(s.params.get(name));
        }
    }
    let varying_params: Vec<String> = all_params
        .iter()
        .filter(|(_, vals)| {
            let first = vals.first();
            vals.iter().any(|v| Some(v) != first)
        })
        .map(|(name, _)| name.clone())
        .collect();

    let rows = summaries
        .iter()
        .map(|s| {
            (
                s.run.clone(),
                varying_params
                    .iter()
                    .map(|p| s.params.get(p).cloned().unwrap_or_else(|| "-".into()))
                    .collect(),
                s.metrics.get(metric).copied(),
            )
        })
        .collect();

    ComparisonTable {
        varying_params,
        rows,
    }
}

/// The run whose `metric` is smallest (e.g. best loss). Ties break on
/// run name; runs missing the metric are skipped.
pub fn best_run<'a>(summaries: &'a [RunSummary], metric: &str) -> Option<&'a RunSummary> {
    summaries
        .iter()
        .filter(|s| s.metrics.get(metric).is_some_and(|v| v.is_finite()))
        .min_by(|a, b| {
            let va = a.metrics[metric];
            let vb = b.metrics[metric];
            va.total_cmp(&vb).then_with(|| a.run.cmp(&b.run))
        })
}

/// Similarity between two runs' parameter sets in `[0, 1]`: the
/// fraction of shared keys with equal values (Jaccard-style). Supports
/// the §3.3 "find similar previous experiments" workflow.
pub fn param_similarity(a: &RunSummary, b: &RunSummary) -> f64 {
    let keys: std::collections::BTreeSet<&String> =
        a.params.keys().chain(b.params.keys()).collect();
    if keys.is_empty() {
        return 1.0;
    }
    let matching = keys
        .iter()
        .filter(|k| a.params.contains_key(**k) && a.params.get(**k) == b.params.get(**k))
        .count();
    matching as f64 / keys.len() as f64
}

/// Runs ranked by parameter similarity to `target`, most similar first.
pub fn most_similar<'a>(
    target: &RunSummary,
    candidates: &'a [RunSummary],
) -> Vec<(&'a RunSummary, f64)> {
    let mut scored: Vec<(&RunSummary, f64)> = candidates
        .iter()
        .filter(|c| c.run != target.run)
        .map(|c| (c, param_similarity(target, c)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.run.cmp(&b.0.run)));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(run: &str, lr: &str, batch: &str, loss: f64) -> RunSummary {
        RunSummary {
            run: run.into(),
            params: BTreeMap::from([
                ("learning_rate".to_string(), lr.to_string()),
                ("batch".to_string(), batch.to_string()),
                ("optimizer".to_string(), "adamw".to_string()),
            ]),
            input_params: Default::default(),
            metrics: BTreeMap::from([("training/loss".to_string(), loss)]),
            outputs: vec!["model.ckpt".into()],
        }
    }

    #[test]
    fn varying_params_detected() {
        let runs = vec![
            summary("r1", "0.001", "32", 0.8),
            summary("r2", "0.01", "32", 1.2),
            summary("r3", "0.001", "64", 0.7),
        ];
        let table = compare_runs(&runs, "training/loss");
        assert_eq!(table.varying_params, vec!["batch", "learning_rate"]);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0].2, Some(0.8));
        // Constant param not listed.
        assert!(!table.varying_params.contains(&"optimizer".to_string()));
    }

    #[test]
    fn best_run_minimizes_metric() {
        let runs = vec![
            summary("r1", "0.001", "32", 0.8),
            summary("r2", "0.01", "32", f64::NAN),
            summary("r3", "0.001", "64", 0.7),
        ];
        assert_eq!(best_run(&runs, "training/loss").unwrap().run, "r3");
        assert!(best_run(&runs, "missing/metric").is_none());
    }

    #[test]
    fn similarity_metric() {
        let a = summary("a", "0.001", "32", 0.5);
        let b = summary("b", "0.001", "32", 0.6); // identical params
        let c = summary("c", "0.01", "64", 0.7); // 1 of 3 matches
        assert_eq!(param_similarity(&a, &b), 1.0);
        assert!((param_similarity(&a, &c) - 1.0 / 3.0).abs() < 1e-12);
        let candidates = [b.clone(), c.clone()];
        let ranked = most_similar(&a, &candidates);
        assert_eq!(ranked[0].0.run, "b");
        assert_eq!(ranked[1].0.run, "c");
    }

    #[test]
    fn summary_extraction_from_real_document() {
        use crate::experiment::Experiment;
        use crate::model::{Context, Direction};
        let base = std::env::temp_dir().join(format!("ycompare_{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let exp = Experiment::new("cmp", &base).unwrap();
        let run = exp.start_run("r1").unwrap();
        run.log_param("learning_rate", 0.001);
        for i in 0..10u64 {
            run.log_metric_at(
                "loss",
                Context::Training,
                i,
                0,
                i as i64,
                1.0 / (i + 1) as f64,
            );
        }
        run.log_artifact_bytes("model.ckpt", b"w", Direction::Output)
            .unwrap();
        run.finish().unwrap();

        let doc = exp.load_run_document("r1").unwrap();
        let s = RunSummary::from_document(&doc).unwrap();
        assert_eq!(s.run, "r1");
        assert_eq!(s.params["learning_rate"], "0.001");
        assert!((s.metrics["training/loss"] - 0.1).abs() < 1e-12);
        assert_eq!(s.outputs, vec!["model.ckpt"]);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn non_yprov_documents_yield_none() {
        let doc = ProvDocument::new();
        assert!(RunSummary::from_document(&doc).is_none());
    }
}
