//! Performance forecasting from historical provenance (paper §3.3).
//!
//! "Having access to a dataset that contains fine-grained information
//! about similar applications could help to understand how the
//! architecture would behave when increasing a particular parameter,
//! without having to train the model from scratch each time."
//!
//! [`LogLinearModel`] fits `log(target) = w · [1, log(params),
//! log(samples), log(gpus)]` by least squares over a set of recorded
//! runs, then predicts the target (walltime, energy, loss offset) of a
//! *planned* configuration "with a single inference step". The log-log
//! form is the right inductive bias: every quantity in this domain
//! follows power laws in the scaling variables.
//!
//! The solver is a plain normal-equations Gaussian elimination — four
//! unknowns do not need a linear-algebra crate.

use crate::compare::RunSummary;
use std::collections::BTreeMap;

/// The scaling features of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunFeatures {
    /// Trainable parameters.
    pub params: f64,
    /// Training samples consumed.
    pub samples: f64,
    /// Data-parallel GPUs.
    pub gpus: f64,
}

impl RunFeatures {
    /// Extracts features from a run summary (the parameters the
    /// `ProvenanceObserver` records). Returns `None` when any is
    /// missing or non-positive.
    pub fn from_summary(s: &RunSummary) -> Option<RunFeatures> {
        let get =
            |key: &str| -> Option<f64> { s.params.get(key).and_then(|v| v.parse::<f64>().ok()) };
        let f = RunFeatures {
            params: get("params")?,
            samples: get("samples_seen").or_else(|| get("dataset_samples"))?,
            gpus: get("gpus")?,
        };
        (f.params > 0.0 && f.samples > 0.0 && f.gpus > 0.0).then_some(f)
    }

    fn design_row(&self) -> [f64; 4] {
        [1.0, self.params.ln(), self.samples.ln(), self.gpus.ln()]
    }
}

/// A fitted log-linear power-law model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLinearModel {
    /// Weights for `[1, ln params, ln samples, ln gpus]`.
    pub weights: [f64; 4],
    /// Number of runs it was fitted on.
    pub fitted_on: usize,
    /// Root-mean-square relative error on the training runs.
    pub train_rms_rel_error: f64,
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer runs than unknowns.
    NotEnoughRuns {
        /// Runs provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// A target value was non-positive or non-finite (log undefined).
    BadTarget(f64),
    /// The normal equations were singular (degenerate design, e.g. all
    /// runs share the same configuration).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughRuns { got, need } => {
                write!(f, "need at least {need} runs, got {got}")
            }
            FitError::BadTarget(v) => write!(f, "target {v} is not a positive finite number"),
            FitError::Singular => write!(f, "degenerate design matrix (identical runs?)"),
        }
    }
}

impl std::error::Error for FitError {}

impl LogLinearModel {
    /// Fits the model on `(features, target)` pairs.
    pub fn fit(data: &[(RunFeatures, f64)]) -> Result<LogLinearModel, FitError> {
        const D: usize = 4;
        if data.len() < D {
            return Err(FitError::NotEnoughRuns {
                got: data.len(),
                need: D,
            });
        }
        for (_, y) in data {
            if !(y.is_finite() && *y > 0.0) {
                return Err(FitError::BadTarget(*y));
            }
        }

        // Normal equations: (XᵀX) w = Xᵀy in log space.
        let mut xtx = [[0.0f64; D]; D];
        let mut xty = [0.0f64; D];
        for (f, y) in data {
            let row = f.design_row();
            let ly = y.ln();
            for i in 0..D {
                for j in 0..D {
                    xtx[i][j] += row[i] * row[j];
                }
                xty[i] += row[i] * ly;
            }
        }
        let weights = solve4(xtx, xty).ok_or(FitError::Singular)?;

        let model = LogLinearModel {
            weights,
            fitted_on: data.len(),
            train_rms_rel_error: 0.0,
        };
        let mut sq = 0.0;
        for (f, y) in data {
            let rel = (model.predict(f) - y) / y;
            sq += rel * rel;
        }
        Ok(LogLinearModel {
            train_rms_rel_error: (sq / data.len() as f64).sqrt(),
            ..model
        })
    }

    /// Fits from run summaries, pulling the target from an output
    /// parameter (e.g. `walltime_s`, `energy_kwh`).
    pub fn fit_from_summaries(
        summaries: &[RunSummary],
        target_param: &str,
    ) -> Result<LogLinearModel, FitError> {
        let data: Vec<(RunFeatures, f64)> = summaries
            .iter()
            .filter_map(|s| {
                let f = RunFeatures::from_summary(s)?;
                let y = s.params.get(target_param)?.parse::<f64>().ok()?;
                Some((f, y))
            })
            .collect();
        LogLinearModel::fit(&data)
    }

    /// Predicts the target for a planned configuration.
    pub fn predict(&self, features: &RunFeatures) -> f64 {
        let row = features.design_row();
        let log_y: f64 = row.iter().zip(&self.weights).map(|(x, w)| x * w).sum();
        log_y.exp()
    }

    /// The fitted power-law exponents by feature name.
    pub fn exponents(&self) -> BTreeMap<&'static str, f64> {
        BTreeMap::from([
            ("params", self.weights[1]),
            ("samples", self.weights[2]),
            ("gpus", self.weights[3]),
        ])
    }
}

/// Solves a 4×4 linear system with partial pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> Option<[f64; 4]> {
    const D: usize = 4;
    for col in 0..D {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..D {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in col + 1..D {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, cell) in a[row].iter_mut().enumerate().skip(col) {
                *cell -= factor * pivot_row[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; D];
    for col in (0..D).rev() {
        let mut sum = b[col];
        for k in col + 1..D {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(params: f64, samples: f64, gpus: f64) -> RunFeatures {
        RunFeatures {
            params,
            samples,
            gpus,
        }
    }

    /// Synthetic ground truth: walltime = 3e-12 · params · samples / gpus.
    fn synthetic_walltime(f: &RunFeatures) -> f64 {
        3e-12 * f.params * f.samples / f.gpus
    }

    fn grid() -> Vec<(RunFeatures, f64)> {
        let mut data = Vec::new();
        for params in [1e8, 2e8, 6e8, 1.4e9] {
            for samples in [1e5, 4e5, 8e5] {
                for gpus in [8.0, 32.0, 128.0] {
                    let f = features(params, samples, gpus);
                    data.push((f, synthetic_walltime(&f)));
                }
            }
        }
        data
    }

    #[test]
    fn recovers_exact_power_law() {
        let model = LogLinearModel::fit(&grid()).unwrap();
        assert!(model.train_rms_rel_error < 1e-9, "exact law, exact fit");
        let exp = model.exponents();
        assert!((exp["params"] - 1.0).abs() < 1e-9);
        assert!((exp["samples"] - 1.0).abs() < 1e-9);
        assert!((exp["gpus"] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicts_unseen_configuration() {
        let model = LogLinearModel::fit(&grid()).unwrap();
        // A corner not in the training grid.
        let planned = features(3e8, 2e5, 64.0);
        let predicted = model.predict(&planned);
        let truth = synthetic_walltime(&planned);
        assert!(
            ((predicted - truth) / truth).abs() < 1e-6,
            "predicted {predicted} vs {truth}"
        );
    }

    #[test]
    fn tolerates_noise() {
        let mut data = grid();
        // ±5 % deterministic "noise".
        for (i, (_, y)) in data.iter_mut().enumerate() {
            *y *= 1.0 + 0.05 * ((i as f64 * 0.7).sin());
        }
        let model = LogLinearModel::fit(&data).unwrap();
        assert!(model.train_rms_rel_error < 0.06);
        let planned = features(3e8, 2e5, 64.0);
        let rel = (model.predict(&planned) - synthetic_walltime(&planned)).abs()
            / synthetic_walltime(&planned);
        assert!(rel < 0.1, "rel error {rel}");
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            LogLinearModel::fit(&[]),
            Err(FitError::NotEnoughRuns { .. })
        ));
        // Identical runs → singular.
        let f = features(1e8, 1e5, 8.0);
        let same = vec![(f, 100.0); 10];
        assert!(matches!(
            LogLinearModel::fit(&same),
            Err(FitError::Singular)
        ));
        // Non-positive target.
        let mut data = grid();
        data[0].1 = 0.0;
        assert!(matches!(
            LogLinearModel::fit(&data),
            Err(FitError::BadTarget(_))
        ));
    }

    #[test]
    fn features_from_summary() {
        use std::collections::BTreeMap;
        let s = RunSummary {
            run: "r".into(),
            params: BTreeMap::from([
                ("params".to_string(), "600000000".to_string()),
                ("samples_seen".to_string(), "800000".to_string()),
                ("gpus".to_string(), "64".to_string()),
                ("walltime_s".to_string(), "5400.5".to_string()),
            ]),
            input_params: Default::default(),
            metrics: Default::default(),
            outputs: Vec::new(),
        };
        let f = RunFeatures::from_summary(&s).unwrap();
        assert_eq!(f.gpus, 64.0);
        assert_eq!(f.params, 6e8);
        // Missing a feature → None.
        let mut incomplete = s.clone();
        incomplete.params.remove("gpus");
        assert!(RunFeatures::from_summary(&incomplete).is_none());
    }
}
