//! Property tests on graph invariants over randomly generated PROV
//! documents.

use proptest::prelude::*;
use prov_graph::{execute, subgraph, ProvGraph, Traversal};
use prov_model::query::{Repeat, Step};
use prov_model::{
    ElementFilter, PathQuery, ProvDocument, QName, Relation, RelationKind, StepDirection,
};
use std::collections::BTreeSet;

fn q(i: usize) -> QName {
    QName::new("ex", format!("n{i}"))
}

/// A random document over `n` entities with edges `i -> j` only where
/// `i > j` — guaranteed acyclic.
fn dag_doc(n: usize, edges: &[(usize, usize)]) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    for i in 0..n {
        doc.entity(q(i));
    }
    for &(a, b) in edges {
        let (hi, lo) = (a.max(b), a.min(b));
        if hi != lo {
            doc.was_derived_from(q(hi), q(lo));
        }
    }
    doc
}

/// A document with arbitrary (possibly cyclic) edges.
fn any_doc(n: usize, edges: &[(usize, usize)]) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    for i in 0..n {
        doc.entity(q(i));
    }
    for &(a, b) in edges {
        doc.add_relation(Relation::new(
            RelationKind::WasInfluencedBy,
            q(a % n),
            q(b % n),
        ));
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ancestors_and_descendants_are_dual(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n)).collect();
        let doc = dag_doc(n, &edges);
        let graph = ProvGraph::new(&doc);
        for a in 0..n {
            let anc = graph.ancestors(&q(a));
            for b in anc {
                let desc = graph.descendants(&b);
                prop_assert!(
                    desc.contains(&q(a)),
                    "{} in ancestors({}) but not vice versa", b, a
                );
            }
        }
    }

    #[test]
    fn dags_have_topo_order_respecting_edges(
        n in 2usize..20,
        edges in prop::collection::vec((0usize..20, 0usize..20), 0..60),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n)).collect();
        let doc = dag_doc(n, &edges);
        let graph = ProvGraph::new(&doc);
        prop_assert!(!graph.has_cycle(), "construction is acyclic");
        let order = graph.topo_order().unwrap();
        let pos = |id: &QName| order.iter().position(|x| x == id).unwrap();
        // Every edge hi -> lo must have hi before lo in the order.
        for &(a, b) in &edges {
            let (hi, lo) = (a.max(b), a.min(b));
            if hi != lo {
                prop_assert!(pos(&q(hi)) < pos(&q(lo)));
            }
        }
    }

    #[test]
    fn self_loops_are_cycles(n in 1usize..10, node in 0usize..10) {
        let node = node % n;
        let doc = any_doc(n, &[(node, node)]);
        let graph = ProvGraph::new(&doc);
        prop_assert!(graph.has_cycle());
    }

    #[test]
    fn subgraph_is_closed_and_minimal(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
        keep_bits in prop::collection::vec(any::<bool>(), 15),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n)).collect();
        let doc = dag_doc(n, &edges);
        let keep: BTreeSet<QName> = (0..n)
            .filter(|&i| keep_bits[i])
            .map(q)
            .collect();
        let sub = subgraph(&doc, &keep);
        // Exactly the kept elements appear.
        prop_assert_eq!(sub.element_count(), keep.len());
        // Every relation's endpoints are kept.
        for rel in sub.relations() {
            prop_assert!(keep.contains(&rel.subject));
            prop_assert!(keep.contains(&rel.object));
        }
        // No dropped relation had both endpoints kept.
        let sub_rel_count = sub.relation_count();
        let expect = doc.relations().iter()
            .filter(|r| keep.contains(&r.subject) && keep.contains(&r.object))
            .count();
        prop_assert_eq!(sub_rel_count, expect);
    }

    /// The planned engine's one-plus-step closure query agrees with the
    /// legacy reachability everywhere — including on cyclic graphs,
    /// where the only divergence allowed is the start node itself (the
    /// engine reports a >= 1-hop walk back to it; `ancestors` excludes
    /// it by construction).
    #[test]
    fn engine_closure_matches_legacy_reachability(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
    ) {
        let doc = any_doc(n, &edges);
        let graph = ProvGraph::new(&doc);
        for (direction, legacy) in [
            (StepDirection::Forward, true),
            (StepDirection::Backward, false),
        ] {
            for a in 0..n {
                let query = PathQuery {
                    start: ElementFilter::by_id(q(a)),
                    steps: vec![Step {
                        kinds: Vec::new(),
                        direction,
                        repeat: Repeat::plus(),
                        target: ElementFilter::any(),
                    }],
                    limit: None,
                };
                let result = execute(&graph, &query);
                let mut ends: BTreeSet<QName> =
                    result.rows.iter().map(|r| r.end.clone()).collect();
                ends.remove(&q(a));
                let expect = if legacy {
                    graph.ancestors(&q(a))
                } else {
                    graph.descendants(&q(a))
                };
                prop_assert_eq!(ends, expect, "node {} dir {:?}", a, direction);
            }
        }
    }

    /// The engine's two traversal code paths agree: a bounded walk
    /// (`Traversal::max_depth`, via `engine::walk`) visits exactly the
    /// nodes a `{0,d}`-repeat path query (via `engine::execute`) lands
    /// on.
    #[test]
    fn bounded_walk_matches_bounded_repeat_query(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 0..40),
        depth in 0usize..6,
    ) {
        let doc = any_doc(n, &edges);
        let graph = ProvGraph::new(&doc);
        for a in 0..n {
            let walked: BTreeSet<QName> = Traversal::new(&graph)
                .max_depth(depth)
                .run(&q(a))
                .into_iter()
                .map(|v| v.id)
                .collect();
            let query = PathQuery {
                start: ElementFilter::by_id(q(a)),
                steps: vec![Step {
                    kinds: Vec::new(),
                    direction: StepDirection::Forward,
                    repeat: Repeat { min: 0, max: Some(depth) },
                    target: ElementFilter::any(),
                }],
                limit: None,
            };
            let landed: BTreeSet<QName> = execute(&graph, &query)
                .rows
                .iter()
                .map(|r| r.end.clone())
                .collect();
            prop_assert_eq!(walked, landed, "node {} depth {}", a, depth);
        }
    }

    #[test]
    fn path_endpoints_and_adjacency(
        n in 2usize..15,
        edges in prop::collection::vec((0usize..15, 0usize..15), 1..40),
    ) {
        let edges: Vec<(usize, usize)> = edges.into_iter()
            .map(|(a, b)| (a % n, b % n)).collect();
        let doc = dag_doc(n, &edges);
        let graph = ProvGraph::new(&doc);
        // For each pair, if a path exists its endpoints match and each
        // hop is a real edge.
        let edge_set: BTreeSet<(usize, usize)> = edges.iter()
            .map(|&(a, b)| (a.max(b), a.min(b)))
            .filter(|(a, b)| a != b)
            .collect();
        for a in 0..n {
            for b in 0..n {
                if let Some(path) = graph.path(&q(a), &q(b)) {
                    prop_assert_eq!(path.first().unwrap(), &q(a));
                    prop_assert_eq!(path.last().unwrap(), &q(b));
                    for w in path.windows(2) {
                        let from: usize = w[0].local()[1..].parse().unwrap();
                        let to: usize = w[1].local()[1..].parse().unwrap();
                        prop_assert!(edge_set.contains(&(from, to)),
                            "hop {from}->{to} is not an edge");
                    }
                }
            }
        }
    }
}
