//! Configurable breadth-first / depth-first traversal with edge filters.

use crate::graph::{Edge, ProvGraph};
use prov_model::{QName, RelationKind};
use std::collections::VecDeque;

/// Visit order of a [`Traversal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Breadth-first (level by level; shortest hop distance first).
    BreadthFirst,
    /// Depth-first (follows one lineage chain to its end first).
    DepthFirst,
}

/// Direction of travel along relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow subject → object (towards origins).
    Forward,
    /// Follow object → subject (towards dependents).
    Backward,
}

/// A visited node together with its hop distance from the start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Visit {
    /// The node identifier.
    pub id: QName,
    /// Hops from the traversal start (start itself is depth 0).
    pub depth: usize,
}

/// A configurable graph walk.
///
/// ```
/// # use prov_model::{ProvDocument, QName, RelationKind};
/// # use prov_graph::{ProvGraph, Traversal};
/// # let mut doc = ProvDocument::new();
/// # let a = QName::new("ex", "a"); let b = QName::new("ex", "b");
/// # doc.entity(a.clone()); doc.entity(b.clone());
/// # doc.was_derived_from(a.clone(), b.clone());
/// # let g = ProvGraph::new(&doc);
/// let visits = Traversal::new(&g)
///     .only_kinds(&[RelationKind::WasDerivedFrom])
///     .max_depth(3)
///     .run(&a);
/// assert_eq!(visits.len(), 2); // a itself + b
/// ```
pub struct Traversal<'g, 'a> {
    graph: &'g ProvGraph<'a>,
    order: TraversalOrder,
    direction: Direction,
    kinds: Option<Vec<RelationKind>>,
    max_depth: Option<usize>,
}

impl<'g, 'a> Traversal<'g, 'a> {
    /// A forward breadth-first traversal with no filters.
    pub fn new(graph: &'g ProvGraph<'a>) -> Self {
        Traversal {
            graph,
            order: TraversalOrder::BreadthFirst,
            direction: Direction::Forward,
            kinds: None,
            max_depth: None,
        }
    }

    /// Sets the visit order.
    pub fn order(mut self, order: TraversalOrder) -> Self {
        self.order = order;
        self
    }

    /// Walks towards dependents instead of origins.
    pub fn backward(mut self) -> Self {
        self.direction = Direction::Backward;
        self
    }

    /// Restricts travel to the given relation kinds.
    pub fn only_kinds(mut self, kinds: &[RelationKind]) -> Self {
        self.kinds = Some(kinds.to_vec());
        self
    }

    /// Limits the hop distance (start node is depth 0).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    fn edge_allowed(&self, e: &Edge) -> bool {
        match &self.kinds {
            Some(ks) => ks.contains(&e.kind),
            None => true,
        }
    }

    /// Runs the walk from `start`, returning visits in visit order.
    ///
    /// The start node is included (depth 0). Unknown identifiers yield an
    /// empty result.
    pub fn run(&self, start: &QName) -> Vec<Visit> {
        let Some(s) = self.graph.node(start) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.graph.node_count()];
        seen[s] = true;
        let mut result = vec![Visit {
            id: start.clone(),
            depth: 0,
        }];
        // Deque used as queue (BFS) or stack (DFS).
        let mut work: VecDeque<(usize, usize)> = VecDeque::from([(s, 0)]);

        while let Some((node, depth)) = match self.order {
            TraversalOrder::BreadthFirst => work.pop_front(),
            TraversalOrder::DepthFirst => work.pop_back(),
        } {
            if let Some(max) = self.max_depth {
                if depth >= max {
                    continue;
                }
            }
            let edges: Vec<&Edge> = match self.direction {
                Direction::Forward => self.graph.out_edges(node).collect(),
                Direction::Backward => self.graph.in_edges(node).collect(),
            };
            for e in edges {
                if !self.edge_allowed(e) {
                    continue;
                }
                let next = match self.direction {
                    Direction::Forward => e.to,
                    Direction::Backward => e.from,
                };
                if !seen[next] {
                    seen[next] = true;
                    result.push(Visit {
                        id: self.graph.id(next).clone(),
                        depth: depth + 1,
                    });
                    work.push_back((next, depth + 1));
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::ProvDocument;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// Chain: e0 <-derived- e1 <-derived- e2 <-derived- e3, plus an
    /// attribution edge from e1 to agent g.
    fn chain_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        for i in 0..4 {
            doc.entity(q(&format!("e{i}")));
        }
        doc.agent(q("g"));
        for i in (1..4).rev() {
            doc.was_derived_from(q(&format!("e{i}")), q(&format!("e{}", i - 1)));
        }
        doc.was_attributed_to(q("e1"), q("g"));
        doc
    }

    #[test]
    fn bfs_visits_by_depth() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).run(&q("e3"));
        let depths: Vec<(String, usize)> = visits
            .iter()
            .map(|v| (v.id.local().to_string(), v.depth))
            .collect();
        assert_eq!(depths[0], ("e3".into(), 0));
        assert!(depths.contains(&("e2".into(), 1)));
        assert!(depths.contains(&("e1".into(), 2)));
        assert!(depths.contains(&("e0".into(), 3)));
        assert!(depths.contains(&("g".into(), 3)));
    }

    #[test]
    fn dfs_reaches_same_set() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let bfs: std::collections::BTreeSet<_> = Traversal::new(&g)
            .run(&q("e3"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        let dfs: std::collections::BTreeSet<_> = Traversal::new(&g)
            .order(TraversalOrder::DepthFirst)
            .run(&q("e3"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        assert_eq!(bfs, dfs);
    }

    #[test]
    fn kind_filter_excludes_edges() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g)
            .only_kinds(&[RelationKind::WasDerivedFrom])
            .run(&q("e3"));
        assert!(visits.iter().all(|v| v.id != q("g")), "agent filtered out");
        assert_eq!(visits.len(), 4);
    }

    #[test]
    fn max_depth_truncates() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).max_depth(1).run(&q("e3"));
        assert_eq!(visits.len(), 2); // e3 + e2
        let visits = Traversal::new(&g).max_depth(0).run(&q("e3"));
        assert_eq!(visits.len(), 1);
    }

    #[test]
    fn backward_traversal() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).backward().run(&q("e0"));
        let ids: Vec<_> = visits.iter().map(|v| v.id.local().to_string()).collect();
        assert!(ids.contains(&"e3".to_string()));
        assert_eq!(visits.len(), 4);
    }

    #[test]
    fn unknown_start_is_empty() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        assert!(Traversal::new(&g).run(&q("nope")).is_empty());
    }
}
