//! Configurable breadth-first / depth-first traversal with edge filters.
//!
//! Since the engine refactor, [`Traversal`] is a thin frontend: `run`
//! lowers the builder's configuration to an IR [`Step`]
//! (`prov-model::query`) and delegates to [`crate::engine::walk`], the
//! engine's ordered-traversal primitive, which preserves the original
//! algorithm byte for byte (single deque as queue/stack, nodes recorded
//! at first discovery, start at depth 0).

use crate::engine;
use crate::graph::ProvGraph;
use prov_model::query::{ElementFilter, Repeat, Step, StepDirection};
use prov_model::{QName, RelationKind};

/// Visit order of a [`Traversal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Breadth-first (level by level; shortest hop distance first).
    BreadthFirst,
    /// Depth-first (follows one lineage chain to its end first).
    DepthFirst,
}

/// Direction of travel along relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow subject → object (towards origins).
    Forward,
    /// Follow object → subject (towards dependents).
    Backward,
}

/// A visited node together with its hop distance from the start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Visit {
    /// The node identifier.
    pub id: QName,
    /// Hops from the traversal start (start itself is depth 0).
    pub depth: usize,
}

/// A configurable graph walk.
///
/// ```
/// # use prov_model::{ProvDocument, QName, RelationKind};
/// # use prov_graph::{ProvGraph, Traversal};
/// # let mut doc = ProvDocument::new();
/// # let a = QName::new("ex", "a"); let b = QName::new("ex", "b");
/// # doc.entity(a.clone()); doc.entity(b.clone());
/// # doc.was_derived_from(a.clone(), b.clone());
/// # let g = ProvGraph::new(&doc);
/// let visits = Traversal::new(&g)
///     .only_kinds(&[RelationKind::WasDerivedFrom])
///     .max_depth(3)
///     .run(&a);
/// assert_eq!(visits.len(), 2); // a itself + b
/// ```
pub struct Traversal<'g, 'a> {
    graph: &'g ProvGraph<'a>,
    order: TraversalOrder,
    direction: Direction,
    kinds: Option<Vec<RelationKind>>,
    max_depth: Option<usize>,
}

impl<'g, 'a> Traversal<'g, 'a> {
    /// A forward breadth-first traversal with no filters.
    pub fn new(graph: &'g ProvGraph<'a>) -> Self {
        Traversal {
            graph,
            order: TraversalOrder::BreadthFirst,
            direction: Direction::Forward,
            kinds: None,
            max_depth: None,
        }
    }

    /// Sets the visit order.
    pub fn order(mut self, order: TraversalOrder) -> Self {
        self.order = order;
        self
    }

    /// Walks towards dependents instead of origins.
    pub fn backward(mut self) -> Self {
        self.direction = Direction::Backward;
        self
    }

    /// Restricts travel to the given relation kinds.
    pub fn only_kinds(mut self, kinds: &[RelationKind]) -> Self {
        self.kinds = Some(kinds.to_vec());
        self
    }

    /// Limits the hop distance (start node is depth 0).
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// The builder's configuration as an IR [`Step`]: the walk travels
    /// edges of these kinds in this direction, up to `max_depth` hops.
    fn as_step(&self) -> Step {
        Step {
            kinds: self.kinds.clone().unwrap_or_default(),
            direction: match self.direction {
                Direction::Forward => StepDirection::Forward,
                Direction::Backward => StepDirection::Backward,
            },
            repeat: Repeat {
                min: 0,
                max: self.max_depth,
            },
            target: ElementFilter::any(),
        }
    }

    /// Runs the walk from `start`, returning visits in visit order.
    ///
    /// The start node is included (depth 0). Unknown identifiers yield an
    /// empty result.
    pub fn run(&self, start: &QName) -> Vec<Visit> {
        // `only_kinds(&[])` historically allowed *no* edges (the empty
        // kind list matched nothing), whereas an IR step with no kinds
        // allows every edge — keep the legacy meaning here.
        if matches!(&self.kinds, Some(ks) if ks.is_empty()) {
            return match self.graph.node(start) {
                Some(_) => vec![Visit {
                    id: start.clone(),
                    depth: 0,
                }],
                None => Vec::new(),
            };
        }
        engine::walk(self.graph, &self.as_step(), self.order, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::ProvDocument;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// Chain: e0 <-derived- e1 <-derived- e2 <-derived- e3, plus an
    /// attribution edge from e1 to agent g.
    fn chain_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        for i in 0..4 {
            doc.entity(q(&format!("e{i}")));
        }
        doc.agent(q("g"));
        for i in (1..4).rev() {
            doc.was_derived_from(q(&format!("e{i}")), q(&format!("e{}", i - 1)));
        }
        doc.was_attributed_to(q("e1"), q("g"));
        doc
    }

    #[test]
    fn bfs_visits_by_depth() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).run(&q("e3"));
        let depths: Vec<(String, usize)> = visits
            .iter()
            .map(|v| (v.id.local().to_string(), v.depth))
            .collect();
        assert_eq!(depths[0], ("e3".into(), 0));
        assert!(depths.contains(&("e2".into(), 1)));
        assert!(depths.contains(&("e1".into(), 2)));
        assert!(depths.contains(&("e0".into(), 3)));
        assert!(depths.contains(&("g".into(), 3)));
    }

    #[test]
    fn dfs_reaches_same_set() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let bfs: std::collections::BTreeSet<_> = Traversal::new(&g)
            .run(&q("e3"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        let dfs: std::collections::BTreeSet<_> = Traversal::new(&g)
            .order(TraversalOrder::DepthFirst)
            .run(&q("e3"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        assert_eq!(bfs, dfs);
    }

    #[test]
    fn kind_filter_excludes_edges() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g)
            .only_kinds(&[RelationKind::WasDerivedFrom])
            .run(&q("e3"));
        assert!(visits.iter().all(|v| v.id != q("g")), "agent filtered out");
        assert_eq!(visits.len(), 4);
    }

    #[test]
    fn max_depth_truncates() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).max_depth(1).run(&q("e3"));
        assert_eq!(visits.len(), 2); // e3 + e2
        let visits = Traversal::new(&g).max_depth(0).run(&q("e3"));
        assert_eq!(visits.len(), 1);
    }

    #[test]
    fn backward_traversal() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).backward().run(&q("e0"));
        let ids: Vec<_> = visits.iter().map(|v| v.id.local().to_string()).collect();
        assert!(ids.contains(&"e3".to_string()));
        assert_eq!(visits.len(), 4);
    }

    #[test]
    fn unknown_start_is_empty() {
        let doc = chain_doc();
        let g = ProvGraph::new(&doc);
        assert!(Traversal::new(&g).run(&q("nope")).is_empty());
    }

    /// A 3-cycle a -> b -> c -> a plus a tail c -> d, mixing relation
    /// kinds so the kind filter has something to cut.
    fn cyclic_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        for n in ["a", "b", "c", "d"] {
            doc.entity(q(n));
        }
        doc.was_derived_from(q("a"), q("b"));
        doc.was_derived_from(q("b"), q("c"));
        doc.add_relation(prov_model::Relation::new(
            RelationKind::WasInfluencedBy,
            q("c"),
            q("a"),
        ));
        doc.was_derived_from(q("c"), q("d"));
        doc
    }

    #[test]
    fn cycles_terminate_and_visit_each_node_once() {
        let doc = cyclic_doc();
        let g = ProvGraph::new(&doc);
        for order in [TraversalOrder::BreadthFirst, TraversalOrder::DepthFirst] {
            let visits = Traversal::new(&g).order(order).run(&q("a"));
            let mut ids: Vec<_> = visits.iter().map(|v| v.id.clone()).collect();
            assert_eq!(ids.len(), 4, "every node exactly once");
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 4, "no node revisited");
            // The start is recorded once, at depth 0, despite the cycle
            // offering a 3-hop route back to it.
            assert_eq!(visits[0].id, q("a"));
            assert_eq!(visits[0].depth, 0);
        }
    }

    #[test]
    fn self_loop_is_visited_once() {
        let mut doc = ProvDocument::new();
        doc.entity(q("n"));
        doc.add_relation(prov_model::Relation::new(
            RelationKind::WasInfluencedBy,
            q("n"),
            q("n"),
        ));
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).run(&q("n"));
        assert_eq!(visits.len(), 1);
        assert_eq!(visits[0].depth, 0);
    }

    #[test]
    fn max_depth_zero_on_cycle_is_just_the_start() {
        let doc = cyclic_doc();
        let g = ProvGraph::new(&doc);
        let visits = Traversal::new(&g).max_depth(0).run(&q("a"));
        assert_eq!(visits.len(), 1);
        assert_eq!(
            visits[0],
            Visit {
                id: q("a"),
                depth: 0
            }
        );
    }

    #[test]
    fn backward_traversal_mixes_kinds_unless_filtered() {
        let doc = cyclic_doc();
        let g = ProvGraph::new(&doc);
        // Backward from a: b derives a? No — a derives from b. The
        // in-edges of a are the influence edge c -> a only.
        let ids: Vec<_> = Traversal::new(&g)
            .backward()
            .run(&q("a"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        assert!(ids.contains(&q("c")), "influence edge walked backward");
        assert!(ids.contains(&q("b")), "derivation then walked backward");
        // Filtering to derivations cuts the influence hop, so backward
        // from a goes nowhere.
        let ids: Vec<_> = Traversal::new(&g)
            .backward()
            .only_kinds(&[RelationKind::WasDerivedFrom])
            .run(&q("a"))
            .into_iter()
            .map(|v| v.id)
            .collect();
        assert_eq!(ids, vec![q("a")]);
    }
}
