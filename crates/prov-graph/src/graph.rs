//! Adjacency-indexed view of a PROV document.

use prov_model::{Element, ProvDocument, QName, RelationKind};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// One directed edge of the provenance graph.
///
/// `from` is the relation subject, `to` the object; `relation` indexes
/// into [`ProvGraph::document`]'s relation list for full details.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the source node.
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// The relation kind of this edge.
    pub kind: RelationKind,
    /// Index of the relation in the document's relation list.
    pub relation: usize,
}

/// Number of [`RelationKind`] variants — the size of the per-kind edge
/// counter array kept by [`GraphIndex`].
const KIND_SLOTS: usize = 14;

/// Node/edge statistics of a [`GraphIndex`]: totals plus edge counts per
/// relation kind. These are the planner's cost-model inputs
/// (`prov-graph::engine`) and the payload of the service's `/stats`
/// endpoint — one source of truth for both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphIndexStats {
    /// Total nodes (declared elements plus dangling references).
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
    /// Edge count per relation kind, in [`RelationKind::all`] order,
    /// zero-count kinds included.
    pub per_kind: Vec<(RelationKind, usize)>,
}

impl GraphIndexStats {
    /// Mean out-degree (= mean in-degree) across all nodes; 0 for an
    /// empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edges as f64 / self.nodes as f64
        }
    }
}

/// The borrow-free adjacency index under a [`ProvGraph`]: interned node
/// ids, edges, and in/out adjacency lists — everything the graph knows
/// except the document reference itself.
///
/// Separating the index from the borrow lets it be built once, wrapped
/// in an [`Arc`], and shared across many short-lived [`ProvGraph`]
/// views (see [`SharedGraph`]) — the basis of the service's per-document
/// index cache.
pub struct GraphIndex {
    ids: Vec<QName>,
    index: HashMap<QName, usize>,
    edges: Vec<Edge>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
    // Edge counts per relation kind, indexed by `kind as usize`
    // (variant order == RelationKind::all() order). Maintained on build
    // and on every incremental extension, so stats are O(1) to read.
    kind_counts: [usize; KIND_SLOTS],
}

impl GraphIndex {
    /// Indexes a document. Cost is `O(elements + relations)`.
    pub fn build(doc: &ProvDocument) -> Self {
        let mut ids = Vec::new();
        let mut index = HashMap::new();
        let intern = |q: &QName, ids: &mut Vec<QName>, index: &mut HashMap<QName, usize>| {
            *index.entry(q.clone()).or_insert_with(|| {
                ids.push(q.clone());
                ids.len() - 1
            })
        };

        for el in doc.iter_elements() {
            intern(&el.id, &mut ids, &mut index);
        }
        let mut edges = Vec::with_capacity(doc.relation_count());
        for (ri, rel) in doc.relations().iter().enumerate() {
            let from = intern(&rel.subject, &mut ids, &mut index);
            let to = intern(&rel.object, &mut ids, &mut index);
            edges.push(Edge {
                from,
                to,
                kind: rel.kind,
                relation: ri,
            });
        }

        let mut out = vec![Vec::new(); ids.len()];
        let mut inn = vec![Vec::new(); ids.len()];
        let mut kind_counts = [0usize; KIND_SLOTS];
        for (ei, e) in edges.iter().enumerate() {
            out[e.from].push(ei);
            inn[e.to].push(ei);
            kind_counts[e.kind as usize] += 1;
        }

        GraphIndex {
            ids,
            index,
            edges,
            out,
            inn,
            kind_counts,
        }
    }

    /// Number of nodes (declared elements plus dangling references).
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges of one relation kind — an O(1) counter read,
    /// maintained across builds and incremental extensions.
    pub fn kind_count(&self, kind: RelationKind) -> usize {
        self.kind_counts[kind as usize]
    }

    /// Snapshot of the index statistics (totals + per-kind counts).
    pub fn stats(&self) -> GraphIndexStats {
        GraphIndexStats {
            nodes: self.node_count(),
            edges: self.edge_count(),
            per_kind: RelationKind::all()
                .iter()
                .map(|&k| (k, self.kind_counts[k as usize]))
                .collect(),
        }
    }

    /// Extends this index to cover `merged`, a document produced by
    /// applying a delta onto the document this index was built from
    /// (see `ProvDocument::apply_delta`). `new_positions` must be the
    /// ascending positions of the delta's relations within `merged`'s
    /// relation list.
    ///
    /// Only the new relations and their endpoints are indexed; existing
    /// nodes, edges and adjacency lists are reused, so the cost is
    /// `O(existing relations)` for the relation-index remap plus
    /// `O(delta)` — no wholesale rebuild. New edges land at the tail of
    /// the edge list (edge order is internal; traversals don't depend
    /// on it), and node indices of pre-existing nodes are unchanged.
    pub fn extended(&self, merged: &ProvDocument, new_positions: &[usize]) -> GraphIndex {
        // Splicing the delta's relations shifted the old relations'
        // positions; rebuild the old-index → merged-index map by
        // walking around the inserted positions.
        let mut old_to_new = Vec::with_capacity(self.edges.len());
        let mut inserted = new_positions.iter().copied().peekable();
        for i in 0..merged.relation_count() {
            if inserted.peek() == Some(&i) {
                inserted.next();
            } else {
                old_to_new.push(i);
            }
        }
        debug_assert_eq!(old_to_new.len(), self.edges.len());

        let mut ids = self.ids.clone();
        let mut index = self.index.clone();
        let mut edges = self.edges.clone();
        let mut out = self.out.clone();
        let mut inn = self.inn.clone();
        let mut kind_counts = self.kind_counts;
        for e in &mut edges {
            e.relation = old_to_new[e.relation];
        }

        let intern = |q: &QName, ids: &mut Vec<QName>, index: &mut HashMap<QName, usize>| {
            *index.entry(q.clone()).or_insert_with(|| {
                ids.push(q.clone());
                ids.len() - 1
            })
        };
        // Elements the delta introduced without any relation still need
        // nodes, exactly as a fresh build would give them.
        for el in merged.iter_elements() {
            intern(&el.id, &mut ids, &mut index);
        }
        for &pos in new_positions {
            let rel = &merged.relations()[pos];
            let from = intern(&rel.subject, &mut ids, &mut index);
            let to = intern(&rel.object, &mut ids, &mut index);
            out.resize(ids.len(), Vec::new());
            inn.resize(ids.len(), Vec::new());
            let ei = edges.len();
            edges.push(Edge {
                from,
                to,
                kind: rel.kind,
                relation: pos,
            });
            out[from].push(ei);
            inn[to].push(ei);
            kind_counts[rel.kind as usize] += 1;
        }
        out.resize(ids.len(), Vec::new());
        inn.resize(ids.len(), Vec::new());

        GraphIndex {
            ids,
            index,
            edges,
            out,
            inn,
            kind_counts,
        }
    }
}

/// An adjacency-indexed graph over a borrowed [`ProvDocument`].
///
/// Node indices are dense (`0..node_count()`); identifiers that only
/// appear in relations (dangling references) still get nodes so traversal
/// works on partially declared documents.
pub struct ProvGraph<'a> {
    doc: &'a ProvDocument,
    index: Arc<GraphIndex>,
}

impl<'a> ProvGraph<'a> {
    /// Indexes a document. Cost is `O(elements + relations)`.
    pub fn new(doc: &'a ProvDocument) -> Self {
        ProvGraph {
            doc,
            index: Arc::new(GraphIndex::build(doc)),
        }
    }

    /// A graph view reusing a prebuilt index. The index must have been
    /// built from `doc` (or an identical document) — node and relation
    /// indices are interpreted against it.
    pub fn with_index(doc: &'a ProvDocument, index: Arc<GraphIndex>) -> Self {
        debug_assert_eq!(index.edges.len(), doc.relation_count());
        ProvGraph { doc, index }
    }

    /// The underlying document.
    pub fn document(&self) -> &'a ProvDocument {
        self.doc
    }

    /// The shared adjacency index.
    pub fn index(&self) -> &Arc<GraphIndex> {
        &self.index
    }

    /// Number of nodes (declared elements plus dangling references).
    pub fn node_count(&self) -> usize {
        self.index.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.index.edges.len()
    }

    /// Index statistics (totals + per-relation-kind edge counts).
    pub fn stats(&self) -> GraphIndexStats {
        self.index.stats()
    }

    /// The node index for an identifier, if present.
    pub fn node(&self, id: &QName) -> Option<usize> {
        self.index.index.get(id).copied()
    }

    /// The identifier of node `i`.
    pub fn id(&self, i: usize) -> &QName {
        &self.index.ids[i]
    }

    /// The declared element of node `i`, if it was declared.
    pub fn element(&self, i: usize) -> Option<&'a Element> {
        self.doc.get(&self.index.ids[i])
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.index.edges
    }

    /// Outgoing edges of node `i` (towards its origins).
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = &Edge> {
        self.index.out[i]
            .iter()
            .map(move |&ei| &self.index.edges[ei])
    }

    /// Incoming edges of node `i` (from its dependents).
    pub fn in_edges(&self, i: usize) -> impl Iterator<Item = &Edge> {
        self.index.inn[i]
            .iter()
            .map(move |&ei| &self.index.edges[ei])
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        self.index.out[i].len()
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.index.inn[i].len()
    }

    /// Identifiers of everything reachable by out-edges from `id`
    /// (the *origins* / provenance closure), excluding `id` itself.
    pub fn ancestors(&self, id: &QName) -> BTreeSet<QName> {
        self.reach(id, true)
    }

    /// Identifiers of everything reachable by in-edges from `id`
    /// (everything *influenced by* it), excluding `id` itself.
    pub fn descendants(&self, id: &QName) -> BTreeSet<QName> {
        self.reach(id, false)
    }

    fn reach(&self, id: &QName, forward: bool) -> BTreeSet<QName> {
        let idx = &*self.index;
        let Some(start) = self.node(id) else {
            return BTreeSet::new();
        };
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut result = BTreeSet::new();
        while let Some(n) = stack.pop() {
            let adj = if forward { &idx.out[n] } else { &idx.inn[n] };
            for &ei in adj {
                let next = if forward {
                    idx.edges[ei].to
                } else {
                    idx.edges[ei].from
                };
                if !seen[next] {
                    seen[next] = true;
                    result.insert(idx.ids[next].clone());
                    stack.push(next);
                }
            }
        }
        result
    }

    /// Shortest path (by hop count, following out-edges) between two
    /// identifiers, inclusive of both endpoints.
    pub fn path(&self, from: &QName, to: &QName) -> Option<Vec<QName>> {
        let idx = &*self.index;
        let (s, t) = (self.node(from)?, self.node(to)?);
        if s == t {
            return Some(vec![from.clone()]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.node_count()];
        let mut queue = std::collections::VecDeque::from([s]);
        let mut seen = vec![false; self.node_count()];
        seen[s] = true;
        while let Some(n) = queue.pop_front() {
            for &ei in &idx.out[n] {
                let next = idx.edges[ei].to;
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some(n);
                    if next == t {
                        let mut path = vec![t];
                        let mut cur = t;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path.into_iter().map(|i| idx.ids[i].clone()).collect());
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Topological order of the nodes (origins last), or `None` when the
    /// graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<QName>> {
        let idx = &*self.index;
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_degree(i)).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(idx.ids[i].clone());
            for &ei in &idx.out[i] {
                let t = idx.edges[ei].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True when the provenance graph contains a cycle.
    ///
    /// Cycles are structurally impossible in honest provenance (nothing
    /// can precede its own origin), so a cycle indicates a malformed or
    /// adversarial document.
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_none()
    }

    /// Nodes with no outgoing edges — the ultimate sources (e.g. raw
    /// datasets, initial configurations).
    pub fn roots(&self) -> Vec<QName> {
        (0..self.node_count())
            .filter(|&i| self.out_degree(i) == 0)
            .map(|i| self.index.ids[i].clone())
            .collect()
    }

    /// Nodes with no incoming edges — final products nothing else used.
    pub fn leaves(&self) -> Vec<QName> {
        (0..self.node_count())
            .filter(|&i| self.in_degree(i) == 0)
            .map(|i| self.index.ids[i].clone())
            .collect()
    }
}

/// An owning, cheaply clonable graph: `Arc<ProvDocument>` plus
/// `Arc<GraphIndex>`.
///
/// Where [`ProvGraph`] borrows its document (right for one-shot
/// analysis), `SharedGraph` is built once and handed out across threads
/// and requests — cloning is two `Arc` bumps, and [`SharedGraph::view`]
/// reconstitutes a full `ProvGraph` without re-indexing. This is the
/// unit the provenance service caches per stored document.
#[derive(Clone)]
pub struct SharedGraph {
    doc: Arc<ProvDocument>,
    index: Arc<GraphIndex>,
}

impl SharedGraph {
    /// Indexes `doc` once. Cost is `O(elements + relations)`; every
    /// subsequent [`view`](Self::view) is `O(1)`.
    pub fn new(doc: Arc<ProvDocument>) -> Self {
        let index = Arc::new(GraphIndex::build(&doc));
        SharedGraph { doc, index }
    }

    /// Assembles a shared graph from a document and an index already
    /// known to describe it — e.g. one produced by
    /// [`GraphIndex::extended`] alongside the merged document. The
    /// index must have exactly one edge per document relation.
    pub fn from_parts(doc: Arc<ProvDocument>, index: Arc<GraphIndex>) -> Self {
        debug_assert_eq!(index.edges.len(), doc.relation_count());
        SharedGraph { doc, index }
    }

    /// The shared document.
    pub fn document(&self) -> &Arc<ProvDocument> {
        &self.doc
    }

    /// The shared adjacency index.
    pub fn index(&self) -> &Arc<GraphIndex> {
        &self.index
    }

    /// A borrowed [`ProvGraph`] over the shared state — all traversal
    /// and query methods, no re-indexing.
    pub fn view(&self) -> ProvGraph<'_> {
        ProvGraph {
            doc: &self.doc,
            index: Arc::clone(&self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// data -> used by train -> generates model -> used by eval -> report
    fn pipeline_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data"));
        doc.activity(q("train"));
        doc.entity(q("model"));
        doc.activity(q("eval"));
        doc.entity(q("report"));
        doc.used(q("train"), q("data"));
        doc.was_generated_by(q("model"), q("train"));
        doc.used(q("eval"), q("model"));
        doc.was_generated_by(q("report"), q("eval"));
        doc
    }

    #[test]
    fn counts_and_lookup() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.node(&q("model")).is_some());
        assert!(g.node(&q("ghost")).is_none());
        let i = g.node(&q("model")).unwrap();
        assert_eq!(g.id(i), &q("model"));
        assert!(g.element(i).is_some());
    }

    #[test]
    fn kind_counts_track_builds_and_extensions() {
        let mut doc = pipeline_doc();
        doc.canonicalize();
        let index = GraphIndex::build(&doc);
        assert_eq!(index.kind_count(RelationKind::Used), 2);
        assert_eq!(index.kind_count(RelationKind::WasGeneratedBy), 2);
        assert_eq!(index.kind_count(RelationKind::WasDerivedFrom), 0);
        let stats = index.stats();
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.edges, 4);
        assert_eq!(stats.per_kind.len(), RelationKind::all().len());
        assert_eq!(
            stats.per_kind.iter().map(|(_, n)| n).sum::<usize>(),
            stats.edges,
            "per-kind counts partition the edge total"
        );

        // Incremental extension keeps the counters in sync with a
        // fresh build.
        let mut delta = ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.entity(q("ckpt"));
        delta.was_derived_from(q("ckpt"), q("data"));
        let applied = doc.apply_delta(&delta).unwrap();
        let ext = index.extended(&doc, &applied.new_relations);
        assert_eq!(ext.stats(), GraphIndex::build(&doc).stats());
        assert_eq!(ext.kind_count(RelationKind::WasDerivedFrom), 1);
    }

    #[test]
    fn ancestors_follow_provenance() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let anc = g.ancestors(&q("report"));
        assert!(anc.contains(&q("eval")));
        assert!(anc.contains(&q("model")));
        assert!(anc.contains(&q("train")));
        assert!(anc.contains(&q("data")));
        assert!(!anc.contains(&q("report")));
        assert!(g.ancestors(&q("data")).is_empty());
    }

    #[test]
    fn descendants_follow_influence() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let desc = g.descendants(&q("data"));
        assert_eq!(desc.len(), 4);
        assert!(desc.contains(&q("report")));
        assert!(g.descendants(&q("report")).is_empty());
        assert!(g.descendants(&q("missing")).is_empty());
    }

    #[test]
    fn path_finds_lineage_chain() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let p = g.path(&q("report"), &q("data")).unwrap();
        assert_eq!(
            p,
            vec![q("report"), q("eval"), q("model"), q("train"), q("data")]
        );
        assert!(
            g.path(&q("data"), &q("report")).is_none(),
            "wrong direction"
        );
        assert_eq!(g.path(&q("data"), &q("data")).unwrap(), vec![q("data")]);
    }

    #[test]
    fn topo_order_and_acyclicity() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert!(!g.has_cycle());
        let order = g.topo_order().unwrap();
        let pos = |id: &QName| order.iter().position(|x| x == id).unwrap();
        assert!(pos(&q("report")) < pos(&q("eval")));
        assert!(pos(&q("model")) < pos(&q("train")));
        assert!(pos(&q("train")) < pos(&q("data")));
    }

    #[test]
    fn cycle_detection() {
        let mut doc = ProvDocument::new();
        doc.entity(q("a"));
        doc.entity(q("b"));
        doc.was_derived_from(q("a"), q("b"));
        doc.was_derived_from(q("b"), q("a"));
        let g = ProvGraph::new(&doc);
        assert!(g.has_cycle());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn dangling_references_become_nodes() {
        let mut doc = ProvDocument::new();
        doc.activity(q("train"));
        doc.used(q("train"), q("undeclared"));
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 2);
        let i = g.node(&q("undeclared")).unwrap();
        assert!(g.element(i).is_none(), "undeclared node has no element");
    }

    #[test]
    fn roots_and_leaves() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.roots(), vec![q("data")]);
        assert_eq!(g.leaves(), vec![q("report")]);
    }

    #[test]
    fn empty_graph() {
        let doc = ProvDocument::new();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_cycle());
        assert!(g.topo_order().unwrap().is_empty());
    }

    #[test]
    fn shared_graph_views_reuse_one_index() {
        let doc = Arc::new(pipeline_doc());
        let shared = SharedGraph::new(Arc::clone(&doc));
        let a = shared.view();
        let b = shared.view();
        assert!(Arc::ptr_eq(a.index(), b.index()), "views share the index");
        assert_eq!(a.ancestors(&q("report")), b.ancestors(&q("report")));
        // Clones are shallow.
        let clone = shared.clone();
        assert!(Arc::ptr_eq(clone.index(), shared.index()));
        assert!(Arc::ptr_eq(clone.document(), shared.document()));
    }

    /// The extended index must answer every query exactly like an index
    /// built from scratch over the merged document.
    fn assert_matches_fresh(doc: &ProvDocument, ext: GraphIndex, locals: &[&str]) {
        let fresh = GraphIndex::build(doc);
        assert_eq!(ext.node_count(), fresh.node_count());
        assert_eq!(ext.edge_count(), fresh.edge_count());
        let ge = ProvGraph::with_index(doc, Arc::new(ext));
        let gf = ProvGraph::with_index(doc, Arc::new(fresh));
        for local in locals {
            let id = q(local);
            assert_eq!(ge.ancestors(&id), gf.ancestors(&id), "ancestors of {local}");
            assert_eq!(
                ge.descendants(&id),
                gf.descendants(&id),
                "descendants of {local}"
            );
        }
        let mut roots_e = ge.roots();
        let mut roots_f = gf.roots();
        roots_e.sort();
        roots_f.sort();
        assert_eq!(roots_e, roots_f);
        // Edge → relation back-pointers survived the remap.
        for e in ge.edges() {
            let rel = &ge.document().relations()[e.relation];
            assert_eq!(ge.id(e.from), &rel.subject);
            assert_eq!(ge.id(e.to), &rel.object);
            assert_eq!(e.kind, rel.kind);
        }
    }

    #[test]
    fn extended_index_matches_fresh_build() {
        let mut doc = pipeline_doc();
        doc.canonicalize();
        let base = GraphIndex::build(&doc);

        let mut delta = ProvDocument::new();
        delta.namespaces_mut().register("ex", "http://ex/").unwrap();
        delta.entity(q("report2"));
        delta.entity(q("isolated"));
        delta.was_generated_by(q("report2"), q("eval"));
        delta.used(q("eval"), q("data"));
        delta.was_generated_by(q("report"), q("eval")); // exact duplicate — no edge

        let applied = doc.apply_delta(&delta).unwrap();
        assert_eq!(applied.new_relations.len(), 2);
        let ext = base.extended(&doc, &applied.new_relations);
        assert_matches_fresh(
            &doc,
            ext,
            &[
                "data", "train", "model", "eval", "report", "report2", "isolated",
            ],
        );
    }

    #[test]
    fn repeated_extension_stays_consistent() {
        let mut doc = pipeline_doc();
        doc.canonicalize();
        let mut index = GraphIndex::build(&doc);
        for round in 0..3 {
            let mut delta = ProvDocument::new();
            delta.namespaces_mut().register("ex", "http://ex/").unwrap();
            let ckpt = format!("ckpt{round}");
            delta.entity(q(&ckpt));
            delta.was_generated_by(q(&ckpt), q("train"));
            delta.was_derived_from(q(&ckpt), q("data"));
            let applied = doc.apply_delta(&delta).unwrap();
            index = index.extended(&doc, &applied.new_relations);
        }
        assert_matches_fresh(
            &doc,
            index,
            &["data", "train", "model", "ckpt0", "ckpt1", "ckpt2"],
        );
    }

    #[test]
    fn from_parts_assembles_shared_graph() {
        let doc = Arc::new(pipeline_doc());
        let index = Arc::new(GraphIndex::build(&doc));
        let shared = SharedGraph::from_parts(Arc::clone(&doc), Arc::clone(&index));
        assert!(Arc::ptr_eq(shared.index(), &index));
        assert!(Arc::ptr_eq(shared.document(), &doc));
        assert_eq!(shared.view().ancestors(&q("report")).len(), 4);
    }

    #[test]
    fn with_index_reconstitutes_a_view() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let idx = Arc::clone(g.index());
        let g2 = ProvGraph::with_index(&doc, idx);
        assert_eq!(g2.node_count(), 5);
        assert_eq!(g2.roots(), vec![q("data")]);
    }
}
