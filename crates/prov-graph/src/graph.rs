//! Adjacency-indexed view of a PROV document.

use prov_model::{Element, ProvDocument, QName, RelationKind};
use std::collections::{BTreeSet, HashMap};

/// One directed edge of the provenance graph.
///
/// `from` is the relation subject, `to` the object; `relation` indexes
/// into [`ProvGraph::document`]'s relation list for full details.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the source node.
    pub from: usize,
    /// Index of the target node.
    pub to: usize,
    /// The relation kind of this edge.
    pub kind: RelationKind,
    /// Index of the relation in the document's relation list.
    pub relation: usize,
}

/// An adjacency-indexed graph over a borrowed [`ProvDocument`].
///
/// Node indices are dense (`0..node_count()`); identifiers that only
/// appear in relations (dangling references) still get nodes so traversal
/// works on partially declared documents.
pub struct ProvGraph<'a> {
    doc: &'a ProvDocument,
    ids: Vec<QName>,
    index: HashMap<QName, usize>,
    edges: Vec<Edge>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
}

impl<'a> ProvGraph<'a> {
    /// Indexes a document. Cost is `O(elements + relations)`.
    pub fn new(doc: &'a ProvDocument) -> Self {
        let mut ids = Vec::new();
        let mut index = HashMap::new();
        let intern = |q: &QName, ids: &mut Vec<QName>, index: &mut HashMap<QName, usize>| {
            *index.entry(q.clone()).or_insert_with(|| {
                ids.push(q.clone());
                ids.len() - 1
            })
        };

        for el in doc.iter_elements() {
            intern(&el.id, &mut ids, &mut index);
        }
        let mut edges = Vec::with_capacity(doc.relation_count());
        for (ri, rel) in doc.relations().iter().enumerate() {
            let from = intern(&rel.subject, &mut ids, &mut index);
            let to = intern(&rel.object, &mut ids, &mut index);
            edges.push(Edge {
                from,
                to,
                kind: rel.kind,
                relation: ri,
            });
        }

        let mut out = vec![Vec::new(); ids.len()];
        let mut inn = vec![Vec::new(); ids.len()];
        for (ei, e) in edges.iter().enumerate() {
            out[e.from].push(ei);
            inn[e.to].push(ei);
        }

        ProvGraph {
            doc,
            ids,
            index,
            edges,
            out,
            inn,
        }
    }

    /// The underlying document.
    pub fn document(&self) -> &'a ProvDocument {
        self.doc
    }

    /// Number of nodes (declared elements plus dangling references).
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node index for an identifier, if present.
    pub fn node(&self, id: &QName) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The identifier of node `i`.
    pub fn id(&self, i: usize) -> &QName {
        &self.ids[i]
    }

    /// The declared element of node `i`, if it was declared.
    pub fn element(&self, i: usize) -> Option<&'a Element> {
        self.doc.get(&self.ids[i])
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of node `i` (towards its origins).
    pub fn out_edges(&self, i: usize) -> impl Iterator<Item = &Edge> {
        self.out[i].iter().map(move |&ei| &self.edges[ei])
    }

    /// Incoming edges of node `i` (from its dependents).
    pub fn in_edges(&self, i: usize) -> impl Iterator<Item = &Edge> {
        self.inn[i].iter().map(move |&ei| &self.edges[ei])
    }

    /// Out-degree of node `i`.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out[i].len()
    }

    /// In-degree of node `i`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.inn[i].len()
    }

    /// Identifiers of everything reachable by out-edges from `id`
    /// (the *origins* / provenance closure), excluding `id` itself.
    pub fn ancestors(&self, id: &QName) -> BTreeSet<QName> {
        self.reach(id, true)
    }

    /// Identifiers of everything reachable by in-edges from `id`
    /// (everything *influenced by* it), excluding `id` itself.
    pub fn descendants(&self, id: &QName) -> BTreeSet<QName> {
        self.reach(id, false)
    }

    fn reach(&self, id: &QName, forward: bool) -> BTreeSet<QName> {
        let Some(start) = self.node(id) else {
            return BTreeSet::new();
        };
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![start];
        seen[start] = true;
        let mut result = BTreeSet::new();
        while let Some(n) = stack.pop() {
            let adj = if forward { &self.out[n] } else { &self.inn[n] };
            for &ei in adj {
                let next = if forward {
                    self.edges[ei].to
                } else {
                    self.edges[ei].from
                };
                if !seen[next] {
                    seen[next] = true;
                    result.insert(self.ids[next].clone());
                    stack.push(next);
                }
            }
        }
        result
    }

    /// Shortest path (by hop count, following out-edges) between two
    /// identifiers, inclusive of both endpoints.
    pub fn path(&self, from: &QName, to: &QName) -> Option<Vec<QName>> {
        let (s, t) = (self.node(from)?, self.node(to)?);
        if s == t {
            return Some(vec![from.clone()]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.node_count()];
        let mut queue = std::collections::VecDeque::from([s]);
        let mut seen = vec![false; self.node_count()];
        seen[s] = true;
        while let Some(n) = queue.pop_front() {
            for &ei in &self.out[n] {
                let next = self.edges[ei].to;
                if !seen[next] {
                    seen[next] = true;
                    prev[next] = Some(n);
                    if next == t {
                        let mut path = vec![t];
                        let mut cur = t;
                        while let Some(p) = prev[cur] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path.into_iter().map(|i| self.ids[i].clone()).collect());
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Topological order of the nodes (origins last), or `None` when the
    /// graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<QName>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|i| self.in_degree(i)).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(self.ids[i].clone());
            for &ei in &self.out[i] {
                let t = self.edges[ei].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push_back(t);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// True when the provenance graph contains a cycle.
    ///
    /// Cycles are structurally impossible in honest provenance (nothing
    /// can precede its own origin), so a cycle indicates a malformed or
    /// adversarial document.
    pub fn has_cycle(&self) -> bool {
        self.topo_order().is_none()
    }

    /// Nodes with no outgoing edges — the ultimate sources (e.g. raw
    /// datasets, initial configurations).
    pub fn roots(&self) -> Vec<QName> {
        (0..self.node_count())
            .filter(|&i| self.out_degree(i) == 0)
            .map(|i| self.ids[i].clone())
            .collect()
    }

    /// Nodes with no incoming edges — final products nothing else used.
    pub fn leaves(&self) -> Vec<QName> {
        (0..self.node_count())
            .filter(|&i| self.in_degree(i) == 0)
            .map(|i| self.ids[i].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// data -> used by train -> generates model -> used by eval -> report
    fn pipeline_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data"));
        doc.activity(q("train"));
        doc.entity(q("model"));
        doc.activity(q("eval"));
        doc.entity(q("report"));
        doc.used(q("train"), q("data"));
        doc.was_generated_by(q("model"), q("train"));
        doc.used(q("eval"), q("model"));
        doc.was_generated_by(q("report"), q("eval"));
        doc
    }

    #[test]
    fn counts_and_lookup() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert!(g.node(&q("model")).is_some());
        assert!(g.node(&q("ghost")).is_none());
        let i = g.node(&q("model")).unwrap();
        assert_eq!(g.id(i), &q("model"));
        assert!(g.element(i).is_some());
    }

    #[test]
    fn ancestors_follow_provenance() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let anc = g.ancestors(&q("report"));
        assert!(anc.contains(&q("eval")));
        assert!(anc.contains(&q("model")));
        assert!(anc.contains(&q("train")));
        assert!(anc.contains(&q("data")));
        assert!(!anc.contains(&q("report")));
        assert!(g.ancestors(&q("data")).is_empty());
    }

    #[test]
    fn descendants_follow_influence() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let desc = g.descendants(&q("data"));
        assert_eq!(desc.len(), 4);
        assert!(desc.contains(&q("report")));
        assert!(g.descendants(&q("report")).is_empty());
        assert!(g.descendants(&q("missing")).is_empty());
    }

    #[test]
    fn path_finds_lineage_chain() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        let p = g.path(&q("report"), &q("data")).unwrap();
        assert_eq!(
            p,
            vec![q("report"), q("eval"), q("model"), q("train"), q("data")]
        );
        assert!(
            g.path(&q("data"), &q("report")).is_none(),
            "wrong direction"
        );
        assert_eq!(g.path(&q("data"), &q("data")).unwrap(), vec![q("data")]);
    }

    #[test]
    fn topo_order_and_acyclicity() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert!(!g.has_cycle());
        let order = g.topo_order().unwrap();
        let pos = |id: &QName| order.iter().position(|x| x == id).unwrap();
        assert!(pos(&q("report")) < pos(&q("eval")));
        assert!(pos(&q("model")) < pos(&q("train")));
        assert!(pos(&q("train")) < pos(&q("data")));
    }

    #[test]
    fn cycle_detection() {
        let mut doc = ProvDocument::new();
        doc.entity(q("a"));
        doc.entity(q("b"));
        doc.was_derived_from(q("a"), q("b"));
        doc.was_derived_from(q("b"), q("a"));
        let g = ProvGraph::new(&doc);
        assert!(g.has_cycle());
        assert!(g.topo_order().is_none());
    }

    #[test]
    fn dangling_references_become_nodes() {
        let mut doc = ProvDocument::new();
        doc.activity(q("train"));
        doc.used(q("train"), q("undeclared"));
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 2);
        let i = g.node(&q("undeclared")).unwrap();
        assert!(g.element(i).is_none(), "undeclared node has no element");
    }

    #[test]
    fn roots_and_leaves() {
        let doc = pipeline_doc();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.roots(), vec![q("data")]);
        assert_eq!(g.leaves(), vec![q("report")]);
    }

    #[test]
    fn empty_graph() {
        let doc = ProvDocument::new();
        let g = ProvGraph::new(&doc);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_cycle());
        assert!(g.topo_order().unwrap().is_empty());
    }
}
