//! ML-audit scenarios over the lineage query engine.
//!
//! The three mlprov exemplar audits (SNIPPETS.md §1), expressed as
//! [`crate::engine`] path patterns over run-level (yprov4ml) and
//! workflow-level (yprov4wfs) provenance documents, plus a Tribuo-style
//! cross-run lineage join over a merged multi-document view:
//!
//! * [`data_leakage`] — does any *test* artifact reach a *training*
//!   activity? (`test entity <-(used|wasDerivedFrom|wasGeneratedBy|hadMember)+ training activity`)
//! * [`gdpr_trained_on`] — "have I been trained on?": is `sample`
//!   anywhere in `model`'s provenance closure, and along which path?
//! * [`group_fairness`] — which group values (an attribute such as
//!   `yprov4ml:group` on dataset entities) fed the model, and in what
//!   proportion?
//! * [`cross_run_join`] — join several documents on content digests
//!   (`yprov4ml:sha256` by default): artifacts carrying the same digest
//!   across runs/workflows, with their producing and consuming
//!   activities.
//!
//! All functions execute against prebuilt [`ProvGraph`] views — no
//! document re-walks — and the filters are plain IR, so every scenario
//! is also expressible verbatim through the service's query endpoint.

use crate::engine::{self, MatchRow};
use crate::graph::ProvGraph;
use prov_model::query::{ElementFilter, PathQuery, Repeat, Step, StepDirection};
use prov_model::{ElementKind, ProvDocument, ProvError, QName, RelationKind};
use std::collections::{BTreeMap, BTreeSet};

/// Relation kinds along which data can flow from an artifact into an
/// activity's working set: direct use, derivation chains, generation
/// (an activity's output leaking into another's input) and collection
/// membership.
pub fn dataflow_kinds() -> Vec<RelationKind> {
    vec![
        RelationKind::Used,
        RelationKind::WasDerivedFrom,
        RelationKind::WasGeneratedBy,
        RelationKind::HadMember,
    ]
}

/// The default filter for *test* artifacts: entities marked
/// `yprov4ml:split = "test"`, typed `yprov4ml:TestSet`, or with `test`
/// in their local identifier.
pub fn default_test_filter() -> ElementFilter {
    ElementFilter {
        kind: Some(ElementKind::Entity),
        any_of: vec![
            ElementFilter {
                attr_equals: Some((QName::yprov("split"), "test".into())),
                ..Default::default()
            },
            ElementFilter::by_type(QName::yprov("TestSet")),
            ElementFilter {
                id_contains: Some("test".into()),
                ..Default::default()
            },
        ],
        ..Default::default()
    }
}

/// The default filter for *training* activities: activities typed
/// `yprov4ml:Training` or with `train` in their local identifier.
pub fn default_training_filter() -> ElementFilter {
    ElementFilter {
        kind: Some(ElementKind::Activity),
        any_of: vec![
            ElementFilter::by_type(QName::yprov("Training")),
            ElementFilter {
                id_contains: Some("train".into()),
                ..Default::default()
            },
        ],
        ..Default::default()
    }
}

/// One detected leak: a test artifact whose data reaches a training
/// activity, with the witness path between them.
pub type Leak = MatchRow;

/// The data-leakage audit's result.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Detected leaks, sorted by `(test artifact, training activity)`.
    pub leaks: Vec<Leak>,
    /// How many nodes matched the test filter (audit coverage).
    pub test_artifacts: usize,
    /// How many nodes matched the training filter.
    pub training_activities: usize,
}

impl LeakageReport {
    /// True when no test artifact reaches any training activity.
    pub fn is_clean(&self) -> bool {
        self.leaks.is_empty()
    }
}

/// The path pattern behind [`data_leakage`], exposed so callers (and
/// the service) can inspect or re-run exactly what the audit executes.
pub fn leakage_query(test: ElementFilter, training: ElementFilter) -> PathQuery {
    PathQuery {
        start: test,
        steps: vec![Step {
            kinds: dataflow_kinds(),
            direction: StepDirection::Backward,
            repeat: Repeat::plus(),
            target: training,
        }],
        limit: None,
    }
}

/// **Data-leakage detection**: does any test artifact reach a training
/// activity through the dataflow relations? Pass `None` to use the
/// default yprov4ml filters.
pub fn data_leakage(
    graph: &ProvGraph<'_>,
    test: Option<ElementFilter>,
    training: Option<ElementFilter>,
) -> LeakageReport {
    let test = test.unwrap_or_else(default_test_filter);
    let training = training.unwrap_or_else(default_training_filter);
    let test_artifacts = engine::filter_nodes(graph, &test).len();
    let training_activities = engine::filter_nodes(graph, &training).len();
    let result = engine::execute(graph, &leakage_query(test, training));
    LeakageReport {
        leaks: result.rows,
        test_artifacts,
        training_activities,
    }
}

/// The GDPR audit's result.
#[derive(Debug, Clone, PartialEq)]
pub struct GdprReport {
    /// The queried sample.
    pub sample: QName,
    /// The queried model.
    pub model: QName,
    /// True when the sample is in the model's provenance closure.
    pub trained_on: bool,
    /// A witness path `sample -> ... -> model` when `trained_on`.
    pub path: Vec<QName>,
}

/// The path pattern behind [`gdpr_trained_on`].
pub fn gdpr_query(sample: &QName, model: &QName) -> PathQuery {
    PathQuery {
        start: ElementFilter::by_id(model.clone()),
        steps: vec![Step {
            kinds: Vec::new(),
            direction: StepDirection::Forward,
            repeat: Repeat::plus(),
            target: ElementFilter::by_id(sample.clone()),
        }],
        limit: Some(1),
    }
}

/// **GDPR "have I been trained on?"**: is `sample` reachable walking
/// the model's provenance towards its origins? The witness path is
/// reported sample-first — the direction a data subject reads it.
pub fn gdpr_trained_on(graph: &ProvGraph<'_>, sample: &QName, model: &QName) -> GdprReport {
    let result = engine::execute(graph, &gdpr_query(sample, model));
    let path: Vec<QName> = result
        .rows
        .first()
        .map(|row| row.path.iter().rev().cloned().collect())
        .unwrap_or_default();
    GdprReport {
        sample: sample.clone(),
        model: model.clone(),
        trained_on: !path.is_empty(),
        path,
    }
}

/// The group-fairness audit's result.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// The queried model.
    pub model: QName,
    /// The group attribute key the audit aggregated over.
    pub group_key: QName,
    /// Upstream entities per group value (lexical form), sorted.
    pub groups: BTreeMap<String, usize>,
    /// Total group-carrying entities upstream of the model.
    pub total: usize,
}

impl FairnessReport {
    /// Smallest over largest group share; 1.0 when perfectly balanced
    /// or when at most one group exists.
    pub fn balance(&self) -> f64 {
        let max = self.groups.values().copied().max().unwrap_or(0);
        let min = self.groups.values().copied().min().unwrap_or(0);
        if max == 0 {
            1.0
        } else {
            min as f64 / max as f64
        }
    }
}

/// The path pattern behind [`group_fairness`].
pub fn fairness_query(model: &QName, group_key: &QName) -> PathQuery {
    PathQuery {
        start: ElementFilter::by_id(model.clone()),
        steps: vec![Step {
            kinds: Vec::new(),
            direction: StepDirection::Forward,
            repeat: Repeat::plus(),
            target: ElementFilter {
                kind: Some(ElementKind::Entity),
                has_attr: Some(group_key.clone()),
                ..Default::default()
            },
        }],
        limit: None,
    }
}

/// **Group fairness**: aggregates the model's upstream entities by the
/// values they carry under `group_key` (e.g. `yprov4ml:group`), so a
/// skewed training distribution is visible from provenance alone.
pub fn group_fairness(graph: &ProvGraph<'_>, model: &QName, group_key: &QName) -> FairnessReport {
    let result = engine::execute(graph, &fairness_query(model, group_key));
    let mut groups: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0;
    for row in &result.rows {
        let Some(node) = graph.node(&row.end) else {
            continue;
        };
        if let Some(el) = graph.element(node) {
            total += 1;
            for value in el.attrs(group_key) {
                *groups.entry(value.lexical()).or_insert(0) += 1;
            }
        }
    }
    FairnessReport {
        model: model.clone(),
        group_key: group_key.clone(),
        groups,
        total,
    }
}

/// One digest's join group: every artifact across the merged documents
/// carrying the digest, with the activities that produced/consumed any
/// of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinedArtifact {
    /// The shared content digest.
    pub digest: String,
    /// Entities carrying the digest, sorted.
    pub artifacts: Vec<QName>,
    /// Activities that generated one of the artifacts, sorted.
    pub producers: Vec<QName>,
    /// Activities that used one of the artifacts, sorted.
    pub consumers: Vec<QName>,
}

impl JoinedArtifact {
    /// True when the digest actually joins lineage — multiple artifact
    /// records, or at least a producer *and* a consumer.
    pub fn is_shared(&self) -> bool {
        self.artifacts.len() > 1 || (!self.producers.is_empty() && !self.consumers.is_empty())
    }
}

/// The cross-run join's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossRunJoin {
    /// The digest attribute key joined on.
    pub digest_key: QName,
    /// All digest groups, sorted by digest.
    pub joined: Vec<JoinedArtifact>,
    /// Node/edge counts of the merged view the join ran over.
    pub merged_nodes: usize,
    pub merged_edges: usize,
}

impl CrossRunJoin {
    /// Only the digests that join lineage across records.
    pub fn shared(&self) -> Vec<&JoinedArtifact> {
        self.joined.iter().filter(|j| j.is_shared()).collect()
    }
}

/// **Cross-run lineage join**: merges `docs` (e.g. yprov4ml run
/// documents × yprov4wfs workflow documents) into one canonical view
/// and joins artifacts on their content digest (`yprov4ml:sha256` when
/// `digest_key` is `None`) — the Tribuo-style answer to "which runs and
/// workflow tasks touched the same bytes?".
///
/// Returns the join and the merged document it was computed over, so
/// callers can render or further query the joined view.
pub fn cross_run_join(
    docs: &[&ProvDocument],
    digest_key: Option<QName>,
) -> Result<(CrossRunJoin, ProvDocument), ProvError> {
    let digest_key = digest_key.unwrap_or_else(|| QName::yprov("sha256"));
    let merged = engine::merged_document(docs)?;
    let graph = ProvGraph::new(&merged);

    let carrier = ElementFilter {
        kind: Some(ElementKind::Entity),
        has_attr: Some(digest_key.clone()),
        ..Default::default()
    };
    let mut by_digest: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for node in engine::filter_nodes(&graph, &carrier) {
        let el = graph.element(node).expect("carrier filter requires attrs");
        for value in el.attrs(&digest_key) {
            by_digest.entry(value.lexical()).or_default().push(node);
        }
    }

    let joined = by_digest
        .into_iter()
        .map(|(digest, nodes)| {
            let mut artifacts = BTreeSet::new();
            let mut producers = BTreeSet::new();
            let mut consumers = BTreeSet::new();
            for node in nodes {
                artifacts.insert(graph.id(node).clone());
                // wasGeneratedBy(entity, activity): entity -> activity.
                for e in graph.out_edges(node) {
                    if e.kind == RelationKind::WasGeneratedBy {
                        producers.insert(graph.id(e.to).clone());
                    }
                }
                // used(activity, entity): activity -> entity.
                for e in graph.in_edges(node) {
                    if e.kind == RelationKind::Used {
                        consumers.insert(graph.id(e.from).clone());
                    }
                }
            }
            JoinedArtifact {
                digest,
                artifacts: artifacts.into_iter().collect(),
                producers: producers.into_iter().collect(),
                consumers: consumers.into_iter().collect(),
            }
        })
        .collect();

    let join = CrossRunJoin {
        digest_key,
        joined,
        merged_nodes: graph.node_count(),
        merged_edges: graph.edge_count(),
    };
    Ok((join, merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::AttrValue;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// A run document with a leak: the training activity used features
    /// derived from the test split.
    fn leaky_run() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.namespaces_mut()
            .register("yprov4ml", prov_model::qname::YPROV_NS)
            .unwrap();
        doc.entity(q("raw"))
            .attr(QName::yprov("group"), AttrValue::String("a".into()));
        doc.entity(q("train_split"))
            .attr(QName::yprov("split"), AttrValue::String("train".into()))
            .attr(QName::yprov("group"), AttrValue::String("a".into()));
        doc.entity(q("test_split"))
            .attr(QName::yprov("split"), AttrValue::String("test".into()))
            .attr(QName::yprov("group"), AttrValue::String("b".into()));
        doc.entity(q("features"));
        doc.activity(q("training_run"))
            .prov_type(QName::yprov("Training"));
        doc.entity(q("model"));
        doc.was_derived_from(q("train_split"), q("raw"));
        doc.was_derived_from(q("test_split"), q("raw"));
        doc.was_derived_from(q("features"), q("test_split"));
        doc.used(q("training_run"), q("train_split"));
        doc.used(q("training_run"), q("features"));
        doc.was_generated_by(q("model"), q("training_run"));
        doc
    }

    #[test]
    fn leakage_detects_the_indirect_leak() {
        let doc = leaky_run();
        let graph = ProvGraph::new(&doc);
        let report = data_leakage(&graph, None, None);
        assert!(!report.is_clean());
        assert_eq!(report.leaks.len(), 1);
        assert_eq!(report.leaks[0].start, q("test_split"));
        assert_eq!(report.leaks[0].end, q("training_run"));
        assert_eq!(
            report.leaks[0].path,
            vec![q("test_split"), q("features"), q("training_run")]
        );
        assert_eq!(report.test_artifacts, 1);
        assert_eq!(report.training_activities, 1);
    }

    #[test]
    fn leakage_is_clean_without_the_leak_edge() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("test_split"))
            .attr(QName::yprov("split"), AttrValue::String("test".into()));
        doc.entity(q("train_split"))
            .attr(QName::yprov("split"), AttrValue::String("train".into()));
        doc.activity(q("training_run"));
        doc.used(q("training_run"), q("train_split"));
        let graph = ProvGraph::new(&doc);
        let report = data_leakage(&graph, None, None);
        assert!(report.is_clean());
        assert_eq!(report.test_artifacts, 1);
    }

    #[test]
    fn gdpr_finds_the_sample_and_reports_sample_first() {
        let doc = leaky_run();
        let graph = ProvGraph::new(&doc);
        let report = gdpr_trained_on(&graph, &q("raw"), &q("model"));
        assert!(report.trained_on);
        assert_eq!(report.path.first(), Some(&q("raw")));
        assert_eq!(report.path.last(), Some(&q("model")));

        let report = gdpr_trained_on(&graph, &q("model"), &q("raw"));
        assert!(!report.trained_on, "wrong direction is not membership");
        assert!(report.path.is_empty());
    }

    #[test]
    fn fairness_aggregates_upstream_groups() {
        let doc = leaky_run();
        let graph = ProvGraph::new(&doc);
        let report = group_fairness(&graph, &q("model"), &QName::yprov("group"));
        assert_eq!(report.total, 3);
        assert_eq!(report.groups.get("a"), Some(&2));
        assert_eq!(report.groups.get("b"), Some(&1));
        assert!(report.balance() > 0.0 && report.balance() < 1.0);
    }

    #[test]
    fn cross_run_join_links_runs_through_digests() {
        // Run doc: training generated an artifact with digest d1.
        let mut run = ProvDocument::new();
        run.namespaces_mut().register("ex", "http://ex/").unwrap();
        run.activity(q("training_run"));
        run.entity(q("run_artifact"))
            .attr(QName::yprov("sha256"), AttrValue::String("d1".into()));
        run.was_generated_by(q("run_artifact"), q("training_run"));

        // Workflow doc: a task used an artifact with the same digest.
        let mut wf = ProvDocument::new();
        wf.namespaces_mut().register("ex", "http://ex/").unwrap();
        wf.activity(q("wf_task"));
        wf.entity(q("wf_artifact"))
            .attr(QName::yprov("sha256"), AttrValue::String("d1".into()));
        wf.entity(q("wf_other"))
            .attr(QName::yprov("sha256"), AttrValue::String("d2".into()));
        wf.used(q("wf_task"), q("wf_artifact"));

        let (join, merged) = cross_run_join(&[&run, &wf], None).unwrap();
        assert_eq!(join.joined.len(), 2);
        let shared = join.shared();
        assert_eq!(shared.len(), 1);
        assert_eq!(shared[0].digest, "d1");
        assert_eq!(
            shared[0].artifacts,
            vec![q("run_artifact"), q("wf_artifact")]
        );
        assert_eq!(shared[0].producers, vec![q("training_run")]);
        assert_eq!(shared[0].consumers, vec![q("wf_task")]);
        assert_eq!(merged.element_count(), 5);
    }
}
