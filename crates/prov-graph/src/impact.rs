//! Impact and divergence analysis.
//!
//! Two questions a provenance store answers that nothing else can:
//!
//! * **taint** — "this dataset turned out to be corrupted; which
//!   artifacts are derived from it?" (forward closure, filtered to
//!   entities);
//! * **divergence** — "these two runs should have been identical;
//!   where do their histories first differ?" (common vs. exclusive
//!   ancestry).

//! Since the engine refactor both answers are thin frontends over
//! [`crate::engine::closure`], the engine's reachability primitive —
//! the closure semantics (anchor excluded, even on a cycle) and the
//! sorted output order are unchanged.

use crate::engine;
use crate::graph::ProvGraph;
use prov_model::query::StepDirection;
use prov_model::{ElementKind, ProvDocument, QName};
use std::collections::BTreeSet;

/// Everything *downstream* of `source`: artifacts, activities and
/// agents whose existence depends on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintReport {
    /// The contaminated source.
    pub source: QName,
    /// Downstream entities (the artifacts to quarantine).
    pub tainted_entities: Vec<QName>,
    /// Downstream activities (the runs to re-execute).
    pub tainted_activities: Vec<QName>,
    /// Total downstream elements of any kind.
    pub total: usize,
}

/// Computes the taint closure of `source` in `doc`.
///
/// Builds a fresh index; callers holding a cached graph should use
/// [`taint_graph`] instead.
pub fn taint(doc: &ProvDocument, source: &QName) -> TaintReport {
    taint_graph(&ProvGraph::new(doc), source)
}

/// [`taint`] against an existing (e.g. cached) graph view.
pub fn taint_graph(graph: &ProvGraph<'_>, source: &QName) -> TaintReport {
    let doc = graph.document();
    let downstream = engine::closure(graph, source, StepDirection::Backward, None);
    let mut tainted_entities = Vec::new();
    let mut tainted_activities = Vec::new();
    for id in &downstream {
        match doc.get(id).map(|e| e.kind) {
            Some(ElementKind::Entity) => tainted_entities.push(id.clone()),
            Some(ElementKind::Activity) => tainted_activities.push(id.clone()),
            _ => {}
        }
    }
    TaintReport {
        source: source.clone(),
        total: downstream.len(),
        tainted_entities,
        tainted_activities,
    }
}

/// Ancestry comparison of two elements (typically two runs' outputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Ancestors shared by both.
    pub common: BTreeSet<QName>,
    /// Ancestors only the first element has.
    pub only_left: BTreeSet<QName>,
    /// Ancestors only the second element has.
    pub only_right: BTreeSet<QName>,
}

impl Divergence {
    /// True when both elements have exactly the same ancestry.
    pub fn is_identical(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }

    /// Jaccard similarity of the two ancestries (1 when identical; 1
    /// for two isolated nodes, which share their — empty — history).
    pub fn similarity(&self) -> f64 {
        let union = self.common.len() + self.only_left.len() + self.only_right.len();
        if union == 0 {
            1.0
        } else {
            self.common.len() as f64 / union as f64
        }
    }
}

/// Compares the ancestries of `left` and `right` in `doc`.
///
/// Builds a fresh index; callers holding a cached graph should use
/// [`divergence_graph`] instead.
pub fn divergence(doc: &ProvDocument, left: &QName, right: &QName) -> Divergence {
    divergence_graph(&ProvGraph::new(doc), left, right)
}

/// [`divergence`] against an existing (e.g. cached) graph view.
pub fn divergence_graph(graph: &ProvGraph<'_>, left: &QName, right: &QName) -> Divergence {
    let la = engine::closure(graph, left, StepDirection::Forward, None);
    let ra = engine::closure(graph, right, StepDirection::Forward, None);
    Divergence {
        common: la.intersection(&ra).cloned().collect(),
        only_left: la.difference(&ra).cloned().collect(),
        only_right: ra.difference(&la).cloned().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// dataset -> train1 -> model1 -> eval1 -> report1
    ///         \-> train2 -> model2          (train2 also used config2)
    fn doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("dataset"));
        doc.entity(q("config2"));
        for i in [1, 2] {
            doc.activity(q(&format!("train{i}")));
            doc.entity(q(&format!("model{i}")));
            doc.used(q(&format!("train{i}")), q("dataset"));
            doc.was_generated_by(q(&format!("model{i}")), q(&format!("train{i}")));
        }
        doc.used(q("train2"), q("config2"));
        doc.activity(q("eval1"));
        doc.entity(q("report1"));
        doc.used(q("eval1"), q("model1"));
        doc.was_generated_by(q("report1"), q("eval1"));
        doc
    }

    #[test]
    fn taint_finds_all_downstream_artifacts() {
        let d = doc();
        let report = taint(&d, &q("dataset"));
        assert_eq!(report.total, 6);
        assert!(report.tainted_entities.contains(&q("model1")));
        assert!(report.tainted_entities.contains(&q("model2")));
        assert!(report.tainted_entities.contains(&q("report1")));
        assert!(report.tainted_activities.contains(&q("train1")));
        assert!(report.tainted_activities.contains(&q("eval1")));
        // config2 is upstream of train2, not downstream of the dataset.
        assert!(!report.tainted_entities.contains(&q("config2")));
    }

    #[test]
    fn taint_of_a_leaf_is_empty() {
        let d = doc();
        let report = taint(&d, &q("report1"));
        assert_eq!(report.total, 0);
        assert!(report.tainted_entities.is_empty());
    }

    #[test]
    fn divergence_isolates_the_differing_input() {
        let d = doc();
        let div = divergence(&d, &q("model1"), &q("model2"));
        assert!(!div.is_identical());
        assert!(div.common.contains(&q("dataset")));
        assert!(div.only_right.contains(&q("config2")));
        assert!(div.only_left.contains(&q("train1")));
        assert!(div.similarity() > 0.0 && div.similarity() < 1.0);
    }

    #[test]
    fn identical_ancestry_detected() {
        let mut d = ProvDocument::new();
        d.entity(q("src"));
        d.activity(q("a"));
        d.used(q("a"), q("src"));
        d.entity(q("out1"));
        d.entity(q("out2"));
        d.was_generated_by(q("out1"), q("a"));
        d.was_generated_by(q("out2"), q("a"));
        let div = divergence(&d, &q("out1"), &q("out2"));
        assert!(div.is_identical());
        assert_eq!(div.similarity(), 1.0);
    }

    #[test]
    fn unrelated_nodes_share_nothing() {
        let mut d = ProvDocument::new();
        d.entity(q("a"));
        d.entity(q("b"));
        let div = divergence(&d, &q("a"), &q("b"));
        assert!(div.common.is_empty());
        assert_eq!(div.similarity(), 1.0, "empty histories are vacuously equal");
    }
}
