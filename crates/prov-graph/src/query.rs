//! Declarative queries and sub-graph extraction over PROV documents.
//!
//! Since the engine refactor, [`QueryBuilder`] is a thin frontend: the
//! structural clauses (`kind` / `with_type` / `id_contains`) lower to an
//! IR [`ElementFilter`] (`prov-model::query`) evaluated by
//! [`crate::engine::filter_elements`], and only the closure-based
//! `where_attr` predicates — which cannot be serialized — run as a
//! post-filter. Results stay in document order, byte-identical to the
//! pre-engine code.

use crate::engine;
use prov_model::query::ElementFilter;
use prov_model::{AttrValue, Element, ElementKind, ProvDocument, QName};
use std::collections::BTreeSet;

/// Extracts the sub-document induced by a set of identifiers: the kept
/// elements plus every relation whose subject *and* object are kept.
pub fn subgraph(doc: &ProvDocument, keep: &BTreeSet<QName>) -> ProvDocument {
    let mut out = ProvDocument::new();
    out.namespaces_mut()
        .merge(doc.namespaces())
        .expect("merging into empty registry cannot conflict");
    for el in doc.iter_elements() {
        if keep.contains(&el.id) {
            out.insert_element(el.clone());
        }
    }
    for rel in doc.relations() {
        if keep.contains(&rel.subject) && keep.contains(&rel.object) {
            out.add_relation(rel.clone());
        }
    }
    out
}

/// A fluent element query.
///
/// ```
/// # use prov_model::{ProvDocument, QName, AttrValue, ElementKind};
/// # use prov_graph::QueryBuilder;
/// # let mut doc = ProvDocument::new();
/// # doc.entity(QName::new("ex", "m")).attr(QName::new("ex", "loss"), AttrValue::Double(0.5));
/// let hits = QueryBuilder::new(&doc)
///     .kind(ElementKind::Entity)
///     .where_attr(QName::new("ex", "loss"), |v| v.as_f64().is_some_and(|x| x < 1.0))
///     .run();
/// assert_eq!(hits.len(), 1);
/// ```
pub struct QueryBuilder<'a> {
    doc: &'a ProvDocument,
    kind: Option<ElementKind>,
    prov_type: Option<QName>,
    #[allow(clippy::type_complexity)]
    predicates: Vec<(QName, Box<dyn Fn(&AttrValue) -> bool + 'a>)>,
    local_contains: Option<String>,
}

impl<'a> QueryBuilder<'a> {
    /// Starts a query over all elements of `doc`.
    pub fn new(doc: &'a ProvDocument) -> Self {
        QueryBuilder {
            doc,
            kind: None,
            prov_type: None,
            predicates: Vec::new(),
            local_contains: None,
        }
    }

    /// Keep only elements of this kind.
    pub fn kind(mut self, kind: ElementKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only elements carrying this `prov:type`.
    pub fn with_type(mut self, ty: QName) -> Self {
        self.prov_type = Some(ty);
        self
    }

    /// Keep only elements whose identifier's local part contains `s`.
    pub fn id_contains(mut self, s: impl Into<String>) -> Self {
        self.local_contains = Some(s.into());
        self
    }

    /// Keep only elements where *some* value under `key` satisfies `pred`.
    pub fn where_attr(mut self, key: QName, pred: impl Fn(&AttrValue) -> bool + 'a) -> Self {
        self.predicates.push((key, Box::new(pred)));
        self
    }

    /// The builder's structural clauses as an IR [`ElementFilter`].
    fn as_filter(&self) -> ElementFilter {
        ElementFilter {
            kind: self.kind,
            type_is: self.prov_type.clone(),
            id_contains: self.local_contains.clone(),
            ..Default::default()
        }
    }

    /// Executes the query.
    pub fn run(self) -> Vec<&'a Element> {
        let mut hits = engine::filter_elements(self.doc, &self.as_filter());
        hits.retain(|el| {
            self.predicates
                .iter()
                .all(|(key, pred)| el.attrs(key).iter().any(pred))
        });
        hits
    }

    /// Executes the query and returns just the identifiers.
    pub fn ids(self) -> BTreeSet<QName> {
        self.run().into_iter().map(|e| e.id.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("model_small"))
            .prov_type(q("Model"))
            .attr(q("loss"), AttrValue::Double(0.9));
        doc.entity(q("model_big"))
            .prov_type(q("Model"))
            .attr(q("loss"), AttrValue::Double(0.2));
        doc.entity(q("dataset")).prov_type(q("Dataset"));
        doc.activity(q("train"));
        doc.used(q("train"), q("dataset"));
        doc.was_generated_by(q("model_big"), q("train"));
        doc
    }

    #[test]
    fn filter_by_kind() {
        let d = doc();
        let entities = QueryBuilder::new(&d).kind(ElementKind::Entity).run();
        assert_eq!(entities.len(), 3);
        let acts = QueryBuilder::new(&d).kind(ElementKind::Activity).run();
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn filter_by_prov_type() {
        let d = doc();
        let models = QueryBuilder::new(&d).with_type(q("Model")).ids();
        assert_eq!(models.len(), 2);
        assert!(models.contains(&q("model_small")));
    }

    #[test]
    fn filter_by_attribute_predicate() {
        let d = doc();
        let good = QueryBuilder::new(&d)
            .with_type(q("Model"))
            .where_attr(q("loss"), |v| v.as_f64().is_some_and(|x| x < 0.5))
            .ids();
        assert_eq!(good.len(), 1);
        assert!(good.contains(&q("model_big")));
    }

    #[test]
    fn filter_by_id_substring() {
        let d = doc();
        let hits = QueryBuilder::new(&d).id_contains("model").ids();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn combined_filters_intersect() {
        let d = doc();
        let hits = QueryBuilder::new(&d)
            .kind(ElementKind::Entity)
            .with_type(q("Model"))
            .id_contains("small")
            .run();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, q("model_small"));
    }

    #[test]
    fn subgraph_keeps_internal_relations_only() {
        let d = doc();
        let keep: BTreeSet<QName> = [q("train"), q("dataset")].into_iter().collect();
        let sub = subgraph(&d, &keep);
        assert_eq!(sub.element_count(), 2);
        assert_eq!(sub.relation_count(), 1); // used(train, dataset)
        assert!(sub.namespaces().contains("ex"));
    }

    #[test]
    fn subgraph_of_empty_set_is_empty() {
        let d = doc();
        let sub = subgraph(&d, &BTreeSet::new());
        assert!(sub.is_empty() || sub.element_count() == 0);
        assert_eq!(sub.relation_count(), 0);
    }
}
