//! The planned lineage-query engine: executes `prov-model` query IR
//! ([`PathQuery`]) against a prebuilt [`ProvGraph`] index.
//!
//! The module has three layers:
//!
//! * **primitives** — [`filter_elements`] / [`filter_nodes`] evaluate an
//!   [`ElementFilter`] (document order / node-index order), [`walk`] is
//!   the ordered traversal core (exact legacy [`crate::Traversal`]
//!   semantics), and [`closure`] the reachability core (exact legacy
//!   `ancestors`/`descendants` semantics: the anchor itself is never a
//!   member, even on a cycle). The legacy `QueryBuilder`, `Traversal`,
//!   `taint` and `divergence` surfaces are thin frontends over these,
//!   so their outputs are byte-identical to the pre-engine code.
//! * **planner** — [`plan`] costs executing a pattern from its start
//!   anchors versus from its end anchors using the index statistics
//!   ([`crate::GraphIndexStats`]): anchor-set sizes (O(1) for single-id
//!   filters, one node scan otherwise) times the number of edges each
//!   step can touch, from the per-relation-kind edge counters.
//! * **executor** — [`execute`] runs the chosen plan entirely against
//!   the cached index: per anchor, each step expands the frontier with
//!   a layered walk (exact hop levels up to `repeat.min`/`max`, then a
//!   seen-marked BFS for unbounded tails), filters landings through the
//!   step's target, and records predecessors for witness paths.
//!
//! Step semantics are *existential walks*: a node matches a step when
//! some walk of an allowed length, over allowed edge kinds, connects it
//! to the previous frontier. Walks may revisit nodes inside the exact
//! phase (so `repeat: 2` matches `a -> b -> a`), which makes the
//! semantics symmetric under reversal — the property that lets the
//! planner run a pattern from whichever end is cheaper and flip the
//! rows afterwards.

use crate::graph::ProvGraph;
use crate::traverse::{TraversalOrder, Visit};
use prov_model::query::{ElementFilter, PathQuery, Step, StepDirection};
use prov_model::{Element, ProvDocument, ProvError, QName, RelationKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Declared elements of `doc` matching `filter`, in document order —
/// the evaluation core of the legacy `QueryBuilder` frontend.
pub fn filter_elements<'a>(doc: &'a ProvDocument, filter: &ElementFilter) -> Vec<&'a Element> {
    doc.iter_elements()
        .filter(|el| filter.matches(&el.id, Some(el)))
        .collect()
}

/// Node indices of `graph` matching `filter`, ascending. Dangling
/// references participate (they match filters without element-backed
/// clauses). Single-id filters resolve through the index in O(1)
/// instead of scanning.
pub fn filter_nodes(graph: &ProvGraph<'_>, filter: &ElementFilter) -> Vec<usize> {
    if let Some(id) = &filter.id {
        return match graph.node(id) {
            Some(n) if filter.matches(graph.id(n), graph.element(n)) => vec![n],
            _ => Vec::new(),
        };
    }
    (0..graph.node_count())
        .filter(|&i| filter.matches(graph.id(i), graph.element(i)))
        .collect()
}

/// The ordered traversal core: walks from `start` along edges allowed
/// by `step` (its kinds and direction; `repeat.max` bounds the depth)
/// in the given visit order, returning every node once at its first
/// discovery, start included at depth 0.
///
/// This is byte-for-byte the legacy `Traversal::run` algorithm — a
/// single deque used as queue (BFS) or stack (DFS), nodes recorded when
/// first pushed — now keyed by an IR [`Step`] so `Traversal` is a thin
/// frontend over the engine.
pub fn walk(
    graph: &ProvGraph<'_>,
    step: &Step,
    order: TraversalOrder,
    start: &QName,
) -> Vec<Visit> {
    let Some(s) = graph.node(start) else {
        return Vec::new();
    };
    let mut seen = vec![false; graph.node_count()];
    seen[s] = true;
    let mut result = vec![Visit {
        id: start.clone(),
        depth: 0,
    }];
    let mut work: VecDeque<(usize, usize)> = VecDeque::from([(s, 0)]);

    while let Some((node, depth)) = match order {
        TraversalOrder::BreadthFirst => work.pop_front(),
        TraversalOrder::DepthFirst => work.pop_back(),
    } {
        if let Some(max) = step.repeat.max {
            if depth >= max {
                continue;
            }
        }
        for (next, _edge) in neighbors(graph, node, step) {
            if !seen[next] {
                seen[next] = true;
                result.push(Visit {
                    id: graph.id(next).clone(),
                    depth: depth + 1,
                });
                work.push_back((next, depth + 1));
            }
        }
    }
    result
}

/// The reachability core: every node reachable from `start` along
/// edges allowed by `kinds` (all kinds when `None`) in `direction`,
/// *excluding* `start` itself — even when a cycle leads back to it.
/// This is byte-for-byte the legacy `ancestors`/`descendants`
/// semantics, which `taint` and `divergence` are frontends over.
pub fn closure(
    graph: &ProvGraph<'_>,
    start: &QName,
    direction: StepDirection,
    kinds: Option<&[RelationKind]>,
) -> BTreeSet<QName> {
    let Some(s) = graph.node(start) else {
        return BTreeSet::new();
    };
    let step = Step {
        kinds: kinds.map(|k| k.to_vec()).unwrap_or_default(),
        direction,
        ..Default::default()
    };
    let mut seen = vec![false; graph.node_count()];
    seen[s] = true;
    let mut stack = vec![s];
    let mut result = BTreeSet::new();
    while let Some(n) = stack.pop() {
        for (next, _edge) in neighbors(graph, n, &step) {
            if !seen[next] {
                seen[next] = true;
                result.insert(graph.id(next).clone());
                stack.push(next);
            }
        }
    }
    result
}

/// Neighbors of `node` along edges the step allows, with the edge index
/// carried for witness reconstruction.
fn neighbors<'g>(
    graph: &'g ProvGraph<'_>,
    node: usize,
    step: &'g Step,
) -> impl Iterator<Item = (usize, usize)> + 'g {
    let forward = step.direction == StepDirection::Forward;
    let edges: Box<dyn Iterator<Item = &crate::graph::Edge>> = if forward {
        Box::new(graph.out_edges(node))
    } else {
        Box::new(graph.in_edges(node))
    };
    edges.filter_map(move |e| {
        if !step.kinds.is_empty() && !step.kinds.contains(&e.kind) {
            return None;
        }
        Some((if forward { e.to } else { e.from }, e.relation))
    })
}

// ---------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------

/// Which end of the pattern the executor anchors at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSide {
    /// Anchor on the `start` filter and walk the steps as written.
    FromStart,
    /// Anchor on the final step's target and walk the reversed steps
    /// with flipped directions, flipping the rows afterwards.
    FromEnd,
}

/// The planner's decision and the statistics it was based on.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The chosen anchor side.
    pub side: PlanSide,
    /// Nodes matching the start filter.
    pub start_candidates: usize,
    /// Nodes matching the last step's target (equal to
    /// `start_candidates` for step-less queries).
    pub end_candidates: usize,
    /// Estimated edge visits executing from the start anchors.
    pub cost_from_start: f64,
    /// Estimated edge visits executing from the end anchors.
    pub cost_from_end: f64,
    /// One-line human-readable justification.
    pub reason: String,
}

/// Costs both anchor sides of `query` against the index statistics and
/// picks the cheaper one.
///
/// The cost model is deliberately simple: executing from an anchor set
/// of size `A` over steps `s₁..sₙ` visits at most
/// `A × Σᵢ edges(sᵢ.kinds)` edges, where `edges(kinds)` comes from the
/// per-relation-kind counters the index maintains
/// ([`crate::GraphIndex::kind_count`]). Anchor counts are exact: O(1)
/// for single-id filters, one node scan otherwise — never an edge walk.
pub fn plan(graph: &ProvGraph<'_>, query: &PathQuery) -> QueryPlan {
    let start_candidates = count_candidates(graph, &query.start);
    let end_filter = query.steps.last().map(|s| &s.target);
    let end_candidates = match end_filter {
        Some(f) => count_candidates(graph, f),
        None => start_candidates,
    };

    let edge_budget: f64 = query
        .steps
        .iter()
        .map(|s| step_edges(graph, s) as f64)
        .sum();
    let cost_from_start = start_candidates as f64 * edge_budget;
    let cost_from_end = end_candidates as f64 * edge_budget;

    // Step-less patterns have nothing to reverse, and reversing only
    // pays when the far anchor set is strictly smaller.
    let side = if query.steps.is_empty() || cost_from_start <= cost_from_end {
        PlanSide::FromStart
    } else {
        PlanSide::FromEnd
    };
    let reason = match side {
        PlanSide::FromStart => format!(
            "{start_candidates} start anchor(s) x {edge_budget:.0} step edges \
             <= {end_candidates} end anchor(s); walking forward"
        ),
        PlanSide::FromEnd => format!(
            "{end_candidates} end anchor(s) x {edge_budget:.0} step edges \
             < {start_candidates} start anchor(s); walking the pattern reversed"
        ),
    };
    QueryPlan {
        side,
        start_candidates,
        end_candidates,
        cost_from_start,
        cost_from_end,
        reason,
    }
}

/// Anchor-set size for a filter: 1/0 for single-id filters (index
/// lookup), otherwise an exact node scan.
fn count_candidates(graph: &ProvGraph<'_>, filter: &ElementFilter) -> usize {
    if filter.is_single_id() {
        return filter_nodes(graph, filter).len();
    }
    (0..graph.node_count())
        .filter(|&i| filter.matches(graph.id(i), graph.element(i)))
        .count()
}

/// Edges a step can possibly traverse, from the per-kind counters.
fn step_edges(graph: &ProvGraph<'_>, step: &Step) -> usize {
    if step.kinds.is_empty() {
        graph.edge_count()
    } else {
        let mut kinds: Vec<RelationKind> = step.kinds.clone();
        kinds.dedup();
        kinds.iter().map(|&k| graph.index().kind_count(k)).sum()
    }
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// One `(start, end)` binding of a path pattern, with a witness path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchRow {
    /// The anchor node (matching the query's `start` filter).
    pub start: QName,
    /// The landing node (matching the final step's target).
    pub end: QName,
    /// One witness path `start..=end` in pattern orientation. Any valid
    /// witness may be returned; plans anchored at opposite ends can
    /// produce different (equally valid) witnesses.
    pub path: Vec<QName>,
}

/// The result of executing a [`PathQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct MatchSet {
    /// The plan that produced the rows.
    pub plan: QueryPlan,
    /// Matched `(start, end)` rows, sorted by `(start, end)`.
    pub rows: Vec<MatchRow>,
    /// True when the query's `limit` cut the row list short.
    pub truncated: bool,
}

impl MatchSet {
    /// Every node appearing on any witness path — the matched subgraph
    /// to hand to [`crate::subgraph`] / DOT rendering.
    pub fn node_set(&self) -> BTreeSet<QName> {
        self.rows
            .iter()
            .flat_map(|r| r.path.iter().cloned())
            .collect()
    }
}

/// Plans and executes `query` against `graph`.
pub fn execute(graph: &ProvGraph<'_>, query: &PathQuery) -> MatchSet {
    let plan = plan(graph, query);
    execute_with_plan(graph, query, plan)
}

/// Executes `query` under an already-computed plan.
pub fn execute_with_plan(graph: &ProvGraph<'_>, query: &PathQuery, plan: QueryPlan) -> MatchSet {
    let (anchors_filter, steps): (&ElementFilter, Vec<Step>) = match plan.side {
        PlanSide::FromStart => (&query.start, query.steps.clone()),
        PlanSide::FromEnd => (
            &query.steps.last().expect("FromEnd implies steps").target,
            reversed_steps(query),
        ),
    };

    let mut rows = Vec::new();
    for anchor in filter_nodes(graph, anchors_filter) {
        for (end, path) in run_steps(graph, anchor, &steps) {
            rows.push(match plan.side {
                PlanSide::FromStart => MatchRow {
                    start: graph.id(anchor).clone(),
                    end: graph.id(end).clone(),
                    path: path.iter().map(|&n| graph.id(n).clone()).collect(),
                },
                PlanSide::FromEnd => MatchRow {
                    start: graph.id(end).clone(),
                    end: graph.id(anchor).clone(),
                    path: path.iter().rev().map(|&n| graph.id(n).clone()).collect(),
                },
            });
        }
    }
    // Deterministic row order regardless of the plan side or internal
    // visit order; witnesses ride along with their row.
    rows.sort_by(|a, b| (&a.start, &a.end).cmp(&(&b.start, &b.end)));
    rows.dedup_by(|a, b| a.start == b.start && a.end == b.end);
    let mut truncated = false;
    if let Some(limit) = query.limit {
        if rows.len() > limit {
            rows.truncate(limit);
            truncated = true;
        }
    }
    MatchSet {
        plan,
        rows,
        truncated,
    }
}

/// The pattern as walked from its far end: steps reversed, directions
/// flipped, and each step landing on the *previous* step's target (the
/// first landing on the query's start filter).
fn reversed_steps(query: &PathQuery) -> Vec<Step> {
    let n = query.steps.len();
    (0..n)
        .rev()
        .map(|k| Step {
            kinds: query.steps[k].kinds.clone(),
            direction: query.steps[k].direction.flipped(),
            repeat: query.steps[k].repeat,
            target: if k == 0 {
                query.start.clone()
            } else {
                query.steps[k - 1].target.clone()
            },
        })
        .collect()
}

/// Runs all steps from one anchor. Returns `(end node, witness path)`
/// per landing, where the witness includes the anchor itself.
fn run_steps(graph: &ProvGraph<'_>, anchor: usize, steps: &[Step]) -> Vec<(usize, Vec<usize>)> {
    // Frontier nodes with their witness path from the anchor.
    let mut frontier: BTreeMap<usize, Vec<usize>> = BTreeMap::from([(anchor, vec![anchor])]);
    for step in steps {
        frontier = expand_step(graph, &frontier, step);
        if frontier.is_empty() {
            return Vec::new();
        }
    }
    frontier.into_iter().map(|(n, p)| (n, p)).collect()
}

/// Expands one step from `frontier`: a layered walk for the exact hop
/// window, a seen-marked BFS for an unbounded tail, then the target
/// filter over the landings.
fn expand_step(
    graph: &ProvGraph<'_>,
    frontier: &BTreeMap<usize, Vec<usize>>,
    step: &Step,
) -> BTreeMap<usize, Vec<usize>> {
    let min = step.repeat.min;
    // Reached nodes with a witness path of *valid* length (the exact
    // phase only records a node once it is >= min hops out).
    let mut reached: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    if min == 0 {
        reached.extend(frontier.iter().map(|(&n, p)| (n, p.clone())));
    }

    // Exact phase: walk level sets hop by hop (revisits across levels
    // allowed — walk semantics keep reversal symmetric). Levels run to
    // `max` when bounded, else to `min`, where the closure phase takes
    // over.
    let levels = step.repeat.max.unwrap_or(min);
    let mut level: BTreeMap<usize, Vec<usize>> = frontier.clone();
    for hop in 1..=levels {
        let mut next: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (&node, path) in &level {
            for (succ, _edge) in neighbors(graph, node, step) {
                next.entry(succ).or_insert_with(|| {
                    let mut p = path.clone();
                    p.push(succ);
                    p
                });
            }
        }
        if hop >= min {
            for (n, p) in &next {
                reached.entry(*n).or_insert_with(|| p.clone());
            }
        }
        // Advance even when `next` is empty: a dead-ended walk must
        // leave an empty level behind, or the unbounded tail below
        // would re-seed from nodes whose witness is < min hops and
        // resurrect the anchor as a spurious 0-hop landing.
        level = next;
        if level.is_empty() {
            break;
        }
    }

    // Unbounded tail: anything reachable onward from the last exact
    // level already has a >= min-hop walk, so plain seen-marked BFS
    // suffices (and terminates on cycles).
    if step.repeat.max.is_none() {
        let mut seen = vec![false; graph.node_count()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (&n, p) in &level {
            if !seen[n] {
                seen[n] = true;
                reached.entry(n).or_insert_with(|| p.clone());
                queue.push_back(n);
            }
        }
        while let Some(node) = queue.pop_front() {
            let base = reached[&node].clone();
            for (succ, _edge) in neighbors(graph, node, step) {
                if !seen[succ] {
                    seen[succ] = true;
                    let mut p = base.clone();
                    p.push(succ);
                    reached.entry(succ).or_insert(p);
                    queue.push_back(succ);
                }
            }
        }
    }

    reached
        .into_iter()
        .filter(|(n, _)| step.target.matches(graph.id(*n), graph.element(*n)))
        .collect()
}

// ---------------------------------------------------------------------
// Multi-document joins
// ---------------------------------------------------------------------

/// Merges several documents into one canonical view — the substrate of
/// cross-document queries (the service's `docs=[...]` join form and the
/// audit module's cross-run join). Namespaces and records merge under
/// the usual conflict rules; the result is canonicalized so node order
/// is deterministic regardless of input order.
pub fn merged_document(docs: &[&ProvDocument]) -> Result<ProvDocument, ProvError> {
    let mut merged = ProvDocument::new();
    for doc in docs {
        merged.merge(doc)?;
    }
    merged.canonicalize();
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prov_model::query::Repeat;
    use prov_model::{AttrValue, ElementKind};

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    /// test_set -> used by train (backward edge train->test_set), plus a
    /// derivation chain: model <- train <- {train_set, test_set}.
    fn leaky_doc() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("train_set"))
            .attr(q("split"), AttrValue::String("train".into()));
        doc.entity(q("test_set"))
            .attr(q("split"), AttrValue::String("test".into()));
        doc.entity(q("features"));
        doc.activity(q("train"));
        doc.entity(q("model"));
        doc.was_derived_from(q("features"), q("test_set"));
        doc.used(q("train"), q("train_set"));
        doc.used(q("train"), q("features"));
        doc.was_generated_by(q("model"), q("train"));
        doc
    }

    fn leak_query() -> PathQuery {
        PathQuery {
            start: ElementFilter {
                kind: Some(ElementKind::Entity),
                attr_equals: Some((q("split"), "test".into())),
                ..Default::default()
            },
            steps: vec![Step {
                kinds: vec![RelationKind::WasDerivedFrom, RelationKind::Used],
                direction: StepDirection::Backward,
                repeat: Repeat::plus(),
                target: ElementFilter {
                    kind: Some(ElementKind::Activity),
                    id_contains: Some("train".into()),
                    ..Default::default()
                },
            }],
            limit: None,
        }
    }

    #[test]
    fn path_pattern_finds_the_leak() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let result = execute(&graph, &leak_query());
        assert_eq!(result.rows.len(), 1);
        let row = &result.rows[0];
        assert_eq!(row.start, q("test_set"));
        assert_eq!(row.end, q("train"));
        assert_eq!(row.path, vec![q("test_set"), q("features"), q("train")]);
        assert!(!result.truncated);
    }

    #[test]
    fn both_plan_sides_agree_on_rows() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let query = leak_query();
        let base = plan(&graph, &query);
        for side in [PlanSide::FromStart, PlanSide::FromEnd] {
            let mut p = base.clone();
            p.side = side;
            let result = execute_with_plan(&graph, &query, p);
            let rows: Vec<(QName, QName)> = result
                .rows
                .iter()
                .map(|r| (r.start.clone(), r.end.clone()))
                .collect();
            assert_eq!(rows, vec![(q("test_set"), q("train"))], "{side:?}");
            // Witnesses are real paths in pattern orientation.
            for row in &result.rows {
                assert_eq!(row.path.first(), Some(&row.start));
                assert_eq!(row.path.last(), Some(&row.end));
            }
        }
    }

    #[test]
    fn planner_prefers_the_smaller_anchor_set() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        // Unselective start (any entity), selective end (single id):
        // the planner should flip.
        let query = PathQuery {
            start: ElementFilter::by_kind(ElementKind::Entity),
            steps: vec![Step {
                kinds: vec![],
                direction: StepDirection::Backward,
                repeat: Repeat::plus(),
                target: ElementFilter::by_id(q("model")),
            }],
            limit: None,
        };
        let p = plan(&graph, &query);
        assert_eq!(p.side, PlanSide::FromEnd);
        assert_eq!(p.end_candidates, 1);
        assert!(p.cost_from_end < p.cost_from_start);
        // And the flipped execution still reports rows in pattern
        // orientation: entities upstream of the model.
        let result = execute_with_plan(&graph, &query, p);
        let starts: BTreeSet<QName> = result.rows.iter().map(|r| r.start.clone()).collect();
        assert!(starts.contains(&q("test_set")));
        assert!(starts.contains(&q("train_set")));
        assert!(result.rows.iter().all(|r| r.end == q("model")));
    }

    #[test]
    fn single_id_anchor_skips_the_node_scan_but_still_filters() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let mut f = ElementFilter::by_id(q("model"));
        f.kind = Some(ElementKind::Activity); // model is an entity
        assert!(filter_nodes(&graph, &f).is_empty());
        f.kind = Some(ElementKind::Entity);
        assert_eq!(filter_nodes(&graph, &f).len(), 1);
    }

    #[test]
    fn repeat_zero_matches_the_anchor_itself() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let query = PathQuery {
            start: ElementFilter::by_id(q("model")),
            steps: vec![Step {
                kinds: vec![],
                direction: StepDirection::Forward,
                repeat: Repeat::star(),
                target: ElementFilter::any(),
            }],
            limit: None,
        };
        let result = execute(&graph, &query);
        let ends: BTreeSet<QName> = result.rows.iter().map(|r| r.end.clone()).collect();
        assert!(ends.contains(&q("model")), "star includes zero hops");
        assert!(ends.contains(&q("test_set")), "star reaches the origins");
    }

    #[test]
    fn bounded_repeat_windows_hops() {
        // Chain e3 -> e2 -> e1 -> e0 (derivations).
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        for i in 0..4 {
            doc.entity(q(&format!("e{i}")));
        }
        for i in (1..4).rev() {
            doc.was_derived_from(q(&format!("e{i}")), q(&format!("e{}", i - 1)));
        }
        let graph = ProvGraph::new(&doc);
        let run = |min: usize, max: Option<usize>| -> BTreeSet<QName> {
            let query = PathQuery {
                start: ElementFilter::by_id(q("e3")),
                steps: vec![Step {
                    kinds: vec![RelationKind::WasDerivedFrom],
                    direction: StepDirection::Forward,
                    repeat: Repeat { min, max },
                    target: ElementFilter::any(),
                }],
                limit: None,
            };
            execute(&graph, &query)
                .rows
                .into_iter()
                .map(|r| r.end)
                .collect()
        };
        assert_eq!(run(1, Some(1)), [q("e2")].into_iter().collect());
        assert_eq!(run(2, Some(3)), [q("e1"), q("e0")].into_iter().collect());
        assert_eq!(run(2, None), [q("e1"), q("e0")].into_iter().collect());
        assert_eq!(run(0, Some(0)), [q("e3")].into_iter().collect());
    }

    #[test]
    fn cycles_terminate_and_exact_hops_may_revisit() {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("a"));
        doc.entity(q("b"));
        doc.was_derived_from(q("a"), q("b"));
        doc.was_derived_from(q("b"), q("a"));
        let graph = ProvGraph::new(&doc);
        let query = PathQuery {
            start: ElementFilter::by_id(q("a")),
            steps: vec![Step {
                kinds: vec![],
                direction: StepDirection::Forward,
                repeat: Repeat {
                    min: 2,
                    max: Some(2),
                },
                target: ElementFilter::any(),
            }],
            limit: None,
        };
        let result = execute(&graph, &query);
        // Exactly two hops around the cycle lands back on `a`.
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].end, q("a"));
        // And unbounded repeats terminate despite the cycle.
        let query = PathQuery {
            start: ElementFilter::by_id(q("a")),
            steps: vec![Step {
                repeat: Repeat::plus(),
                ..Default::default()
            }],
            limit: None,
        };
        let result = execute(&graph, &query);
        let ends: BTreeSet<QName> = result.rows.into_iter().map(|r| r.end).collect();
        assert_eq!(ends, [q("a"), q("b")].into_iter().collect());
    }

    #[test]
    fn limit_truncates_and_reports() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let query = PathQuery {
            start: ElementFilter::any(),
            steps: vec![],
            limit: Some(2),
        };
        let result = execute(&graph, &query);
        assert_eq!(result.rows.len(), 2);
        assert!(result.truncated);
    }

    #[test]
    fn multi_step_patterns_chain_frontiers() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        // model -> generating activity -> entities it used.
        let query = PathQuery {
            start: ElementFilter::by_id(q("model")),
            steps: vec![
                Step {
                    kinds: vec![RelationKind::WasGeneratedBy],
                    direction: StepDirection::Forward,
                    repeat: Repeat::once(),
                    target: ElementFilter::by_kind(ElementKind::Activity),
                },
                Step {
                    kinds: vec![RelationKind::Used],
                    direction: StepDirection::Forward,
                    repeat: Repeat::once(),
                    target: ElementFilter::by_kind(ElementKind::Entity),
                },
            ],
            limit: None,
        };
        let result = execute(&graph, &query);
        let ends: BTreeSet<QName> = result.rows.iter().map(|r| r.end.clone()).collect();
        assert_eq!(ends, [q("train_set"), q("features")].into_iter().collect());
        for row in &result.rows {
            assert_eq!(row.path.len(), 3, "anchor + two hops");
        }
    }

    #[test]
    fn dead_end_anchor_yields_no_zero_hop_self_row() {
        // `test_set` has no out-edges; a `+` repeat from it must not
        // resurrect the anchor as a spurious 0-hop landing when the
        // unbounded tail takes over from a dead-ended exact phase.
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        let query = PathQuery {
            start: ElementFilter::by_id(q("test_set")),
            steps: vec![Step {
                kinds: Vec::new(),
                direction: StepDirection::Forward,
                repeat: Repeat::plus(),
                target: ElementFilter::any(),
            }],
            limit: None,
        };
        let result = execute(&graph, &query);
        assert!(
            result.rows.is_empty(),
            "no >= 1-hop landing exists, got {:?}",
            result.rows
        );
        // A `*` repeat still lands on the anchor itself (0 hops is in
        // the window).
        let star = PathQuery {
            steps: vec![Step {
                repeat: Repeat::star(),
                ..query.steps[0].clone()
            }],
            ..query
        };
        let result = execute(&graph, &star);
        assert_eq!(result.rows.len(), 1);
        assert_eq!(result.rows[0].end, q("test_set"));
    }

    #[test]
    fn closure_matches_graph_reachability() {
        let doc = leaky_doc();
        let graph = ProvGraph::new(&doc);
        assert_eq!(
            closure(&graph, &q("model"), StepDirection::Forward, None),
            graph.ancestors(&q("model"))
        );
        assert_eq!(
            closure(&graph, &q("test_set"), StepDirection::Backward, None),
            graph.descendants(&q("test_set"))
        );
        assert!(closure(&graph, &q("ghost"), StepDirection::Forward, None).is_empty());
    }

    #[test]
    fn merged_document_joins_namespaces_and_records() {
        let mut a = ProvDocument::new();
        a.namespaces_mut().register("ex", "http://ex/").unwrap();
        a.entity(q("shared"));
        a.entity(q("only_a"));
        let mut b = ProvDocument::new();
        b.namespaces_mut().register("ex", "http://ex/").unwrap();
        b.entity(q("shared"));
        b.activity(q("only_b"));
        b.used(q("only_b"), q("shared"));
        let merged = merged_document(&[&a, &b]).unwrap();
        assert_eq!(merged.element_count(), 3);
        assert_eq!(merged.relation_count(), 1);
    }
}
