//! # prov-graph
//!
//! Graph analysis over W3C PROV documents: adjacency indexing, lineage
//! traversal, topological ordering, cycle detection, sub-graph
//! extraction, document diffing and Graphviz DOT export (used to render
//! provenance pictures like Figure 1 of the yProv4ML paper).
//!
//! The graph borrows the underlying [`prov_model::ProvDocument`]; nodes
//! are element identifiers and edges are the document's relations.
//! PROV relations point *backwards in time* (an entity `wasGeneratedBy`
//! the activity that made it), so following out-edges walks towards the
//! *origins* of a node — exactly what lineage queries want.
//!
//! ```
//! use prov_model::{ProvDocument, QName};
//! use prov_graph::ProvGraph;
//!
//! let mut doc = ProvDocument::new();
//! doc.namespaces_mut().register("ex", "http://ex/").unwrap();
//! let (data, train, model) = (QName::new("ex", "data"),
//!                             QName::new("ex", "train"),
//!                             QName::new("ex", "model"));
//! doc.entity(data.clone());
//! doc.activity(train.clone());
//! doc.entity(model.clone());
//! doc.used(train.clone(), data.clone());
//! doc.was_generated_by(model.clone(), train.clone());
//!
//! let graph = ProvGraph::new(&doc);
//! let origins = graph.ancestors(&model);
//! assert!(origins.contains(&data));
//! ```

//!
//! The query stack is a *planned engine* ([`engine`]): path-pattern IR
//! from `prov-model::query` is planned against the index statistics
//! ([`GraphIndexStats`]) and executed entirely against the cached
//! adjacency index. The classic surfaces — [`QueryBuilder`],
//! [`Traversal`], [`taint`], [`divergence`] — are thin frontends over
//! the engine's primitives, and the [`audit`] module builds the mlprov
//! ML-audit scenarios (data leakage, GDPR membership, group fairness,
//! cross-run joins) on top of it.

pub mod audit;
pub mod diff;
pub mod dot;
pub mod engine;
pub mod graph;
pub mod impact;
pub mod query;
pub mod traverse;

pub use diff::{diff, DocumentDiff, ElementChange};
pub use dot::{to_dot, DotOptions};
pub use engine::{execute, execute_with_plan, plan, MatchRow, MatchSet, PlanSide, QueryPlan};
pub use graph::{Edge, GraphIndex, GraphIndexStats, ProvGraph, SharedGraph};
pub use impact::{divergence, divergence_graph, taint, taint_graph, Divergence, TaintReport};
pub use query::{subgraph, QueryBuilder};
pub use traverse::{Traversal, TraversalOrder, Visit};
