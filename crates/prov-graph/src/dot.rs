//! Graphviz DOT export.
//!
//! Renders a PROV document with the conventional PROV visual vocabulary
//! (the one used by `prov-dot` and by the yProv Explorer, and visible in
//! Figure 1 of the paper): yellow ellipses for entities, blue rectangles
//! for activities, orange houses for agents, and labelled edges for
//! relations.

use crate::graph::ProvGraph;
use prov_model::{ElementKind, ProvDocument, QName};
use std::fmt::Write as _;

/// Rendering options for [`to_dot`].
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Show `prov:label` (when present) instead of the raw identifier.
    pub use_labels: bool,
    /// Render non-`prov:` attributes in a second label line.
    pub show_attributes: bool,
    /// Maximum number of attributes rendered per node.
    pub max_attributes: usize,
    /// Left-to-right layout instead of top-to-bottom.
    pub horizontal: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "provenance".to_string(),
            use_labels: true,
            show_attributes: false,
            max_attributes: 4,
            horizontal: false,
        }
    }
}

/// Renders the whole document (bundles flattened into clusters).
pub fn to_dot(doc: &ProvDocument, opts: &DotOptions) -> String {
    let graph = ProvGraph::new(doc);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&opts.name));
    if opts.horizontal {
        out.push_str("  rankdir=LR;\n");
    }
    out.push_str("  node [fontname=\"Helvetica\", fontsize=10];\n");
    out.push_str("  edge [fontname=\"Helvetica\", fontsize=8, color=\"#404040\"];\n");

    for i in 0..graph.node_count() {
        let id = graph.id(i);
        let (shape, fill) = match graph.element(i).map(|e| e.kind) {
            Some(ElementKind::Entity) => ("ellipse", "#FFFC87"),
            Some(ElementKind::Activity) => ("box", "#9FB1FC"),
            Some(ElementKind::Agent) => ("house", "#FED37F"),
            None => ("ellipse", "#DDDDDD"), // dangling reference
        };
        let label = node_label(&graph, i, opts);
        let _ = writeln!(
            out,
            "  \"{}\" [shape={shape}, style=filled, fillcolor=\"{fill}\", label=\"{}\"];",
            escape(&id.to_string()),
            label
        );
    }

    for e in graph.edges() {
        let rel = &doc.relations()[e.relation];
        let mut label = rel.kind.json_key().to_string();
        if let Some(role) = rel.role() {
            let _ = write!(label, "\\n[{}]", escape(&role.lexical()));
        }
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{label}\"];",
            escape(&graph.id(e.from).to_string()),
            escape(&graph.id(e.to).to_string()),
        );
    }

    // Bundles as subgraph clusters.
    for (bi, (name, bundle)) in doc.iter_bundles().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{bi} {{");
        let _ = writeln!(out, "    label=\"bundle {}\";", escape(&name.to_string()));
        let inner = to_dot_body(bundle, opts);
        for line in inner.lines() {
            let _ = writeln!(out, "    {line}");
        }
        out.push_str("  }\n");
    }

    out.push_str("}\n");
    out
}

/// Renders only node/edge statements (used for bundle clusters).
fn to_dot_body(doc: &ProvDocument, opts: &DotOptions) -> String {
    let full = to_dot(doc, opts);
    // Strip the digraph frame and global attribute lines.
    full.lines()
        .skip(1)
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with("node [") && !t.starts_with("edge [") && !t.starts_with("rankdir")
        })
        .take_while(|l| *l != "}")
        .collect::<Vec<_>>()
        .join("\n")
}

fn node_label(graph: &ProvGraph<'_>, i: usize, opts: &DotOptions) -> String {
    let id = graph.id(i);
    let el = graph.element(i);
    let mut label = match (opts.use_labels, el.and_then(|e| e.label())) {
        (true, Some(l)) => escape(l),
        _ => escape(&id.to_string()),
    };
    if opts.show_attributes {
        if let Some(el) = el {
            let mut shown = 0usize;
            for (k, vals) in &el.attributes {
                if k.prefix() == "prov" || shown >= opts.max_attributes {
                    continue;
                }
                for v in vals.iter().take(1) {
                    let _ = write!(
                        label,
                        "\\n{}={}",
                        escape(&k.to_string()),
                        escape(&v.lexical())
                    );
                    shown += 1;
                }
            }
        }
    }
    label
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Convenience: render only the lineage neighbourhood of one identifier
/// (its ancestors and descendants), producing a focused graph like the
/// per-run pictures in the yProv Explorer.
pub fn to_dot_focused(doc: &ProvDocument, focus: &QName, opts: &DotOptions) -> String {
    let graph = ProvGraph::new(doc);
    let mut keep = graph.ancestors(focus);
    keep.extend(graph.descendants(focus));
    keep.insert(focus.clone());
    let sub = crate::query::subgraph(doc, &keep);
    to_dot(&sub, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn sample() -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(q("data")).label("input \"data\"");
        doc.activity(q("train"));
        doc.agent(q("alice"));
        doc.used(q("train"), q("data"));
        doc.was_associated_with(q("train"), q("alice"));
        doc
    }

    #[test]
    fn renders_prov_vocabulary() {
        let doc = sample();
        let dot = to_dot(&doc, &DotOptions::default());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=ellipse"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=house"));
        assert!(dot.contains("\"ex:train\" -> \"ex:data\" [label=\"used\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_are_escaped() {
        let doc = sample();
        let dot = to_dot(&doc, &DotOptions::default());
        assert!(dot.contains(r#"input \"data\""#));
    }

    #[test]
    fn raw_ids_when_labels_disabled() {
        let doc = sample();
        let opts = DotOptions {
            use_labels: false,
            ..Default::default()
        };
        let dot = to_dot(&doc, &opts);
        assert!(dot.contains("label=\"ex:data\""));
    }

    #[test]
    fn attribute_lines_optional() {
        let mut doc = sample();
        doc.entity(q("data"))
            .attr(q("rows"), prov_model::AttrValue::Int(42));
        let opts = DotOptions {
            show_attributes: true,
            ..Default::default()
        };
        let dot = to_dot(&doc, &opts);
        assert!(dot.contains("ex:rows=42"));
    }

    #[test]
    fn horizontal_layout_flag() {
        let doc = sample();
        let opts = DotOptions {
            horizontal: true,
            ..Default::default()
        };
        assert!(to_dot(&doc, &opts).contains("rankdir=LR"));
    }

    #[test]
    fn role_appears_on_edges() {
        let mut doc = ProvDocument::new();
        doc.activity(q("a"));
        doc.entity(q("e"));
        doc.used(q("a"), q("e")).add_attr(
            prov_model::QName::prov("role"),
            prov_model::AttrValue::from("training-input"),
        );
        let dot = to_dot(&doc, &DotOptions::default());
        assert!(dot.contains("[training-input]"));
    }

    #[test]
    fn focused_graph_limits_nodes() {
        let mut doc = sample();
        doc.entity(q("unrelated"));
        let dot = to_dot_focused(&doc, &q("train"), &DotOptions::default());
        assert!(!dot.contains("unrelated"));
        assert!(dot.contains("ex:train"));
    }

    #[test]
    fn bundles_render_as_clusters() {
        let mut doc = sample();
        doc.bundle(q("meta")).entity(q("inner"));
        let dot = to_dot(&doc, &DotOptions::default());
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("bundle ex:meta"));
        assert!(dot.contains("ex:inner"));
    }
}
