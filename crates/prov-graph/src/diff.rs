//! Structural diff between two PROV documents.
//!
//! Supports the paper's "development tracking" use case (§3.1): comparing
//! the provenance of two runs shows exactly which parameters, artifacts
//! and relations changed between them.

use prov_model::{AttrValue, ProvDocument, QName, Relation};
use std::collections::BTreeMap;

/// An attribute-level change on one element present in both documents.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementChange {
    /// The element whose attributes differ.
    pub id: QName,
    /// Keys present only in the left document, with their values.
    pub removed_attrs: BTreeMap<QName, Vec<AttrValue>>,
    /// Keys present only in the right document, with their values.
    pub added_attrs: BTreeMap<QName, Vec<AttrValue>>,
    /// Keys present in both but with different value lists: `(left, right)`.
    pub changed_attrs: BTreeMap<QName, (Vec<AttrValue>, Vec<AttrValue>)>,
}

impl ElementChange {
    /// True when no attribute actually differs.
    pub fn is_empty(&self) -> bool {
        self.removed_attrs.is_empty()
            && self.added_attrs.is_empty()
            && self.changed_attrs.is_empty()
    }
}

/// The result of diffing two documents (`left` = old, `right` = new).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DocumentDiff {
    /// Elements only in the left document.
    pub removed_elements: Vec<QName>,
    /// Elements only in the right document.
    pub added_elements: Vec<QName>,
    /// Elements in both with differing attributes.
    pub changed_elements: Vec<ElementChange>,
    /// Relations only in the left document.
    pub removed_relations: Vec<Relation>,
    /// Relations only in the right document.
    pub added_relations: Vec<Relation>,
}

impl DocumentDiff {
    /// True when the two documents are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.removed_elements.is_empty()
            && self.added_elements.is_empty()
            && self.changed_elements.is_empty()
            && self.removed_relations.is_empty()
            && self.added_relations.is_empty()
    }

    /// A compact human-readable summary (one line per change).
    pub fn summary(&self) -> String {
        let mut lines = Vec::new();
        for id in &self.removed_elements {
            lines.push(format!("- element {id}"));
        }
        for id in &self.added_elements {
            lines.push(format!("+ element {id}"));
        }
        for ch in &self.changed_elements {
            for (k, (l, r)) in &ch.changed_attrs {
                lines.push(format!("~ {} {k}: {} -> {}", ch.id, join(l), join(r)));
            }
            for (k, v) in &ch.added_attrs {
                lines.push(format!("+ {} {k}={}", ch.id, join(v)));
            }
            for (k, v) in &ch.removed_attrs {
                lines.push(format!("- {} {k}={}", ch.id, join(v)));
            }
        }
        for r in &self.removed_relations {
            lines.push(format!(
                "- {}({}, {})",
                r.kind.json_key(),
                r.subject,
                r.object
            ));
        }
        for r in &self.added_relations {
            lines.push(format!(
                "+ {}({}, {})",
                r.kind.json_key(),
                r.subject,
                r.object
            ));
        }
        lines.join("\n")
    }
}

fn join(vals: &[AttrValue]) -> String {
    vals.iter()
        .map(|v| v.lexical())
        .collect::<Vec<_>>()
        .join("|")
}

/// Computes the structural diff between two documents.
pub fn diff(left: &ProvDocument, right: &ProvDocument) -> DocumentDiff {
    let mut out = DocumentDiff::default();

    for el in left.iter_elements() {
        match right.get(&el.id) {
            None => out.removed_elements.push(el.id.clone()),
            Some(rel) => {
                let change = diff_attrs(&el.id, &el.attributes, &rel.attributes);
                if !change.is_empty() {
                    out.changed_elements.push(change);
                }
            }
        }
    }
    for el in right.iter_elements() {
        if left.get(&el.id).is_none() {
            out.added_elements.push(el.id.clone());
        }
    }

    for r in left.relations() {
        if !right.relations().contains(r) {
            out.removed_relations.push(r.clone());
        }
    }
    for r in right.relations() {
        if !left.relations().contains(r) {
            out.added_relations.push(r.clone());
        }
    }

    out
}

fn diff_attrs(
    id: &QName,
    left: &BTreeMap<QName, Vec<AttrValue>>,
    right: &BTreeMap<QName, Vec<AttrValue>>,
) -> ElementChange {
    let mut change = ElementChange {
        id: id.clone(),
        removed_attrs: BTreeMap::new(),
        added_attrs: BTreeMap::new(),
        changed_attrs: BTreeMap::new(),
    };
    for (k, lv) in left {
        match right.get(k) {
            None => {
                change.removed_attrs.insert(k.clone(), lv.clone());
            }
            Some(rv) if rv != lv => {
                change
                    .changed_attrs
                    .insert(k.clone(), (lv.clone(), rv.clone()));
            }
            _ => {}
        }
    }
    for (k, rv) in right {
        if !left.contains_key(k) {
            change.added_attrs.insert(k.clone(), rv.clone());
        }
    }
    change
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(local: &str) -> QName {
        QName::new("ex", local)
    }

    fn run_doc(lr: f64, epochs: i64, extra_artifact: bool) -> ProvDocument {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.activity(q("run"))
            .attr(q("learning_rate"), AttrValue::Double(lr))
            .attr(q("epochs"), AttrValue::Int(epochs));
        doc.entity(q("model"));
        doc.was_generated_by(q("model"), q("run"));
        if extra_artifact {
            doc.entity(q("confusion_matrix"));
            doc.was_generated_by(q("confusion_matrix"), q("run"));
        }
        doc
    }

    #[test]
    fn identical_documents_have_empty_diff() {
        let a = run_doc(0.001, 10, false);
        let b = run_doc(0.001, 10, false);
        let d = diff(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.summary(), "");
    }

    #[test]
    fn changed_hyperparameter_is_reported() {
        let a = run_doc(0.001, 10, false);
        let b = run_doc(0.01, 10, false);
        let d = diff(&a, &b);
        assert_eq!(d.changed_elements.len(), 1);
        let ch = &d.changed_elements[0];
        assert_eq!(ch.id, q("run"));
        let (l, r) = &ch.changed_attrs[&q("learning_rate")];
        assert_eq!(l[0], AttrValue::Double(0.001));
        assert_eq!(r[0], AttrValue::Double(0.01));
        assert!(d.summary().contains("learning_rate"));
    }

    #[test]
    fn added_artifact_and_relation_reported() {
        let a = run_doc(0.001, 10, false);
        let b = run_doc(0.001, 10, true);
        let d = diff(&a, &b);
        assert_eq!(d.added_elements, vec![q("confusion_matrix")]);
        assert_eq!(d.added_relations.len(), 1);
        assert!(d.removed_elements.is_empty());
    }

    #[test]
    fn removal_is_symmetric_to_addition() {
        let a = run_doc(0.001, 10, true);
        let b = run_doc(0.001, 10, false);
        let d = diff(&a, &b);
        assert_eq!(d.removed_elements, vec![q("confusion_matrix")]);
        assert_eq!(d.removed_relations.len(), 1);
    }

    #[test]
    fn added_and_removed_attrs() {
        let mut a = ProvDocument::new();
        a.entity(q("e")).attr(q("old"), AttrValue::Int(1));
        let mut b = ProvDocument::new();
        b.entity(q("e")).attr(q("new"), AttrValue::Int(2));
        let d = diff(&a, &b);
        let ch = &d.changed_elements[0];
        assert!(ch.removed_attrs.contains_key(&q("old")));
        assert!(ch.added_attrs.contains_key(&q("new")));
        let s = d.summary();
        assert!(s.contains("+ ex:e ex:new=2"));
        assert!(s.contains("- ex:e ex:old=1"));
    }
}
