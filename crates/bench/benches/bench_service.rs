//! Service-core load generator: mixed upload / query / replication
//! traffic against the event-loop core and the thread-per-connection
//! baseline at 1, 8, 64 and 512 concurrent connections.
//!
//! Each connection thread drives one keep-alive client through rounds
//! of four requests — `PUT` a document, `GET` it back, `GET` its
//! stats, `POST` one hash-chained replication frame — and records
//! per-request latency. The summary (throughput plus p50/p90/p99) for
//! every `(core, connections)` cell lands in `BENCH_service.json` at
//! the repo root.
//!
//! `YPROV_BENCH_SMOKE=1` shrinks the run (fewer connections, fewer
//! rounds) so CI can exercise the generator and upload the artifact
//! without paying for the full sweep.

use serde_json::json;
use std::sync::Barrier;
use std::time::{Duration, Instant};
use yprov_service::cluster::frame_body;
use yprov_service::ledger::Ledger;
use yprov_service::{Client, DocumentStore, RetryPolicy, Server, ServerConfig, ServerCore};

/// One small PROV document, reused as upload body and replicated bytes.
fn doc_json() -> String {
    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(prov_model::QName::new("ex", "data"));
    doc.activity(prov_model::QName::new("ex", "train"));
    doc.entity(prov_model::QName::new("ex", "model"));
    doc.used(
        prov_model::QName::new("ex", "train"),
        prov_model::QName::new("ex", "data"),
    );
    doc.was_generated_by(
        prov_model::QName::new("ex", "model"),
        prov_model::QName::new("ex", "train"),
    );
    doc.to_json_string().unwrap()
}

/// Single-attempt policy: the generator measures the server as it is —
/// a shed or failure is counted, not retried into the numbers.
fn one_shot() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    }
}

fn percentile_ms(sorted_micros: &[u64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[idx] as f64 / 1000.0
}

/// Runs one `(core, connections)` cell and returns its summary.
fn run_level(core: ServerCore, conns: usize, rounds: usize, doc_body: &str) -> serde_json::Value {
    // The event loop serves every connection count from a fixed small
    // pool; the baseline gets a thread per connection (its own model).
    let workers = match core {
        ServerCore::EventLoop => 8,
        ServerCore::Threaded => conns.min(512),
    };
    let server = Server::bind(
        "127.0.0.1:0",
        DocumentStore::new(),
        ServerConfig {
            core,
            workers,
            // Watermarks sized for the offered load: this cell measures
            // sustained throughput, not the shedding path.
            queue_depth: 4096,
            max_connections: Some(conns * 2 + 64),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let barrier = Barrier::new(conns + 1);
    let mut latencies: Vec<u64> = Vec::with_capacity(conns * rounds * 4);
    let mut errors = 0u64;
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                let barrier = &barrier;
                s.spawn(move || {
                    let client = Client::new(addr, one_shot());
                    let mut ledger = Ledger::new();
                    let source = format!("bench-src-{t}");
                    let mut lat = Vec::with_capacity(rounds * 4);
                    let mut errors = 0u64;
                    barrier.wait();
                    for i in 0..rounds {
                        let id = format!("bench-{t}-{i}");
                        let mut timed = |method: &str, path: &str, body: Option<&str>| {
                            let t0 = Instant::now();
                            let ok = match client.send(method, path, body) {
                                Ok(resp) => resp.status < 400,
                                Err(_) => false,
                            };
                            lat.push(t0.elapsed().as_micros() as u64);
                            if !ok {
                                errors += 1;
                            }
                        };
                        timed("PUT", &format!("/api/v0/documents/{id}"), Some(doc_body));
                        timed("GET", &format!("/api/v0/documents/{id}"), None);
                        timed("GET", &format!("/api/v0/documents/{id}/stats"), None);
                        let entry = ledger.append(format!("repl-{t}-{i}"), doc_body.as_bytes());
                        let frame = frame_body(&source, entry, Some(doc_body));
                        timed("POST", "/api/v0/replication/frames", Some(&frame));
                    }
                    (lat, errors)
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        for h in handles {
            let (lat, errs) = h.join().unwrap();
            latencies.extend(lat);
            errors += errs;
        }
        wall = t0.elapsed();
    });
    server.shutdown();

    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    let secs = wall.as_secs_f64().max(1e-9);
    let summary = json!({
        "requests": ops,
        "errors": errors,
        "wall_secs": secs,
        "requests_per_sec": ops as f64 / secs,
        "latency_ms": {
            "p50": percentile_ms(&latencies, 0.50),
            "p90": percentile_ms(&latencies, 0.90),
            "p99": percentile_ms(&latencies, 0.99),
        },
    });
    eprintln!(
        "{core:?} conns={conns}: {:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, {errors} errors",
        ops as f64 / secs,
        percentile_ms(&latencies, 0.50),
        percentile_ms(&latencies, 0.99),
    );
    summary
}

fn main() {
    // `cargo bench` passes flags like `--bench`; a load generator has
    // no filters, so arguments are ignored.
    let smoke = matches!(std::env::var("YPROV_BENCH_SMOKE"), Ok(v) if v != "0");
    let levels: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64, 512] };
    let doc_body = doc_json();

    let mut cells = Vec::new();
    for &conns in levels {
        // Roughly constant offered load per level, at least a few
        // rounds per connection so keep-alive reuse actually shows.
        let rounds = if smoke {
            (64 / conns).max(4)
        } else {
            (2048 / conns).max(8)
        };
        let event_loop = run_level(ServerCore::EventLoop, conns, rounds, &doc_body);
        let threaded = run_level(ServerCore::Threaded, conns, rounds, &doc_body);
        cells.push(json!({
            "connections": conns,
            "requests_per_connection": rounds * 4,
            "event_loop": event_loop,
            "threaded": threaded,
        }));
    }

    let out = json!({
        "bench": "bench_service",
        "description": "Mixed upload/query/replication load against the epoll \
                        event-loop core (8 workers) vs the thread-per-connection \
                        baseline, per concurrent-connection level.",
        // CI's bench-smoke guard greps for this: a committed file that
        // still says "pending" fails the job.
        "status": "measured",
        "smoke": smoke,
        "workload": "PUT document, GET document, GET stats, POST replication frame",
        "document_bytes": doc_body.len(),
        "levels": cells,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, format!("{out:#}\n")).unwrap();
    eprintln!("wrote {path}");
}
