//! The parallel finalize pipeline: end-to-end latency of draining,
//! spilling and emitting a 1M-sample run at 1, 2 and 8 threads.
//!
//! The determinism contract (byte-identical artifacts at every width)
//! is pinned by `integration/tests/finalize_parallel.rs`; this bench
//! measures what the parallelism buys. Also isolates the two dominant
//! stages — pooled chunk encoding and streaming PROV-JSON emission —
//! so regressions are attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use metric_store::zarr::{ZarrOptions, ZarrStore};
use metric_store::{MetricPoint, MetricSeries, MetricStore, WorkerPool};
use yprov4ml::model::{Context, LogRecord};
use yprov4ml::run::{FinalizeOptions, RunOptions};
use yprov4ml::{Experiment, SpillPolicy};

const SERIES: usize = 8;
const POINTS_PER_SERIES: usize = 125_000;
const TOTAL_SAMPLES: usize = SERIES * POINTS_PER_SERIES;

/// 1M metric samples spread over 8 series, pre-built once.
fn sample_records() -> Vec<LogRecord> {
    let mut records = Vec::with_capacity(TOTAL_SAMPLES);
    for step in 0..POINTS_PER_SERIES as u64 {
        for series in 0..SERIES {
            records.push(LogRecord::Metric {
                name: format!("metric_{series}"),
                context: Context::Training,
                step,
                epoch: (step / 10_000) as u32,
                time_us: step as i64,
                value: (step as f64 * 0.001).sin() * (series + 1) as f64,
            });
        }
    }
    records
}

fn sample_series() -> Vec<MetricSeries> {
    let mut all = Vec::with_capacity(SERIES);
    for series in 0..SERIES {
        let mut s = MetricSeries::new(format!("metric_{series}"), "training");
        for step in 0..POINTS_PER_SERIES as u64 {
            s.push(MetricPoint {
                step,
                epoch: (step / 10_000) as u32,
                time_us: step as i64,
                value: (step as f64 * 0.001).sin() * (series + 1) as f64,
            });
        }
        all.push(s);
    }
    all
}

/// Full pipeline: log 1M samples through the (sharded) collector, then
/// finish — drain, pooled Zarr spill, streamed emission.
fn bench_run_finalize(c: &mut Criterion) {
    let records = sample_records();
    let base = std::env::temp_dir().join(format!("ybench_finalize_{}", std::process::id()));

    let mut group = c.benchmark_group("finalize/1M_samples");
    group.throughput(Throughput::Elements(TOTAL_SAMPLES as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        std::fs::remove_dir_all(&base).ok();
                        let exp = Experiment::new("bench", &base).unwrap();
                        let run = exp
                            .start_run_with(
                                "r",
                                RunOptions {
                                    spill: SpillPolicy::Zarr(ZarrOptions::default()),
                                    finalize: FinalizeOptions::with_threads(threads),
                                    ..Default::default()
                                },
                            )
                            .unwrap();
                        (run, records.clone())
                    },
                    |(run, records)| {
                        run.log_many(records).unwrap();
                        run.finish().unwrap()
                    },
                    criterion::BatchSize::PerIteration,
                )
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

/// The encoding stage alone: `write_many` through pools of each width.
fn bench_spill_stage(c: &mut Criterion) {
    let series = sample_series();
    let refs: Vec<&MetricSeries> = series.iter().collect();
    let base = std::env::temp_dir().join(format!("ybench_spill_{}", std::process::id()));

    let mut group = c.benchmark_group("finalize/zarr_write_many");
    group.throughput(Throughput::Elements(TOTAL_SAMPLES as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pool = WorkerPool::new(threads);
                b.iter(|| {
                    std::fs::remove_dir_all(&base).ok();
                    let store = ZarrStore::create(&base, ZarrOptions::default()).unwrap();
                    store.write_many(&refs, &pool).unwrap();
                });
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&base).ok();
}

/// The emission stage alone: streaming writer vs. the Value-tree path,
/// on an inline document carrying every sample.
fn bench_emission_stage(c: &mut Criterion) {
    use yprov4ml::collector::Collector;
    use yprov4ml::prov_emit::{build_document, RunIdentity};
    use yprov4ml::spill::spill_metrics;

    let collector = Collector::synchronous();
    for record in sample_records() {
        collector.log(record).unwrap();
    }
    let state = collector.close().unwrap();
    let series: Vec<&MetricSeries> = state.metrics.values().collect();
    let tmp = std::env::temp_dir().join(format!("ybench_emit_{}", std::process::id()));
    std::fs::remove_dir_all(&tmp).ok();
    std::fs::create_dir_all(&tmp).unwrap();
    let spill = spill_metrics(&tmp, &SpillPolicy::Inline, &series).unwrap();
    let identity = RunIdentity {
        experiment: "bench".into(),
        run: "r".into(),
        user: "u".into(),
        started_us: 0,
        ended_us: 1,
    };
    let doc = build_document(&identity, &state, &spill, true);

    let mut group = c.benchmark_group("finalize/prov_json_emit");
    group.sample_size(10);
    group.bench_function("value_tree", |b| {
        b.iter(|| doc.to_json_string_pretty().unwrap().len())
    });
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            doc.write_json_pretty(&mut out).unwrap();
            out.len()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&tmp).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_run_finalize, bench_spill_stage, bench_emission_stage
}
criterion_main!(benches);
