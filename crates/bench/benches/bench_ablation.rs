//! Criterion counterpart of the codec ablation (E8): encode/decode
//! throughput of every codec stage on representative metric bytes.

use bench::workload::table1_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use metric_store::codec::{self, CodecId};

fn bench_codecs(c: &mut Criterion) {
    let series = table1_series("loss", "training", 50_000, 42);
    let (_, _, _, values) = series.columns();
    let raw = codec::encode_f64_raw(&values);

    let mut group = c.benchmark_group("ablation/codec_encode");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    for (name, pipeline) in [
        ("rle", vec![CodecId::Rle]),
        ("shuffle+rle", vec![CodecId::Shuffle8, CodecId::Rle]),
        ("lz77", vec![CodecId::Lz77]),
        ("huffman", vec![CodecId::Huffman]),
        ("lz77+huffman", vec![CodecId::Lz77, CodecId::Huffman]),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| codec::encode_pipeline(&raw, &pipeline))
        });
    }
    group.bench_function(BenchmarkId::from_parameter("xor-float"), |b| {
        b.iter(|| codec::xor::encode(&values))
    });
    group.finish();

    let mut group = c.benchmark_group("ablation/codec_decode");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    for (name, pipeline) in [
        ("rle", vec![CodecId::Rle]),
        ("lz77+huffman", vec![CodecId::Lz77, CodecId::Huffman]),
    ] {
        let encoded = codec::encode_pipeline(&raw, &pipeline);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| codec::decode_pipeline(&encoded, &pipeline).unwrap())
        });
    }
    let xor_encoded = codec::xor::encode(&values);
    group.bench_function(BenchmarkId::from_parameter("xor-float"), |b| {
        b.iter(|| codec::xor::decode(&xor_encoded).unwrap())
    });
    group.finish();
}

fn bench_int_columns(c: &mut Criterion) {
    let series = table1_series("loss", "training", 50_000, 42);
    let (steps, _, times, _) = series.columns();
    let mut group = c.benchmark_group("ablation/int_columns");
    group.throughput(Throughput::Elements(steps.len() as u64));
    group.bench_function("steps_delta_varint", |b| {
        b.iter(|| codec::encode_u64_column(&steps))
    });
    group.bench_function("times_delta_zigzag", |b| {
        b.iter(|| codec::encode_i64_column(&times))
    });
    let enc = codec::encode_u64_column(&steps);
    group.bench_function("steps_decode", |b| {
        b.iter(|| codec::decode_u64_column(&enc).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_codecs, bench_int_columns
}
criterion_main!(benches);
