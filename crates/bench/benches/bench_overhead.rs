//! The "minimal overhead" claim (E7): cost of the logging hot path.
//!
//! Measures `log_metric` under the buffered and synchronous collectors,
//! with concurrent producers, and with a telemetry plugin attached —
//! the numbers that decide whether provenance collection can stay on in
//! production training loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use yprov4ml::collector::Collector;
use yprov4ml::model::{Context, LogRecord};
use yprov4ml::plugins::{PluginSink, ProvPlugin, SystemStats, SystemStatsPlugin};

fn metric_record(step: u64) -> LogRecord {
    LogRecord::Metric {
        name: "loss".into(),
        context: Context::Training,
        step,
        epoch: 0,
        time_us: step as i64,
        value: 0.5,
    }
}

fn bench_single_producer(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead/log_metric");
    group.throughput(Throughput::Elements(1));

    group.bench_function(BenchmarkId::from_parameter("buffered"), |b| {
        let collector = Collector::buffered().unwrap();
        let mut step = 0u64;
        b.iter(|| {
            collector.log(metric_record(step)).unwrap();
            step += 1;
        });
        collector.close().unwrap();
    });

    group.bench_function(BenchmarkId::from_parameter("synchronous"), |b| {
        let collector = Collector::synchronous();
        let mut step = 0u64;
        b.iter(|| {
            collector.log(metric_record(step)).unwrap();
            step += 1;
        });
        collector.close().unwrap();
    });
    group.finish();
}

fn bench_concurrent_producers(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead/concurrent_8_producers");
    group.throughput(Throughput::Elements(8 * 1_000));
    group.bench_function("buffered", |b| {
        b.iter_batched(
            || Collector::buffered().unwrap(),
            |collector| {
                let mut handles = Vec::new();
                for _ in 0..8 {
                    let c = Arc::clone(&collector);
                    handles.push(std::thread::spawn(move || {
                        for step in 0..1_000 {
                            c.log(metric_record(step)).unwrap();
                        }
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
                collector.close().unwrap()
            },
            criterion::BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_plugin_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead/plugin_tick");
    group.throughput(Throughput::Elements(1));
    group.bench_function("system_stats", |b| {
        let collector = Collector::buffered().unwrap();
        let mut plugin = SystemStatsPlugin::new(|| SystemStats {
            memory_bytes: 1 << 30,
            cpu_util: 0.4,
        });
        b.iter(|| {
            let mut sink = PluginSink::new(&collector);
            plugin.on_tick(&mut sink);
        });
        collector.close().unwrap();
    });
    group.finish();
}

fn bench_journal(c: &mut Criterion) {
    use yprov4ml::journal::{JournalConfig, JournalHeader, JournalWriter, SyncPolicy};
    let mut group = c.benchmark_group("overhead/journaled_log");
    group.throughput(Throughput::Elements(1));
    // The journal hot path under each durability level: no fsync
    // (OnFlush), amortized fsync (EveryN), fsync per record (Always).
    for (tag, sync) in [
        ("journal_append_onflush", SyncPolicy::OnFlush),
        ("journal_append_every100", SyncPolicy::EveryN(100)),
        ("journal_append_always", SyncPolicy::Always),
    ] {
        group.bench_function(tag, |b| {
            let dir =
                std::env::temp_dir().join(format!("ybench_journal_{tag}_{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let writer = JournalWriter::create_with(
                &dir,
                &JournalHeader::new("bench", "r", "u", 0),
                JournalConfig {
                    sync,
                    ..Default::default()
                },
            )
            .unwrap();
            let mut step = 0u64;
            b.iter(|| {
                writer.append(&metric_record(step)).unwrap();
                step += 1;
            });
            writer.close().unwrap();
            std::fs::remove_dir_all(&dir).ok();
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_single_producer, bench_concurrent_producers, bench_plugin_tick, bench_journal
}
criterion_main!(benches);
