//! Replication throughput: upload rate against a single node versus a
//! 3-node cluster where every acknowledged write is synchronously
//! streamed to a replica and confirmed. The gap is the price of the
//! durability guarantee (a second verified copy before the ack).
//!
//! Besides the criterion groups, `record_summary` runs one fixed-size
//! measurement pass and records the numbers in `BENCH_replication.json`
//! at the repo root, so the result rides along with the tree.

use criterion::{criterion_group, criterion_main, Criterion};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};
use yprov_service::{
    Client, ClusterClient, ClusterConfig, DocumentStore, NodeSpec, RetryPolicy, Server,
    ServerConfig,
};

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(40),
        request_timeout: Duration::from_secs(5),
        jitter_seed: seed,
    }
}

fn doc_json(tag: &str) -> String {
    let mut doc = prov_model::ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(prov_model::QName::new("ex", "data"));
    doc.activity(prov_model::QName::new("ex", "train"));
    doc.entity(prov_model::QName::new("ex", tag));
    doc.used(
        prov_model::QName::new("ex", "train"),
        prov_model::QName::new("ex", "data"),
    );
    doc.was_generated_by(
        prov_model::QName::new("ex", tag),
        prov_model::QName::new("ex", "train"),
    );
    doc.to_json_string().unwrap()
}

/// Reserves `n` loopback addresses so full-mesh peers can be wired
/// before any server binds.
fn reserve_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners.iter().map(|l| l.local_addr().unwrap()).collect()
}

fn bind_single() -> Server {
    Server::bind("127.0.0.1:0", DocumentStore::new(), ServerConfig::default()).unwrap()
}

fn bind_three_node() -> (Vec<Server>, Vec<NodeSpec>) {
    let ids = ["node-a", "node-b", "node-c"];
    let addrs = reserve_addrs(ids.len());
    let servers = ids
        .iter()
        .enumerate()
        .map(|(i, id)| {
            let peers = ids
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, pid)| NodeSpec::new(*pid, addrs[j]))
                .collect();
            Server::bind(
                &addrs[i].to_string(),
                DocumentStore::new(),
                ServerConfig {
                    cluster: Some(ClusterConfig {
                        push_policy: policy(3),
                        ..ClusterConfig::new(*id, peers)
                    }),
                    ..Default::default()
                },
            )
            .unwrap()
        })
        .collect();
    let specs = ids
        .iter()
        .zip(&addrs)
        .map(|(id, addr)| NodeSpec::new(*id, *addr))
        .collect();
    (servers, specs)
}

fn bench_upload_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication/upload");

    let single = bind_single();
    let client = Client::new(single.addr(), policy(1));
    let body = doc_json("model");
    let mut n = 0u64;
    group.bench_function("single_node", |b| {
        b.iter(|| {
            n += 1;
            let resp = client
                .send("PUT", &format!("/api/v0/documents/s-{n}"), Some(&body))
                .unwrap();
            assert_eq!(resp.status, 201);
        })
    });

    let (servers, specs) = bind_three_node();
    let cluster = ClusterClient::new(specs, 2, policy(2));
    let mut n = 0u64;
    group.bench_function("three_node_replicated", |b| {
        b.iter(|| {
            n += 1;
            let resp = cluster.put(&format!("r-{n}"), &body).unwrap();
            assert_eq!(resp.status, 201);
        })
    });

    group.finish();
    single.shutdown();
    for s in servers {
        s.shutdown();
    }
}

/// One fixed-size pass per configuration, recorded as JSON so the
/// numbers land in the tree (`BENCH_replication.json`).
fn record_summary(_c: &mut Criterion) {
    const DOCS: u64 = 200;
    let body = doc_json("model");

    let single = bind_single();
    let client = Client::new(single.addr(), policy(1));
    let start = Instant::now();
    for i in 0..DOCS {
        let resp = client
            .send("PUT", &format!("/api/v0/documents/s-{i}"), Some(&body))
            .unwrap();
        assert_eq!(resp.status, 201);
    }
    let single_secs = start.elapsed().as_secs_f64();
    single.shutdown();

    let (servers, specs) = bind_three_node();
    let cluster = ClusterClient::new(specs, 2, policy(2));
    let start = Instant::now();
    for i in 0..DOCS {
        let resp = cluster.put(&format!("r-{i}"), &body).unwrap();
        assert_eq!(resp.status, 201);
    }
    let replicated_secs = start.elapsed().as_secs_f64();
    for s in servers {
        s.shutdown();
    }

    let out = serde_json::json!({
        "bench": "bench_replication",
        "description": "Upload throughput, single node vs 3-node cluster with \
                        synchronous replica confirmation (replication=2, acks=1).",
        "docs_per_config": DOCS,
        "document_bytes": body.len(),
        "single_node": {
            "total_secs": single_secs,
            "docs_per_sec": DOCS as f64 / single_secs,
        },
        "three_node_replicated": {
            "total_secs": replicated_secs,
            "docs_per_sec": DOCS as f64 / replicated_secs,
        },
        "replication_overhead_x": replicated_secs / single_secs,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replication.json");
    std::fs::write(path, format!("{:#}\n", out)).unwrap();
    eprintln!("wrote {path}");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_upload_throughput, record_summary
}
criterion_main!(benches);
