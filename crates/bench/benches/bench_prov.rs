//! Provenance-layer benchmarks: PROV-JSON serialization/parsing, graph
//! indexing and lineage queries — the operations the yProv service runs
//! on every uploaded document.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prov_graph::ProvGraph;
use prov_model::{ProvDocument, QName};

/// A chain-structured document with `n` derivation hops plus fan-out.
fn chain_doc(n: usize) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    for i in 0..n {
        doc.entity(QName::new("ex", format!("e{i}")));
        doc.activity(QName::new("ex", format!("a{i}")));
        if i > 0 {
            doc.used(
                QName::new("ex", format!("a{i}")),
                QName::new("ex", format!("e{}", i - 1)),
            );
        }
        doc.was_generated_by(
            QName::new("ex", format!("e{i}")),
            QName::new("ex", format!("a{i}")),
        );
    }
    doc
}

fn bench_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("prov/json");
    for n in [100usize, 1_000] {
        let doc = chain_doc(n);
        let json = doc.to_json_string().unwrap();
        group.throughput(Throughput::Bytes(json.len() as u64));
        group.bench_function(BenchmarkId::new("serialize", n), |b| {
            b.iter(|| doc.to_json_string().unwrap())
        });
        group.bench_function(BenchmarkId::new("parse", n), |b| {
            b.iter(|| ProvDocument::from_json_str(&json).unwrap())
        });
    }
    group.finish();
}

fn bench_graph_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("prov/graph");
    for n in [100usize, 1_000] {
        let doc = chain_doc(n);
        let last = QName::new("ex", format!("e{}", n - 1));
        group.bench_function(BenchmarkId::new("index", n), |b| {
            b.iter(|| ProvGraph::new(&doc))
        });
        let graph = ProvGraph::new(&doc);
        group.bench_function(BenchmarkId::new("ancestors", n), |b| {
            b.iter(|| graph.ancestors(&last))
        });
        group.bench_function(BenchmarkId::new("topo_order", n), |b| {
            b.iter(|| graph.topo_order().unwrap())
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let doc = chain_doc(1_000);
    c.bench_function("prov/validate_1000", |b| {
        b.iter(|| prov_model::validate(&doc))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_serialization, bench_graph_queries, bench_validation
}
criterion_main!(benches);
