//! Ops-plane overhead: what one scrape tick costs against a populated
//! registry, and what recording a request into the slow-request log
//! costs on the hot path — each with its disabled counterpart, so the
//! "near-zero when off" claim is a measured number instead of a hope.
//!
//! Three cells land in `BENCH_obs.json` at the repo root:
//!
//! * `scrape_tick` — `Ops::tick` (snapshot + tsdb record + alert
//!   evaluation) over an enabled registry carrying a few hundred
//!   series, vs the same tick over a disabled (empty-snapshot)
//!   registry;
//! * `slowlog_record` — `SlowLog::record` with the ring enabled vs
//!   disabled, against the loop baseline;
//! * `instrument_hot_path` — the counter increment a request handler
//!   pays, enabled vs disabled, for scale.
//!
//! `YPROV_BENCH_SMOKE=1` shrinks iteration counts so CI can exercise
//! the harness cheaply.

use obs::alerts::{AlertRule, Cmp};
use serde_json::json;
use std::time::Instant;
use yprov_service::{Ops, OpsConfig, SlowLog};

/// Mean nanoseconds per call of `f` over `iters` calls.
fn time_ns(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A registry that looks like a busy server's: labelled request
/// counters, a few gauges, and latency histograms with samples.
fn populated_registry(series: usize) -> obs::Registry {
    let registry = obs::Registry::new();
    for i in 0..series {
        registry
            .counter(&format!(
                "http_requests_total{{route=\"/r{i}\",status=\"200\"}}"
            ))
            .add(i as u64 + 1);
    }
    for i in 0..series / 8 {
        registry.gauge(&format!("pool_size{{shard=\"{i}\"}}")).set(4);
        let h = registry.histogram(&format!("latency_seconds{{shard=\"{i}\"}}"));
        for k in 0..64u64 {
            h.record_ns(1_000 * (k + 1));
        }
    }
    registry
}

fn bench_scrape_tick(ticks: u64, series: usize) -> serde_json::Value {
    let cfg = OpsConfig {
        self_scrape: false,
        alert_rules: vec![AlertRule::new(
            "hot",
            "http_requests_total{route=\"/r0\",status=\"200\"}",
            Cmp::Gt,
            1e12,
            5.0,
        )],
        ..OpsConfig::default()
    };

    let enabled_reg = populated_registry(series);
    let ops = Ops::new(&cfg, &enabled_reg);
    // Drive the counters between ticks so deltas are non-empty, the
    // way a live server's scrape sees them.
    let hot = enabled_reg.counter("http_requests_total{route=\"/r0\",status=\"200\"}");
    let enabled_ns = time_ns(ticks, |i| {
        hot.add(3);
        ops.tick(i as f64, &[&enabled_reg]);
    });

    let disabled_reg = obs::Registry::disabled();
    let disabled_ops = Ops::new(&cfg, &disabled_reg);
    let disabled_ns = time_ns(ticks, |i| {
        disabled_ops.tick(i as f64, &[&disabled_reg]);
    });

    eprintln!(
        "scrape_tick ({series} series): enabled {enabled_ns:.0} ns, disabled {disabled_ns:.0} ns"
    );
    json!({
        "series": series,
        "ticks": ticks,
        "enabled_ns_per_tick": enabled_ns,
        "disabled_ns_per_tick": disabled_ns,
    })
}

fn bench_slowlog(iters: u64) -> serde_json::Value {
    let log = SlowLog::new(8);
    let enabled_ns = time_ns(iters, |i| {
        log.record(
            "GET",
            "/api/v0/documents/doc-1",
            "/api/v0/documents/{id}",
            200,
            1_000 + (i % 97) * 13,
            None,
            None,
        );
    });

    let off = SlowLog::new(8);
    off.set_enabled(false);
    let disabled_ns = time_ns(iters, |i| {
        off.record(
            "GET",
            "/api/v0/documents/doc-1",
            "/api/v0/documents/{id}",
            200,
            1_000 + (i % 97) * 13,
            None,
            None,
        );
    });

    let baseline_ns = time_ns(iters, |i| {
        std::hint::black_box(1_000 + (i % 97) * 13);
    });

    eprintln!(
        "slowlog_record: enabled {enabled_ns:.1} ns, disabled {disabled_ns:.1} ns, \
         baseline {baseline_ns:.1} ns"
    );
    json!({
        "iters": iters,
        "enabled_ns_per_record": enabled_ns,
        "disabled_ns_per_record": disabled_ns,
        "loop_baseline_ns": baseline_ns,
    })
}

fn bench_instrument(iters: u64) -> serde_json::Value {
    let enabled_reg = obs::Registry::new();
    let on = enabled_reg.counter("requests_total");
    let enabled_ns = time_ns(iters, |_| on.inc());

    let disabled_reg = obs::Registry::disabled();
    let off = disabled_reg.counter("requests_total");
    let disabled_ns = time_ns(iters, |_| off.inc());

    eprintln!("counter_inc: enabled {enabled_ns:.2} ns, disabled {disabled_ns:.2} ns");
    json!({
        "iters": iters,
        "enabled_ns_per_inc": enabled_ns,
        "disabled_ns_per_inc": disabled_ns,
    })
}

fn main() {
    let smoke = matches!(std::env::var("YPROV_BENCH_SMOKE"), Ok(v) if v != "0");
    let (ticks, series, iters) = if smoke {
        (500, 128, 100_000)
    } else {
        (5_000, 512, 2_000_000)
    };

    let out = json!({
        "bench": "bench_obs",
        "description": "Ops-plane overhead: scrape-tick cost over a populated \
                        vs disabled registry, slowlog record cost enabled vs \
                        disabled, and the instrument hot path.",
        // CI's bench-smoke guard greps for this: a committed file that
        // still says "pending" fails the job.
        "status": "measured",
        "smoke": smoke,
        "scrape_tick": bench_scrape_tick(ticks, series),
        "slowlog_record": bench_slowlog(iters),
        "instrument_hot_path": bench_instrument(iters),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, format!("{out:#}\n")).unwrap();
    eprintln!("wrote {path}");
}
