//! Per-span cost of the tracing layer, enabled vs disabled — the number
//! that decides whether instrumentation can stay in the collector and
//! simulator hot paths. Disabled must be a relaxed load and nothing
//! else; enabled pays one clock read plus a ring push.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_span_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/span");
    group.throughput(Throughput::Elements(1));

    group.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        obs::trace::set_enabled(false);
        b.iter(|| {
            let _s = obs::trace::span("bench");
        });
    });

    group.bench_function(BenchmarkId::from_parameter("enabled"), |b| {
        obs::trace::set_enabled(true);
        obs::trace::drain();
        b.iter(|| {
            let _s = obs::trace::span("bench");
        });
        obs::trace::set_enabled(false);
        obs::trace::drain();
    });

    group.bench_function(BenchmarkId::from_parameter("enabled_annotated"), |b| {
        obs::trace::set_enabled(true);
        obs::trace::drain();
        let mut step = 0u64;
        b.iter(|| {
            let mut s = obs::trace::span("bench");
            s.annotate("step", step.to_string());
            step += 1;
        });
        obs::trace::set_enabled(false);
        obs::trace::drain();
    });

    group.finish();
}

fn bench_record_complete(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace/record_complete");
    group.throughput(Throughput::Elements(1));

    group.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        obs::trace::set_enabled(false);
        b.iter(|| obs::trace::record_complete("rank 0", "step", 0, 1_000, 0, &[]));
    });

    group.bench_function(BenchmarkId::from_parameter("enabled"), |b| {
        obs::trace::set_enabled(true);
        obs::trace::drain();
        b.iter(|| obs::trace::record_complete("rank 0", "step", 0, 1_000, 0, &[]));
        obs::trace::set_enabled(false);
        obs::trace::drain();
    });

    group.finish();
}

criterion_group!(benches, bench_span_overhead, bench_record_complete);
criterion_main!(benches);
