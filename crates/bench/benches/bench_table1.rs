//! Criterion counterpart of Table 1 (E1): write/read throughput and
//! on-disk footprint of the three metric storage backends on an
//! identical series.

use bench::workload::table1_series;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use metric_store::json_store::JsonStore;
use metric_store::netcdf::{NcOptions, NcStore};
use metric_store::store::MetricStore;
use metric_store::zarr::{ZarrOptions, ZarrStore};

const POINTS: usize = 20_000;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ybench_t1_{tag}_{}", std::process::id()))
}

fn bench_writes(c: &mut Criterion) {
    let series = table1_series("loss", "training", POINTS, 42);
    let mut group = c.benchmark_group("table1/write");
    group.throughput(Throughput::Elements(POINTS as u64));

    group.bench_function(BenchmarkId::from_parameter("json"), |b| {
        let dir = tmp("json_w");
        std::fs::remove_dir_all(&dir).ok();
        let store = JsonStore::create(&dir).unwrap();
        b.iter(|| store.write_series(&series).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    });
    group.bench_function(BenchmarkId::from_parameter("zarr"), |b| {
        let dir = tmp("zarr_w");
        std::fs::remove_dir_all(&dir).ok();
        let store = ZarrStore::create(&dir, ZarrOptions::default()).unwrap();
        b.iter(|| store.write_series(&series).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    });
    group.bench_function(BenchmarkId::from_parameter("nc"), |b| {
        let path = tmp("nc_w.nc");
        std::fs::remove_file(&path).ok();
        let store = NcStore::create(&path, NcOptions::default()).unwrap();
        b.iter(|| store.write_series(&series).unwrap());
        std::fs::remove_file(&path).ok();
    });
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let series = table1_series("loss", "training", POINTS, 42);
    let mut group = c.benchmark_group("table1/read");
    group.throughput(Throughput::Elements(POINTS as u64));

    let json_dir = tmp("json_r");
    std::fs::remove_dir_all(&json_dir).ok();
    let json = JsonStore::create(&json_dir).unwrap();
    json.write_series(&series).unwrap();
    group.bench_function(BenchmarkId::from_parameter("json"), |b| {
        b.iter(|| json.read_series("loss", "training").unwrap())
    });

    let zarr_dir = tmp("zarr_r");
    std::fs::remove_dir_all(&zarr_dir).ok();
    let zarr = ZarrStore::create(&zarr_dir, ZarrOptions::default()).unwrap();
    zarr.write_series(&series).unwrap();
    group.bench_function(BenchmarkId::from_parameter("zarr"), |b| {
        b.iter(|| zarr.read_series("loss", "training").unwrap())
    });

    let nc_path = tmp("nc_r.nc");
    std::fs::remove_file(&nc_path).ok();
    let nc = NcStore::create(&nc_path, NcOptions::default()).unwrap();
    nc.write_series(&series).unwrap();
    group.bench_function(BenchmarkId::from_parameter("nc"), |b| {
        b.iter(|| nc.read_series("loss", "training").unwrap())
    });

    group.finish();
    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::remove_dir_all(&zarr_dir).ok();
    std::fs::remove_file(&nc_path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_writes, bench_reads
}
criterion_main!(benches);
