//! Criterion counterpart of Figure 3 (E5): cost of simulating single
//! scaling-study cells, and of the real threaded ring all-reduce that
//! underlies the DDP substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use train_sim::ddp::ring_allreduce;
use train_sim::model::Architecture;
use train_sim::sim::{NullObserver, TrainingSimulation, WalltimeCutoff};
use train_sim::DatasetSpec;

fn bench_sim_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3/simulate_cell");
    // Reduced dataset so a cell simulates in milliseconds; the cost
    // model per step is identical to the full study.
    for (arch, params, gpus) in [
        (Architecture::MaeVit, 100_000_000u64, 8u32),
        (Architecture::MaeVit, 1_400_000_000, 128),
        (Architecture::SwinV2, 600_000_000, 32),
    ] {
        let label = format!("{}-{}-{}gpus", arch.name(), params / 1_000_000, gpus);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut cfg = bench::figure3::cell_config(arch, params, gpus);
                cfg.dataset = DatasetSpec::modis().with_samples(20_000);
                cfg.epochs = 2;
                cfg.cutoff = WalltimeCutoff::Unlimited;
                TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver)
            })
        });
    }
    group.finish();
}

fn bench_ring_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3/ring_allreduce");
    for ranks in [2usize, 4, 8] {
        for n in [1_024usize, 65_536] {
            group.throughput(Throughput::Elements((ranks * n) as u64));
            let label = format!("{ranks}ranks-{n}elems");
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter_batched(
                    || {
                        (0..ranks)
                            .map(|r| (0..n).map(|i| (r * n + i) as f64).collect())
                            .collect::<Vec<Vec<f64>>>()
                    },
                    ring_allreduce,
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_sim_cells, bench_ring_allreduce
}
criterion_main!(benches);
