//! Lineage-query engine benchmark: planned execution versus a naive
//! always-from-start baseline, over layered provenance graphs where the
//! two anchor sides differ by orders of magnitude in selectivity.
//!
//! Each graph is a `layers x width` derivation lattice. The measured
//! query matches *every* entity on its broad side and a single
//! identifier on its narrow side — exactly the shape where the
//! planner's side choice matters. The naive baseline runs the same IR
//! through the same executor but with the anchor side pinned to
//! `FromStart`, so the delta is the planner's decision alone, not a
//! different code path. The three ML-audit queries (leakage, GDPR,
//! fairness) ride along for end-to-end latency numbers.
//!
//! Results land in `BENCH_query.json` at the repo root.
//! `YPROV_BENCH_SMOKE=1` shrinks sizes and iterations for CI.

use prov_graph::audit;
use prov_graph::{execute_with_plan, plan, PlanSide, ProvGraph, QueryPlan};
use prov_model::query::{Repeat, Step, StepDirection};
use prov_model::{AttrValue, ElementFilter, PathQuery, ProvDocument, QName};
use serde_json::json;
use std::time::Instant;

fn q(name: &str) -> QName {
    QName::new("ex", name)
}

/// A `layers x width` lattice: node `L/i` is derived from nodes
/// `(L-1)/i` and `(L-1)/(i+1 mod width)` — every node reaches the root
/// layer, edge count ~ `2 * layers * width`.
fn lattice_doc(layers: usize, width: usize) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.namespaces_mut()
        .register("yprov4ml", prov_model::qname::YPROV_NS)
        .unwrap();
    let id = |l: usize, i: usize| q(&format!("n{l}x{i}"));
    for l in 0..layers {
        for i in 0..width {
            doc.entity(id(l, i)).attr(
                QName::yprov("group"),
                AttrValue::from(if i % 3 == 0 { "a" } else { "b" }),
            );
            if l > 0 {
                doc.was_derived_from(id(l, i), id(l - 1, i));
                doc.was_derived_from(id(l, i), id(l - 1, (i + 1) % width));
            }
        }
    }
    doc
}

/// The skewed query: every entity is a start candidate; exactly one
/// root node is the target. A planner that costs both sides anchors at
/// the root and walks once; the naive baseline walks a closure from
/// every node in the graph.
fn skewed_query() -> PathQuery {
    PathQuery {
        start: ElementFilter {
            kind: Some(prov_model::ElementKind::Entity),
            ..Default::default()
        },
        steps: vec![Step {
            kinds: Vec::new(),
            direction: StepDirection::Forward,
            repeat: Repeat::plus(),
            target: ElementFilter::by_id(q("n0x0")),
        }],
        limit: None,
    }
}

/// Pins the anchor side of `planned` to `FromStart` — the baseline an
/// unplanned engine would always execute.
fn naive_plan(planned: &QueryPlan) -> QueryPlan {
    QueryPlan {
        side: PlanSide::FromStart,
        start_candidates: planned.start_candidates,
        end_candidates: planned.end_candidates,
        cost_from_start: planned.cost_from_start,
        cost_from_end: planned.cost_from_end,
        reason: "baseline: side pinned to from_start".into(),
    }
}

fn median_micros(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `iters` runs of the query under `make_plan` and returns
/// `(median_micros, rows_of_last_run)`.
fn time_query<F: Fn(&ProvGraph<'_>) -> QueryPlan>(
    graph: &ProvGraph<'_>,
    query: &PathQuery,
    iters: usize,
    make_plan: F,
) -> (u64, usize) {
    let mut samples = Vec::with_capacity(iters);
    let mut rows = 0;
    for _ in 0..iters {
        let t0 = Instant::now();
        let set = execute_with_plan(graph, query, make_plan(graph));
        samples.push(t0.elapsed().as_micros() as u64);
        rows = set.rows.len();
    }
    (median_micros(samples), rows)
}

fn run_cell(layers: usize, width: usize, iters: usize) -> serde_json::Value {
    let doc = lattice_doc(layers, width);
    let graph = ProvGraph::new(&doc);
    let query = skewed_query();

    let chosen = plan(&graph, &query);
    let (planned_us, planned_rows) = time_query(&graph, &query, iters, |g| plan(g, &query));
    let (naive_us, naive_rows) = time_query(&graph, &query, iters, |_| naive_plan(&chosen));
    assert_eq!(
        planned_rows, naive_rows,
        "both sides must produce identical match sets"
    );

    // The audit scenarios at this size, planned path only.
    let audits = {
        let t0 = Instant::now();
        let leakage = audit::data_leakage(&graph, None, None);
        let leakage_us = t0.elapsed().as_micros() as u64;
        let top = q(&format!("n{}x0", layers - 1));
        let t1 = Instant::now();
        let gdpr = audit::gdpr_trained_on(&graph, &q("n0x0"), &top);
        let gdpr_us = t1.elapsed().as_micros() as u64;
        let t2 = Instant::now();
        let fairness = audit::group_fairness(&graph, &top, &QName::yprov("group"));
        let fairness_us = t2.elapsed().as_micros() as u64;
        json!({
            "leakage_us": leakage_us,
            "leakage_clean": leakage.is_clean(),
            "gdpr_us": gdpr_us,
            "gdpr_trained_on": gdpr.trained_on,
            "fairness_us": fairness_us,
            "fairness_groups": fairness.groups.len(),
        })
    };

    json!({
        "layers": layers,
        "width": width,
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "plan_side": match chosen.side { PlanSide::FromStart => "from_start", PlanSide::FromEnd => "from_end" },
        "plan_reason": chosen.reason,
        "rows": planned_rows,
        "planned_median_us": planned_us,
        "naive_median_us": naive_us,
        "speedup": if planned_us > 0 { naive_us as f64 / planned_us as f64 } else { 0.0 },
        "audits": audits,
    })
}

fn main() {
    let smoke = matches!(std::env::var("YPROV_BENCH_SMOKE"), Ok(v) if v != "0");
    let sizes: &[(usize, usize)] = if smoke {
        &[(8, 16), (16, 32)]
    } else {
        &[(8, 16), (16, 64), (32, 128), (64, 256)]
    };
    let iters = if smoke { 5 } else { 25 };

    let cells: Vec<serde_json::Value> = sizes
        .iter()
        .map(|&(layers, width)| run_cell(layers, width, iters))
        .collect();

    let out = json!({
        "bench": "bench_query",
        "description": "Planned path-pattern execution vs a from-start-pinned \
                        baseline over layered derivation lattices, plus the \
                        three ML-audit queries per size.",
        // CI's bench-smoke guard greps for this: a committed file that
        // still says "pending" fails the job.
        "status": "measured",
        "smoke": smoke,
        "iterations": iters,
        "query": "every entity -> (forward, +) -> one root id",
        "cells": cells,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, format!("{out:#}\n")).unwrap();
    eprintln!("wrote {path}");
}
