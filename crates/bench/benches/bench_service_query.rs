//! Service query-path benchmarks: `ancestors`/`subgraph` latency on a
//! large document, cold (index rebuilt per query, the pre-cache
//! behaviour) versus cached (the store's shared `Arc` index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prov_model::{ProvDocument, QName};
use yprov_service::DocumentStore;

/// A chain-structured document with `n` derivation hops — the worst
/// case for lineage queries, whose answer spans the whole chain.
fn chain_doc(n: usize) -> ProvDocument {
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    for i in 0..n {
        doc.entity(QName::new("ex", format!("e{i}")));
        doc.activity(QName::new("ex", format!("a{i}")));
        if i > 0 {
            doc.used(
                QName::new("ex", format!("a{i}")),
                QName::new("ex", format!("e{}", i - 1)),
            );
        }
        doc.was_generated_by(
            QName::new("ex", format!("e{i}")),
            QName::new("ex", format!("a{i}")),
        );
    }
    doc
}

fn bench_query_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/query");
    for n in [1_000usize, 5_000] {
        let store = DocumentStore::new();
        let id = store.upload(chain_doc(n)).unwrap();
        let focus = QName::new("ex", format!("e{}", n - 1));
        let mid = QName::new("ex", format!("e{}", n / 2));

        // Cold: every query pays the O(document) index build — what the
        // store did per request before the cache.
        group.bench_function(BenchmarkId::new("ancestors_cold", n), |b| {
            b.iter(|| {
                store.clear_index_cache();
                store.ancestors(&id, &focus).unwrap()
            })
        });
        // Cached: the query reuses the index built at upload time.
        store.ancestors(&id, &focus).unwrap(); // prime
        group.bench_function(BenchmarkId::new("ancestors_cached", n), |b| {
            b.iter(|| store.ancestors(&id, &focus).unwrap())
        });

        group.bench_function(BenchmarkId::new("subgraph_cold", n), |b| {
            b.iter(|| {
                store.clear_index_cache();
                store.subgraph(&id, &mid).unwrap()
            })
        });
        store.subgraph(&id, &mid).unwrap(); // prime
        group.bench_function(BenchmarkId::new("subgraph_cached", n), |b| {
            b.iter(|| store.subgraph(&id, &mid).unwrap())
        });
    }
    group.finish();
}

/// A short shallow query on a big document — the case the cache helps
/// most: the answer is O(1) but the cold path still rebuilds the whole
/// index.
fn bench_shallow_query(c: &mut Criterion) {
    let n = 5_000usize;
    let store = DocumentStore::new();
    let id = store.upload(chain_doc(n)).unwrap();
    let first = QName::new("ex", "e0");

    let mut group = c.benchmark_group("service/shallow");
    group.bench_function("ancestors_cold", |b| {
        b.iter(|| {
            store.clear_index_cache();
            store.ancestors(&id, &first).unwrap()
        })
    });
    store.ancestors(&id, &first).unwrap();
    group.bench_function("ancestors_cached", |b| {
        b.iter(|| store.ancestors(&id, &first).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_query_latency, bench_shallow_query
}
criterion_main!(benches);
