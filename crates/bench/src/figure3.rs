//! The Figure 3 experiment driver: the paper's §5 scaling study.
//!
//! 2 architectures × 4 model sizes × 5 GPU counts, DDP on the
//! Frontier-like machine, MODIS workload, 2-hour walltime. Each cell
//! reports the paper's trade-off metric (final loss × total energy in
//! kWh); cells whose run exceeds the walltime are *empty*, exactly as
//! in the paper's heat maps.

use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{NullObserver, SimConfig, TrainingSimulation, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};

/// The GPU counts of the paper's study.
pub const GPU_COUNTS: [u32; 5] = [8, 16, 32, 64, 128];

/// Epochs used in the reproduction. Chosen so that, under the 2-hour
/// cutoff, the *pattern* of the paper emerges: every 100 M cell
/// completes, while the large models drop out at low GPU counts.
pub const EPOCHS: u32 = 20;

/// One cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure3Cell {
    /// Architecture of this cell.
    pub arch: Architecture,
    /// Model parameter count.
    pub params: u64,
    /// GPU count.
    pub gpus: u32,
    /// Final loss (meaningful only when `completed`).
    pub final_loss: f64,
    /// Total energy in kWh.
    pub energy_kwh: f64,
    /// Simulated walltime in seconds.
    pub walltime_s: f64,
    /// The paper's metric: loss × energy.
    pub loss_energy: f64,
    /// False = exceeded the walltime (an empty cell in the figure).
    pub completed: bool,
}

/// The full grid for one architecture.
#[derive(Debug, Clone)]
pub struct Figure3Grid {
    /// Architecture of the grid.
    pub arch: Architecture,
    /// Rows (one per model size), each with one cell per GPU count.
    pub rows: Vec<Vec<Figure3Cell>>,
}

/// The simulation configuration of one cell.
pub fn cell_config(arch: Architecture, params: u64, gpus: u32) -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(arch, params),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::modis(),
        gpus,
        per_gpu_batch: 32,
        epochs: EPOCHS,
        comm: Default::default(),
        cutoff: WalltimeCutoff::paper_two_hours(),
        exercise_collective: false,
        phase: train_sim::sim::Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

/// Runs one cell of the study.
pub fn run_figure3_cell(arch: Architecture, params: u64, gpus: u32) -> Figure3Cell {
    let cfg = cell_config(arch, params, gpus);
    let sim = TrainingSimulation::new(cfg).expect("paper corners are valid configs");
    let result = sim.run(&mut NullObserver);
    Figure3Cell {
        arch,
        params,
        gpus,
        final_loss: result.final_loss,
        energy_kwh: result.energy_kwh,
        walltime_s: result.walltime_s,
        loss_energy: result.loss_energy_product,
        completed: result.completed,
    }
}

/// Runs the whole grid for one architecture.
pub fn run_grid(arch: Architecture) -> Figure3Grid {
    let rows = ModelConfig::paper_ladder(arch)
        .into_iter()
        .map(|model| {
            GPU_COUNTS
                .iter()
                .map(|&gpus| run_figure3_cell(arch, model.params, gpus))
                .collect()
        })
        .collect();
    Figure3Grid { arch, rows }
}

impl Figure3Grid {
    /// Renders the grid the way the paper's heat map tabulates it:
    /// loss × energy per cell, empty cells for over-walltime runs.
    pub fn render(&self) -> String {
        let mut out = format!("{} — loss × total energy (kWh), 2 h walltime\n", self.arch);
        out.push_str(&format!("{:>8} |", "params"));
        for g in GPU_COUNTS {
            out.push_str(&format!(" {g:>9} GPUs"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(10 + GPU_COUNTS.len() * 15));
        out.push('\n');
        for row in &self.rows {
            let tag = ModelConfig::sized(self.arch, row[0].params).size_tag();
            out.push_str(&format!("{tag:>8} |"));
            for cell in row {
                if cell.completed {
                    out.push_str(&format!(" {:>13.3}", cell.loss_energy));
                } else {
                    out.push_str(&format!(" {:>13}", "—"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// CSV rows: `arch,params,gpus,completed,loss,energy_kwh,walltime_s,loss_energy`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            for c in row {
                out.push_str(&format!(
                    "{},{},{},{},{:.6},{:.6},{:.1},{:.6}\n",
                    c.arch.name(),
                    c.params,
                    c.gpus,
                    c.completed,
                    c.final_loss,
                    c.energy_kwh,
                    c.walltime_s,
                    c.loss_energy
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_model_completes_everywhere() {
        for &gpus in &GPU_COUNTS {
            let cell = run_figure3_cell(Architecture::MaeVit, 100_000_000, gpus);
            assert!(
                cell.completed,
                "100M MAE must fit the 2h budget at {gpus} GPUs"
            );
            assert!(cell.loss_energy > 0.0);
        }
    }

    #[test]
    fn biggest_swin_fails_at_low_gpu_counts() {
        let low = run_figure3_cell(Architecture::SwinV2, 1_400_000_000, 8);
        assert!(
            !low.completed,
            "1.4B SwinV2 on 8 GPUs must blow the 2h budget"
        );
        let high = run_figure3_cell(Architecture::SwinV2, 1_400_000_000, 128);
        assert!(high.completed, "1.4B SwinV2 on 128 GPUs must finish");
    }

    #[test]
    fn swin_beats_mae_loss_at_scale() {
        // The paper: "the newer SwinT-V2 architecture is performing much
        // better at scale".
        let mae = run_figure3_cell(Architecture::MaeVit, 1_400_000_000, 128);
        let swin = run_figure3_cell(Architecture::SwinV2, 1_400_000_000, 128);
        assert!(swin.completed && mae.completed);
        assert!(swin.final_loss < mae.final_loss);
    }

    #[test]
    fn render_marks_empty_cells() {
        let grid = Figure3Grid {
            arch: Architecture::SwinV2,
            rows: vec![vec![
                Figure3Cell {
                    arch: Architecture::SwinV2,
                    params: 1_400_000_000,
                    gpus: 8,
                    final_loss: 1.0,
                    energy_kwh: 1.0,
                    walltime_s: 7300.0,
                    loss_energy: 1.0,
                    completed: false,
                };
                GPU_COUNTS.len()
            ]],
        };
        assert!(grid.render().contains('—'));
        assert!(grid.to_csv().contains("false"));
    }
}
