//! Shared workload generators and experiment drivers for the benchmark
//! harness. Each table/figure binary (`table1`, `table2`, `figure1`,
//! `figure3`, `ablation`) and the criterion benches build on these.

pub mod figure3;
pub mod workload;

pub use figure3::{run_figure3_cell, Figure3Cell, Figure3Grid};
pub use workload::{table1_run_state, table1_series};
