//! Workload generation for the storage experiments (Table 1 / E1, E6).
//!
//! The paper's 39.82 MB `Original_file.json` is a real training run's
//! provenance with all time series inline. This module synthesizes a
//! run of the same character: a dozen metrics across training,
//! validation and telemetry contexts, hundreds of thousands of samples,
//! values following noisy-but-smooth training curves (which is what
//! makes Gorilla-style compression representative).

use metric_store::series::{MetricPoint, MetricSeries};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yprov4ml::collector::RunState;
use yprov4ml::model::{Context, Direction, LogRecord, ParamValue};

/// Metric names modelled after what yProv4ML logs per run.
pub const TABLE1_METRICS: &[(&str, &str)] = &[
    ("loss", "training"),
    ("grad_norm", "training"),
    ("learning_rate", "training"),
    ("samples_per_s", "training"),
    ("loss", "validation"),
    ("accuracy", "validation"),
    ("gpu_power_w", "telemetry"),
    ("gpu_util", "telemetry"),
    ("gpu_mem_bytes", "telemetry"),
    ("cpu_util", "telemetry"),
    ("energy_kwh", "telemetry"),
    ("io_read_bytes", "telemetry"),
];

/// One synthetic metric series of `steps` samples.
pub fn table1_series(name: &str, context: &str, steps: usize, seed: u64) -> MetricSeries {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = MetricSeries::new(name, context);
    let base_time: i64 = 1_700_000_000_000_000;
    let mut energy = 0.0f64;
    for i in 0..steps {
        let t = i as f64;
        let value = match name {
            "loss" => 2.5 / (1.0 + t * 0.002) + rng.gen_range(-0.02..0.02),
            "grad_norm" => 1.0 / (1.0 + t * 0.001) + rng.gen_range(0.0..0.05),
            "learning_rate" => 1e-3 * 0.5f64.powf(t / 20_000.0),
            "samples_per_s" => 4_000.0 + rng.gen_range(-100.0..100.0),
            "accuracy" => 1.0 - 0.9 / (1.0 + t * 0.001),
            "gpu_power_w" => 260.0 + rng.gen_range(-15.0..15.0),
            "gpu_util" => 0.92 + rng.gen_range(-0.05..0.05),
            "gpu_mem_bytes" => 48.0e9 + rng.gen_range(-1e8..1e8),
            "cpu_util" => 0.30 + rng.gen_range(-0.1..0.1),
            "energy_kwh" => {
                energy += 260.0 * 0.5 / 3.6e6;
                energy
            }
            "io_read_bytes" => (i as f64) * 393_216.0 * 256.0,
            _ => rng.gen_range(0.0..1.0),
        };
        series.push(MetricPoint {
            step: i as u64,
            epoch: (i / 3_125) as u32,
            time_us: base_time + (i as i64) * 500_000,
            value,
        });
    }
    series
}

/// A full synthetic run state with `steps` samples per metric
/// (12 metrics → `12 × steps` samples total) plus typical parameters.
pub fn table1_run_state(steps: usize) -> RunState {
    let mut state = RunState::default();
    for (name, value) in [
        ("architecture", ParamValue::Text("SwinT-V2".into())),
        ("params", ParamValue::Int(600_000_000)),
        ("gpus", ParamValue::Int(64)),
        ("per_gpu_batch", ParamValue::Int(32)),
        ("dataset", ParamValue::Text("MODIS-1km-L1B".into())),
        ("learning_rate", ParamValue::Float(1e-3)),
    ] {
        state.apply(LogRecord::Param {
            name: name.into(),
            value,
            direction: Direction::Input,
        });
    }
    for (idx, (name, ctx)) in TABLE1_METRICS.iter().enumerate() {
        let series = table1_series(name, ctx, steps, 42 + idx as u64);
        for p in &series.points {
            state.apply(LogRecord::Metric {
                name: name.to_string(),
                context: Context::from_name(ctx),
                step: p.step,
                epoch: p.epoch,
                time_us: p.time_us,
                value: p.value,
            });
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_deterministic() {
        let a = table1_series("loss", "training", 1000, 7);
        let b = table1_series("loss", "training", 1000, 7);
        assert_eq!(a, b);
        let c = table1_series("loss", "training", 1000, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn run_state_has_expected_volume() {
        let state = table1_run_state(500);
        assert_eq!(state.metric_samples, 500 * TABLE1_METRICS.len());
        assert_eq!(state.metrics.len(), TABLE1_METRICS.len());
        assert_eq!(state.params.len(), 6);
        assert_eq!(state.context_names().len(), 3);
    }

    #[test]
    fn loss_curves_decrease() {
        let s = table1_series("loss", "training", 10_000, 1);
        let early: f64 = s.points[..100].iter().map(|p| p.value).sum::<f64>() / 100.0;
        let late: f64 = s.points[9_900..].iter().map(|p| p.value).sum::<f64>() / 100.0;
        assert!(late < early / 2.0);
    }
}
