//! Ablation studies over the design choices DESIGN.md calls out (E8):
//!
//! 1. codec pipeline — which stage earns its keep on metric data;
//! 2. Zarr chunk size — compression vs. granularity;
//! 3. DDP bucket size — latency overhead vs. overlap opportunity;
//! 4. power sampling period — energy-integral accuracy.
//!
//! ```text
//! cargo run -p bench --bin ablation --release
//! ```

use bench::workload::table1_series;
use energy_monitor::energy::EnergyAccumulator;
use metric_store::codec::{self, CodecId};
use metric_store::store::MetricStore;
use metric_store::zarr::{FloatEncoding, ZarrOptions, ZarrStore};
use train_sim::comm::{step_comm_cost, DdpCommConfig};
use train_sim::MachineConfig;

fn main() {
    codec_ablation();
    chunk_size_ablation();
    parallel_scaling_ablation();
    bucket_size_ablation();
    sampling_period_ablation();
}

/// Does the rayon-parallel chunk pipeline actually pay? Write a long
/// series through thread pools of growing size.
fn parallel_scaling_ablation() {
    println!("=== ablation 2b: zarr write threads (1M-sample series, 8k chunks) ===");
    let series = table1_series("loss", "training", 1_000_000, 7);
    println!("{:<10} {:>12} {:>9}", "threads", "write ms", "speedup");
    let mut base_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        let dir =
            std::env::temp_dir().join(format!("yablate_par_{threads}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ZarrStore::create(&dir, ZarrOptions::default()).expect("create");
        let t0 = std::time::Instant::now();
        pool.install(|| store.write_series(&series).expect("write"));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            base_ms = ms;
        }
        println!("{threads:<10} {ms:>12.1} {:>8.2}x", base_ms / ms);
        std::fs::remove_dir_all(&dir).ok();
    }
    println!();
}

/// Which codec stages matter for float metric columns?
fn codec_ablation() {
    println!("=== ablation 1: codec pipeline on 100k-sample loss series ===");
    let series = table1_series("loss", "training", 100_000, 7);
    let (_, _, _, values) = series.columns();
    let raw = codec::encode_f64_raw(&values);

    let variants: Vec<(&str, Vec<u8>)> = vec![
        ("raw f64", raw.clone()),
        ("xor only", codec::xor::encode(&values)),
        (
            "raw + shuffle + rle",
            codec::encode_pipeline(&raw, &[CodecId::Shuffle8, CodecId::Rle]),
        ),
        ("raw + lz77", codec::encode_pipeline(&raw, &[CodecId::Lz77])),
        (
            "raw + huffman",
            codec::encode_pipeline(&raw, &[CodecId::Huffman]),
        ),
        (
            "raw + lz77 + huffman",
            codec::encode_pipeline(&raw, &[CodecId::Lz77, CodecId::Huffman]),
        ),
        (
            "raw + shuffle + lz77 + huffman",
            codec::encode_pipeline(&raw, &[CodecId::Shuffle8, CodecId::Lz77, CodecId::Huffman]),
        ),
        (
            "xor + lz77 + huffman (default)",
            codec::encode_pipeline(
                &codec::xor::encode(&values),
                &[CodecId::Lz77, CodecId::Huffman],
            ),
        ),
    ];
    println!("{:<34} {:>12} {:>8}", "pipeline", "bytes", "ratio");
    for (name, bytes) in &variants {
        println!(
            "{:<34} {:>12} {:>7.2}x",
            name,
            bytes.len(),
            raw.len() as f64 / bytes.len() as f64
        );
    }
    println!();
}

/// Chunk-size sweep for the Zarr-like store.
fn chunk_size_ablation() {
    println!("=== ablation 2: zarr chunk size (100k-sample series) ===");
    let series = table1_series("loss", "training", 100_000, 7);
    println!(
        "{:<14} {:>12} {:>10}",
        "chunk_points", "store bytes", "files"
    );
    for chunk in [512usize, 2048, 8192, 32_768, 131_072] {
        let dir =
            std::env::temp_dir().join(format!("yablate_chunk_{chunk}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ZarrStore::create(
            &dir,
            ZarrOptions {
                chunk_points: chunk,
                float_encoding: FloatEncoding::Xor,
                ..Default::default()
            },
        )
        .expect("create store");
        store.write_series(&series).expect("write");
        let bytes = store.size_bytes().expect("size");
        let files = walk_count(&dir);
        println!("{chunk:<14} {bytes:>12} {files:>10}");
        std::fs::remove_dir_all(&dir).ok();
    }
    println!();
}

fn walk_count(dir: &std::path::Path) -> usize {
    let mut n = 0;
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let p = entry.expect("entry").path();
        if p.is_dir() {
            n += walk_count(&p);
        } else {
            n += 1;
        }
    }
    n
}

/// DDP bucket-size sweep: exposed communication per step for a 1.4 B
/// model on 128 GPUs.
fn bucket_size_ablation() {
    println!("=== ablation 3: DDP gradient bucket size (1.4B params, 128 GPUs) ===");
    let machine = MachineConfig::frontier_like();
    let grad_bytes = 1_400_000_000u64 * 4;
    println!(
        "{:<14} {:>9} {:>16} {:>18}",
        "bucket", "buckets", "full allreduce s", "exposed (60% ov) s"
    );
    for mib in [1u64, 5, 25, 100, 400] {
        let cfg = DdpCommConfig {
            bucket_bytes: mib * 1024 * 1024,
            overlap_fraction: 0.6,
        };
        let cost = step_comm_cost(grad_bytes, 128, &machine, &cfg);
        println!(
            "{:<14} {:>9} {:>16.4} {:>18.4}",
            format!("{mib} MiB"),
            cost.buckets,
            cost.exposed_full,
            cost.exposed_after_overlap
        );
    }
    println!();
}

/// Energy-integral error vs. sampling period against a 1 ms ground
/// truth, over a bursty power trace.
fn sampling_period_ablation() {
    println!("=== ablation 4: power sampling period vs energy accuracy ===");
    // A bursty trace: compute phases at 270 W, comm dips to 150 W.
    let power_at = |t: f64| -> f64 {
        let phase = t % 1.4;
        if phase < 1.0 {
            270.0
        } else {
            150.0
        }
    };
    let horizon = 600.0; // 10 minutes

    let integrate = |period: f64| -> f64 {
        let mut acc = EnergyAccumulator::new();
        let mut t = 0.0;
        while t <= horizon {
            acc.add_sample(t, power_at(t));
            t += period;
        }
        acc.joules()
    };

    let truth = integrate(0.001);
    println!("{:<14} {:>14} {:>10}", "period", "joules", "error");
    for period in [0.01, 0.1, 0.5, 1.0, 5.0, 30.0] {
        let j = integrate(period);
        println!(
            "{:<14} {:>14.0} {:>9.2}%",
            format!("{period} s"),
            j,
            100.0 * (j - truth).abs() / truth
        );
    }
}
