//! The paper's third scaling axis (§3.3, §5): dataset size.
//!
//! The §5 study notes that "although a smaller model and smaller
//! compute are beneficial when the dataset is contained, when scaling
//! up the samples it becomes unreasonable to stick with less compute
//! devices". This harness sweeps dataset size × GPU count at a fixed
//! model and reports where the compute crossover happens, plus the
//! loss-vs-data curves the §3.3 forecasting use case builds on.
//!
//! ```text
//! cargo run -p bench --bin datascale --release
//! ```

use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{NullObserver, Phase, SimConfig, TrainingSimulation, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};

fn run(samples: u64, gpus: u32) -> train_sim::RunResult {
    let cfg = SimConfig {
        model: ModelConfig::sized(Architecture::SwinV2, 600_000_000),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::modis().with_samples(samples),
        gpus,
        per_gpu_batch: 32,
        epochs: 10,
        comm: Default::default(),
        cutoff: WalltimeCutoff::paper_two_hours(),
        exercise_collective: false,
        phase: Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    };
    TrainingSimulation::new(cfg)
        .expect("valid config")
        .run(&mut NullObserver)
}

fn main() {
    let sample_grid = [50_000u64, 200_000, 800_000, 3_200_000];
    let gpu_grid = [8u32, 32, 128];

    println!("Data scaling at fixed model (SwinT-V2 600M), 10 epochs, 2 h walltime\n");
    println!("loss × energy (kWh); '—' = over walltime");
    println!(
        "{:>10} | {:>12} {:>12} {:>12}",
        "samples", "8 GPUs", "32 GPUs", "128 GPUs"
    );
    println!("{}", "-".repeat(54));

    let mut best_gpus_per_row = Vec::new();
    for &samples in &sample_grid {
        let mut cells = Vec::new();
        let mut best: Option<(u32, f64)> = None;
        for &gpus in &gpu_grid {
            let r = run(samples, gpus);
            if r.completed {
                cells.push(format!("{:>12.3}", r.loss_energy_product));
                if best.is_none_or(|(_, v)| r.loss_energy_product < v) {
                    best = Some((gpus, r.loss_energy_product));
                }
            } else {
                cells.push(format!("{:>12}", "—"));
            }
        }
        println!("{samples:>10} | {}", cells.join(" "));
        best_gpus_per_row.push(best.map(|(g, _)| g));
    }

    println!("\nbest GPU count per dataset size: {best_gpus_per_row:?}");
    println!("(the crossover: small datasets favour few GPUs; large datasets");
    println!(" leave few-GPU configurations unable to finish at all)");

    // §3.3 loss-vs-data curve: the numbers a forecasting model trains on.
    println!("\nfinal loss vs dataset size (completed runs, 128 GPUs):");
    for &samples in &sample_grid {
        let r = run(samples, 128);
        if r.completed {
            println!("  {samples:>9} samples -> loss {:.4}", r.final_loss);
        }
    }
}
