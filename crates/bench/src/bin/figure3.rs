//! Regenerates **Figure 3**: the energy/performance trade-off grids of
//! the §5 scaling study — MAE on top, SwinT-V2 below, loss × total
//! energy per (model size, GPU count) cell, empty cells for runs that
//! exceeded the 2-hour walltime (E5).
//!
//! ```text
//! cargo run -p bench --bin figure3 --release [-- <csv-output-path>]
//! ```

use bench::figure3::run_grid;
use train_sim::model::Architecture;

fn main() {
    println!("Figure 3: energy and performance trade-off (loss × total energy)");
    println!("2 architectures × 4 sizes × 5 GPU counts, DDP, MODIS workload, 2 h walltime\n");

    let mut csv =
        String::from("arch,params,gpus,completed,loss,energy_kwh,walltime_s,loss_energy\n");
    for arch in [Architecture::MaeVit, Architecture::SwinV2] {
        let grid = run_grid(arch);
        println!("{}", grid.render());
        csv.push_str(&grid.to_csv());

        // Narrate the qualitative findings the paper reports.
        let completed: Vec<_> = grid.rows.iter().flatten().filter(|c| c.completed).collect();
        let empty = grid.rows.iter().flatten().filter(|c| !c.completed).count();
        if let Some(best) = completed
            .iter()
            .min_by(|a, b| a.loss_energy.total_cmp(&b.loss_energy))
        {
            println!(
                "  best trade-off: {} params on {} GPUs ({:.3} loss·kWh); {} empty cells\n",
                best.params, best.gpus, best.loss_energy, empty
            );
        }
    }

    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &csv).expect("write csv");
        println!("raw cells written to {path}");
    }

    println!("paper-shape checks:");
    let mae8 = bench::run_figure3_cell(Architecture::MaeVit, 1_400_000_000, 8);
    let swin128 = bench::run_figure3_cell(Architecture::SwinV2, 1_400_000_000, 128);
    let mae128 = bench::run_figure3_cell(Architecture::MaeVit, 1_400_000_000, 128);
    println!(
        "  - large model, few GPUs over walltime: 1.4B MAE @ 8 GPUs completed = {}",
        mae8.completed
    );
    println!(
        "  - SwinT-V2 better at scale: loss 1.4B@128 swin {:.4} vs mae {:.4}",
        swin128.final_loss, mae128.final_loss
    );
}
