//! Figure 3, the way the paper actually produced it: **from collected
//! provenance**, not from in-memory results.
//!
//! Every cell of the scaling grid runs under yProv4ML (metrics spilled
//! to the Zarr-like store), the in-memory results are thrown away, and
//! the trade-off grid is rebuilt purely from the `prov.json` files on
//! disk — then cross-checked against a direct simulation of the same
//! grid. If the two grids ever diverge, the provenance pipeline lost
//! information.
//!
//! A reduced dataset keeps the full 40-cell grid with dense logging
//! under a minute; pass a sample count to change it.
//!
//! ```text
//! cargo run -p bench --bin figure3_prov --release [-- <samples>]
//! ```

use bench::figure3::{cell_config, GPU_COUNTS};
use integration::simulate_with_provenance;
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{NullObserver, TrainingSimulation};
use yprov4ml::compare::RunSummary;
use yprov4ml::run::RunOptions;
use yprov4ml::spill::SpillPolicy;
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);

    let base = std::env::temp_dir().join("yprov4ml_figure3_prov");
    std::fs::remove_dir_all(&base).ok();
    let experiment = Experiment::new("figure3", &base)?;

    println!("running the scaling grid under provenance collection ({samples} samples/cell)...\n");

    // Phase 1: run every cell, keeping nothing but provenance.
    let mut run_names = Vec::new();
    for arch in [Architecture::MaeVit, Architecture::SwinV2] {
        for model in ModelConfig::paper_ladder(arch) {
            for &gpus in GPU_COUNTS.iter() {
                let mut cfg = cell_config(arch, model.params, gpus);
                cfg.dataset = cfg.dataset.with_samples(samples);
                let name = format!(
                    "{}-{}-{gpus}g",
                    arch.name().to_ascii_lowercase().replace('/', "_"),
                    model.size_tag().to_ascii_lowercase().replace('.', "_")
                );
                let run = experiment.start_run_with(
                    &name,
                    RunOptions {
                        spill: SpillPolicy::Zarr(Default::default()),
                        ..Default::default()
                    },
                )?;
                let _result =
                    simulate_with_provenance(cfg, &run, 100).map_err(std::io::Error::other)?;
                run.finish()?;
                run_names.push((arch, model.params, gpus, name));
            }
        }
    }

    // Phase 2: rebuild the grid from disk alone.
    println!("grids rebuilt from the prov.json files:\n");
    let mut mismatches = 0usize;
    for arch in [Architecture::MaeVit, Architecture::SwinV2] {
        println!("{arch} — loss × total energy (kWh), from provenance");
        print!("{:>8} |", "params");
        for g in GPU_COUNTS {
            print!(" {g:>9} GPUs");
        }
        println!();
        for model in ModelConfig::paper_ladder(arch) {
            print!("{:>8} |", model.size_tag());
            for &gpus in GPU_COUNTS.iter() {
                let (_, _, _, name) = run_names
                    .iter()
                    .find(|(a, p, g, _)| *a == arch && *p == model.params && *g == gpus)
                    .expect("every cell ran");
                let doc = experiment.load_run_document(name)?;
                let summary = RunSummary::from_document(&doc).expect("yprov4ml run");
                let completed = summary.params["completed"] == "true";
                let from_prov: f64 = summary.params["loss_energy_product"].parse()?;

                if completed {
                    print!(" {from_prov:>13.3}");
                } else {
                    print!(" {:>13}", "—");
                }

                // Cross-check against a direct simulation of the cell.
                let mut cfg = cell_config(arch, model.params, gpus);
                cfg.dataset = cfg.dataset.with_samples(samples);
                let direct = TrainingSimulation::new(cfg)
                    .expect("valid cell")
                    .run(&mut NullObserver);
                if (direct.loss_energy_product - from_prov).abs() > 1e-9
                    || direct.completed != completed
                {
                    mismatches += 1;
                }
            }
            println!();
        }
        println!();
    }

    if mismatches > 0 {
        eprintln!("{mismatches} cells diverged between provenance and direct simulation");
        std::process::exit(1);
    }
    println!("all 40 cells match the direct simulation exactly — the provenance");
    println!("pipeline is lossless for the quantities Figure 3 plots.");
    println!(
        "\nprovenance for every cell under {}",
        experiment.dir().display()
    );

    // Bonus: the combined experiment document (paper future work).
    let combined = experiment.write_combined_document()?;
    println!("combined experiment provenance: {}", combined.display());
    Ok(())
}
