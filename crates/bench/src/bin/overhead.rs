//! The E7 "minimal overhead" table, as a plain binary (the criterion
//! version is `cargo bench -p bench --bench bench_overhead`).
//!
//! Measures the logging hot path with `std::time::Instant` and prints
//! ns/record for every collection mode, plus the fraction of a
//! realistic training step each represents.
//!
//! ```text
//! cargo run -p bench --bin overhead --release
//! ```

use std::sync::Arc;
use std::time::Instant;
use yprov4ml::collector::Collector;
use yprov4ml::journal::{JournalConfig, JournalHeader, JournalWriter, SyncPolicy};
use yprov4ml::model::{Context, LogRecord};

const N: u64 = 200_000;

fn record(step: u64) -> LogRecord {
    LogRecord::Metric {
        name: "loss".into(),
        context: Context::Training,
        step,
        epoch: 0,
        time_us: step as i64,
        value: 0.5,
    }
}

fn time_per_record(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64 / N as f64
}

fn main() {
    println!("E7: logging hot-path overhead ({N} records per mode)\n");
    println!("{:<34} {:>12}", "mode", "ns/record");

    let buffered = Collector::buffered().unwrap();
    let ns = time_per_record(|| {
        for i in 0..N {
            buffered.log(record(i)).unwrap();
        }
        buffered.flush().unwrap();
    });
    buffered.close().unwrap();
    println!("{:<34} {:>12.0}", "buffered (default)", ns);
    let buffered_ns = ns;

    let sync = Collector::synchronous();
    let ns = time_per_record(|| {
        for i in 0..N {
            sync.log(record(i)).unwrap();
        }
    });
    sync.close().unwrap();
    println!("{:<34} {:>12.0}", "synchronous", ns);

    // 8 concurrent producers into one buffered collector.
    let collector = Collector::buffered().unwrap();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let collector = Arc::clone(&collector);
            scope.spawn(move || {
                for i in 0..N / 8 {
                    collector.log(record(i)).unwrap();
                }
            });
        }
    });
    collector.flush().unwrap();
    let ns = t0.elapsed().as_nanos() as f64 / N as f64;
    collector.close().unwrap();
    println!("{:<34} {:>12.0}", "buffered, 8 producers (per rec)", ns);

    // Journaled (write-ahead log + buffered): the durability price at
    // each sync policy. `Always` fsyncs per record, so it runs a
    // smaller sample to keep the table quick.
    for (label, sync, n) in [
        ("journaled (no fsync) + buffered", SyncPolicy::OnFlush, N),
        (
            "journaled (fsync/100) + buffered",
            SyncPolicy::EveryN(100),
            N,
        ),
        (
            "journaled (fsync always) + buffered",
            SyncPolicy::Always,
            N / 100,
        ),
    ] {
        let dir =
            std::env::temp_dir().join(format!("yoverhead_{}_{}", label.len(), std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let writer = JournalWriter::create_with(
            &dir,
            &JournalHeader::new("bench", "r", "u", 0),
            JournalConfig {
                sync,
                ..Default::default()
            },
        )
        .unwrap();
        let journaled = Collector::buffered().unwrap();
        let t0 = Instant::now();
        for i in 0..n {
            writer.append(&record(i)).unwrap();
            journaled.log(record(i)).unwrap();
        }
        let ns = t0.elapsed().as_nanos() as f64 / n as f64;
        journaled.close().unwrap();
        writer.close().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        println!("{label:<34} {ns:>12.0}");
    }

    // Context: what fraction of a real step does logging cost?
    // The fastest Figure-3 step (100M MAE, io-bound) is ~20 ms; a run
    // logs ~4 metrics per step.
    let per_step = 4.0 * buffered_ns;
    println!(
        "\nat 4 metrics/step, buffered logging costs {:.1} µs per ~20 ms training step \
         ({:.4} % overhead)",
        per_step / 1_000.0,
        100.0 * per_step / 20e6
    );
}
