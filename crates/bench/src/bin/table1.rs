//! Regenerates **Table 1**: provenance file size in normal and
//! compressed formats, for the same run stored three ways (E1), plus
//! the §4 ">90 % gains" claim check (E6).
//!
//! ```text
//! cargo run -p bench --bin table1 --release [-- <steps-per-metric>]
//! ```
//!
//! The default of 38,000 steps per metric (×12 metrics = 456 k samples)
//! produces an inline PROV-JSON of roughly the paper's 39.82 MB.

use bench::workload::table1_run_state;
use metric_store::codec::deflate_like;
use metric_store::store::path_size_bytes;
use yprov4ml::prov_emit::{build_document, RunIdentity};
use yprov4ml::spill::{spill_metrics, SpillPolicy};

fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1_000_000.0
}

/// Gzip-equivalent compressed size of a file or directory (every file
/// run through the LZ77+Huffman pipeline, sizes summed).
fn compressed_size(path: &std::path::Path) -> u64 {
    if path.is_file() {
        return deflate_like(&std::fs::read(path).expect("read file")).len() as u64;
    }
    let mut total = 0;
    for entry in std::fs::read_dir(path).expect("read dir") {
        total += compressed_size(&entry.expect("dir entry").path());
    }
    total
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(38_000);

    let out_dir = std::env::temp_dir().join("yprov4ml_table1");
    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    eprintln!("generating run state ({steps} steps × 12 metrics)...");
    let state = table1_run_state(steps);
    let identity = RunIdentity {
        experiment: "table1".into(),
        run: "measured-run".into(),
        user: "bench".into(),
        started_us: 0,
        ended_us: (steps as i64) * 500_000,
    };
    let series: Vec<&metric_store::series::MetricSeries> = state.metrics.values().collect();

    // --- Row 1: Original_file.json (everything inline) -------------------
    let inline_dir = out_dir.join("inline");
    std::fs::create_dir_all(&inline_dir).expect("mkdir");
    let spill = spill_metrics(&inline_dir, &SpillPolicy::Inline, &series).expect("spill");
    let doc = build_document(&identity, &state, &spill, true);
    let json_path = inline_dir.join("Original_file.json");
    std::fs::write(&json_path, doc.to_json_string_pretty().expect("serialize"))
        .expect("write json");
    let inline_normal = path_size_bytes(&json_path).expect("stat");
    eprintln!("compressing inline json ({:.1} MB)...", mb(inline_normal));
    let inline_compressed = compressed_size(&json_path);

    // --- Row 2: Converted_to.zarr ---------------------------------------
    let zarr_dir = out_dir.join("zarr");
    std::fs::create_dir_all(&zarr_dir).expect("mkdir");
    let spill = spill_metrics(&zarr_dir, &SpillPolicy::Zarr(Default::default()), &series)
        .expect("spill zarr");
    let doc = build_document(&identity, &state, &spill, false);
    std::fs::write(
        zarr_dir.join("prov.json"),
        doc.to_json_string_pretty().expect("serialize"),
    )
    .expect("write json");
    let zarr_normal = path_size_bytes(&zarr_dir).expect("stat");
    let zarr_compressed = compressed_size(&zarr_dir);

    // --- Row 3: Converted_to.nc ------------------------------------------
    let nc_dir = out_dir.join("nc");
    std::fs::create_dir_all(&nc_dir).expect("mkdir");
    let spill = spill_metrics(&nc_dir, &SpillPolicy::NetCdf(Default::default()), &series)
        .expect("spill nc");
    let doc = build_document(&identity, &state, &spill, false);
    std::fs::write(
        nc_dir.join("prov.json"),
        doc.to_json_string_pretty().expect("serialize"),
    )
    .expect("write json");
    let nc_normal = path_size_bytes(&nc_dir).expect("stat");
    let nc_compressed = compressed_size(&nc_dir);

    // --- The table ---------------------------------------------------------
    println!("\nTable 1: Provenance file size comparison (measurements include the");
    println!("PROV-JSON and the additional metric files)\n");
    println!(
        "| {:<22} | {:>11} | {:>15} |",
        "File", "Normal Size", "Compressed Size"
    );
    println!("|{:-<24}|{:->13}|{:->17}|", "", "", "");
    for (name, normal, compressed) in [
        ("Original_file.json", inline_normal, inline_compressed),
        ("Converted_to.zarr", zarr_normal, zarr_compressed),
        ("Converted_to.nc", nc_normal, nc_compressed),
    ] {
        println!(
            "| {:<22} | {:>8.2} MB | {:>12.2} MB |",
            name,
            mb(normal),
            mb(compressed)
        );
    }

    // E6: the §4 claim — "gains of more than 90% on average".
    let zarr_gain = 100.0 * (1.0 - zarr_normal as f64 / inline_normal as f64);
    let nc_gain = 100.0 * (1.0 - nc_normal as f64 / inline_normal as f64);
    println!("\nsize reduction vs inline JSON: zarr {zarr_gain:.1} %, nc {nc_gain:.1} %");
    println!("paper reference: 39.82 -> 2.74 MB (93.1 %) and 39.82 -> 2.35 MB (94.1 %)");
    println!("\n(outputs kept under {})", out_dir.display());
}
