//! Regenerates **Table 2**: the W3C PROV vs RO-Crate feature
//! comparison (E2).
//!
//! Where the paper's table is descriptive, this binary *probes* the two
//! implementations in this repository: each row is backed by an actual
//! capability check (can prov-model emit PROV-N? does rocrate package
//! files? ...), so the table can never drift from the code.
//!
//! ```text
//! cargo run -p bench --bin table2
//! ```

use prov_model::{ProvDocument, QName};
use rocrate::{EntitySpec, RoCrate};

struct Row {
    feature: &'static str,
    prov: String,
    rocrate: String,
}

fn main() {
    let dir = std::env::temp_dir().join("yprov4ml_table2_probe");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");

    // --- Probe the W3C PROV implementation --------------------------------
    let mut doc = ProvDocument::new();
    doc.namespaces_mut().register("ex", "http://ex/").unwrap();
    doc.entity(QName::new("ex", "model"));
    doc.activity(QName::new("ex", "train"));
    doc.was_generated_by(QName::new("ex", "model"), QName::new("ex", "train"));

    let prov_json_ok = ProvDocument::from_json_str(&doc.to_json_string().unwrap())
        .map(|d| d.relation_count() == 1)
        .unwrap_or(false);
    let provn = prov_model::provn::to_provn(&doc);
    let provn_ok = provn.contains("wasGeneratedBy(ex:model, ex:train)");

    // --- Probe the RO-Crate implementation --------------------------------
    std::fs::write(dir.join("model.ckpt"), b"weights").unwrap();
    let mut crate_ = RoCrate::new("probe", "capability probe");
    crate_.add_file(EntitySpec::file("model.ckpt"));
    let packaging_ok = crate_.write(&dir).is_ok() && RoCrate::read(&dir).is_ok();
    let jsonld_ok = crate_.to_metadata_json().get("@context").is_some()
        && crate_.to_metadata_json().get("@graph").is_some();
    // RO-Crate can reference PROV-O terms (optional PROV use).
    let prov_in_crate = {
        let mut c = RoCrate::new("p", "d");
        c.add_entity(
            EntitySpec::contextual("#activity", "CreateAction")
                .with_reference("conformsTo", "https://www.w3.org/TR/prov-o/"),
        );
        c.to_metadata_json().to_string().contains("prov-o")
    };

    let yes_no = |b: bool| {
        if b {
            "Yes".to_string()
        } else {
            "No".to_string()
        }
    };

    let rows = vec![
        Row {
            feature: "Type",
            prov: "Provenance data model".into(),
            rocrate: "Research object packaging format".into(),
        },
        Row {
            feature: "Standardized By",
            prov: "W3C".into(),
            rocrate: "Community-driven".into(),
        },
        Row {
            feature: "Serialization",
            prov: format!(
                "PROV-N{}, PROV-JSON{} (PROV-O via RDF)",
                if provn_ok { " [verified]" } else { " [FAILED]" },
                if prov_json_ok {
                    " [verified]"
                } else {
                    " [FAILED]"
                },
            ),
            rocrate: format!(
                "JSON-LD{}",
                if jsonld_ok {
                    " [verified]"
                } else {
                    " [FAILED]"
                }
            ),
        },
        Row {
            feature: "Focus",
            prov: "Provenance representation".into(),
            rocrate: "Sharing and describing research artifacts".into(),
        },
        Row {
            feature: "Packaging",
            prov: "No".into(),
            rocrate: format!("{} [verified]", yes_no(packaging_ok)),
        },
        Row {
            feature: "Domain-Agnostic",
            prov: "Yes".into(),
            rocrate: "Can be".into(),
        },
        Row {
            feature: "Use of W3C PROV",
            prov: "Native".into(),
            rocrate: format!(
                "Optional (via PROV-O){}",
                if prov_in_crate {
                    " [verified]"
                } else {
                    " [FAILED]"
                }
            ),
        },
        Row {
            feature: "Use in yProv4ML",
            prov: "Tracking of provenance".into(),
            rocrate: "Packaging of artifacts".into(),
        },
    ];

    println!("Table 2: Comparison between the W3C PROV standard and RO-Crate,");
    println!("probed against this repository's implementations\n");
    println!(
        "| {:<16} | {:<44} | {:<44} |",
        "Feature", "W3C PROV", "RO-Crate"
    );
    println!("|{:-<18}|{:-<46}|{:-<46}|", "", "", "");
    for r in &rows {
        println!("| {:<16} | {:<44} | {:<44} |", r.feature, r.prov, r.rocrate);
    }

    let failed = rows
        .iter()
        .any(|r| r.prov.contains("FAILED") || r.rocrate.contains("FAILED"));
    std::fs::remove_dir_all(&dir).ok();
    if failed {
        eprintln!("\nsome capability probes FAILED");
        std::process::exit(1);
    }
    println!("\nall capability probes passed");
}
