//! Regenerates **Figure 1**: an example provenance file with multiple
//! contexts and artifacts as both inputs (`used`) and outputs
//! (`wasGeneratedBy`) (E3).
//!
//! Produces the PROV-JSON, its PROV-N rendering, and the Graphviz DOT
//! of the graph — the picture in the paper is this DOT, rendered.
//!
//! ```text
//! cargo run -p bench --bin figure1 [-- <output-dir>]
//! ```

use prov_graph::{to_dot, DotOptions};
use yprov4ml::model::{Context, Direction};
use yprov4ml::Experiment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("yprov4ml_figure1"));
    std::fs::remove_dir_all(&out_dir).ok();

    // A run shaped like the paper's Figure 1: several contexts, input
    // dataset + config, output checkpoints + final model.
    let experiment = Experiment::new("figure1", &out_dir)?;
    let run = experiment.start_run("example-run")?;

    run.log_param("learning_rate", 1e-4);
    run.log_param("model", "MAE-ViT-600M");
    run.log_artifact_bytes("modis_patches.bin", &vec![1u8; 1024], Direction::Input)?;
    run.log_artifact_bytes("config.yaml", b"epochs: 2\n", Direction::Input)?;

    let preprocessing = Context::Custom("preprocessing".into());
    run.start_context(preprocessing.clone());
    for step in 0..20u64 {
        run.log_metric(
            "patches_normalized",
            preprocessing.clone(),
            step,
            0,
            step as f64 * 40_000.0,
        );
    }
    run.end_context(preprocessing.clone());
    run.log_artifact_bytes_in(
        "normalized.zarr",
        b"normalized patches",
        Direction::Output,
        Some(preprocessing),
    )?;

    run.start_context(Context::Training);
    for step in 0..100u64 {
        let epoch = (step / 50) as u32;
        run.log_metric(
            "loss",
            Context::Training,
            step,
            epoch,
            2.0 / (1.0 + step as f64 * 0.1),
        );
        run.log_metric("gpu_power_w", Context::Training, step, epoch, 265.0);
    }
    run.log_artifact_bytes_in(
        "checkpoint_epoch0.ckpt",
        b"intermediate weights",
        Direction::Output,
        Some(Context::Training),
    )?;
    run.end_context(Context::Training);

    run.start_context(Context::Validation);
    for epoch in 0..2u32 {
        run.log_metric(
            "val_loss",
            Context::Validation,
            epoch as u64,
            epoch,
            0.4 - epoch as f64 * 0.1,
        );
    }
    run.end_context(Context::Validation);

    run.log_model("final_model.ckpt", b"final weights")?;
    run.log_output_param("best_val_loss", 0.3);
    let report = run.finish()?;

    // Render the graph.
    let doc = experiment.load_run_document("example-run")?;
    let dot = to_dot(
        &doc,
        &DotOptions {
            show_attributes: false,
            ..Default::default()
        },
    );
    let dot_path = out_dir.join("figure1.dot");
    std::fs::write(&dot_path, &dot)?;

    let stats = doc.stats();
    println!("Figure 1 example provenance generated:");
    println!("  PROV-JSON: {}", report.prov_json_path.display());
    println!("  PROV-N:    {}", report.provn_path.display());
    println!(
        "  DOT:       {}   (render: dot -Tpng -o figure1.png)",
        dot_path.display()
    );
    println!(
        "\ndocument: {} entities, {} activities, {} agents, {} relations",
        stats.entities, stats.activities, stats.agents, stats.relations
    );
    println!("relation mix (the paper highlights used / wasGeneratedBy):");
    for (kind, count) in &stats.per_relation {
        println!("  {:<20} {}", kind.json_key(), count);
    }

    let issues = prov_model::validate(&doc);
    println!("\nvalidation findings: {}", issues.len());
    Ok(())
}
