//! The workload: a MODIS-like remote-sensing patch dataset.
//!
//! The paper trains on 23 years of MODIS 1 km L1B radiance from Aqua and
//! Terra: ~800,000 patches of 128×128 pixels with 6 channels (one
//! atmospheric variable per channel). Pixels never reach the provenance
//! layer — only volume and shape matter to walltime/energy — so the
//! dataset is described, not materialized.

use serde::{Deserialize, Serialize};

/// Static description of a training dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name for provenance records.
    pub name: String,
    /// Number of training samples (patches).
    pub samples: u64,
    /// Patch height in pixels.
    pub height: u32,
    /// Patch width in pixels.
    pub width: u32,
    /// Channels per patch.
    pub channels: u32,
    /// Bytes per pixel per channel (fp32 radiances).
    pub bytes_per_value: u32,
}

impl DatasetSpec {
    /// The paper's MODIS workload.
    pub fn modis() -> Self {
        DatasetSpec {
            name: "MODIS-1km-L1B".into(),
            samples: 800_000,
            height: 128,
            width: 128,
            channels: 6,
            bytes_per_value: 4,
        }
    }

    /// A small synthetic dataset for tests and examples.
    pub fn tiny(samples: u64) -> Self {
        DatasetSpec {
            name: format!("synthetic-{samples}"),
            samples,
            height: 32,
            width: 32,
            channels: 3,
            bytes_per_value: 4,
        }
    }

    /// A scaled copy with a different sample count (the paper's data
    /// scaling axis).
    pub fn with_samples(&self, samples: u64) -> Self {
        DatasetSpec {
            samples,
            ..self.clone()
        }
    }

    /// Bytes of one sample.
    pub fn bytes_per_sample(&self) -> u64 {
        self.height as u64 * self.width as u64 * self.channels as u64 * self.bytes_per_value as u64
    }

    /// Total dataset size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.samples * self.bytes_per_sample()
    }

    /// Samples assigned to one of `ranks` data-parallel ranks (the
    /// first `total % ranks` ranks get one extra).
    pub fn shard_size(&self, rank: u32, ranks: u32) -> u64 {
        assert!(ranks > 0 && rank < ranks, "rank {rank} of {ranks}");
        let base = self.samples / ranks as u64;
        let extra = self.samples % ranks as u64;
        base + if (rank as u64) < extra { 1 } else { 0 }
    }

    /// Steps per epoch at a global batch size.
    pub fn steps_per_epoch(&self, global_batch: u32) -> u64 {
        assert!(global_batch > 0, "batch must be positive");
        self.samples.div_ceil(global_batch as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modis_matches_paper_numbers() {
        let d = DatasetSpec::modis();
        assert_eq!(d.samples, 800_000);
        assert_eq!(d.height, 128);
        assert_eq!(d.channels, 6);
        // 128*128*6*4 = 393,216 bytes per patch.
        assert_eq!(d.bytes_per_sample(), 393_216);
        // ~300 GB total.
        let gb = d.total_bytes() as f64 / 1e9;
        assert!(gb > 250.0 && gb < 350.0, "total {gb} GB");
    }

    #[test]
    fn shards_partition_exactly() {
        let d = DatasetSpec::modis();
        for ranks in [1u32, 3, 8, 128] {
            let total: u64 = (0..ranks).map(|r| d.shard_size(r, ranks)).sum();
            assert_eq!(total, d.samples, "ranks={ranks}");
            // Shards differ by at most one sample.
            let sizes: Vec<u64> = (0..ranks).map(|r| d.shard_size(r, ranks)).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn out_of_range_rank_panics() {
        DatasetSpec::modis().shard_size(8, 8);
    }

    #[test]
    fn steps_per_epoch_rounds_up() {
        let d = DatasetSpec::tiny(1001);
        assert_eq!(d.steps_per_epoch(100), 11);
        assert_eq!(d.steps_per_epoch(1001), 1);
        assert_eq!(d.steps_per_epoch(2000), 1);
    }

    #[test]
    fn with_samples_scales() {
        let d = DatasetSpec::modis().with_samples(100);
        assert_eq!(d.samples, 100);
        assert_eq!(d.name, "MODIS-1km-L1B");
    }
}
