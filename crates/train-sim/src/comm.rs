//! Communication cost models for DDP gradient synchronization.
//!
//! The all-reduce at the end of every DDP step is modelled with the
//! standard ring formula, applied hierarchically: a ring inside each
//! node over Infinity Fabric, then a ring across nodes over the
//! interconnect, then an intra-node broadcast. Gradient *bucketing*
//! (PyTorch DDP's 25 MB buckets) lets communication overlap the tail of
//! the backward pass; the overlappable fraction is a model parameter.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the DDP communication model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdpCommConfig {
    /// Gradient bucket size in bytes (PyTorch default 25 MiB).
    pub bucket_bytes: u64,
    /// Fraction of all-reduce time hidden under backward compute.
    pub overlap_fraction: f64,
}

impl Default for DdpCommConfig {
    fn default() -> Self {
        DdpCommConfig {
            bucket_bytes: 25 * 1024 * 1024,
            overlap_fraction: 0.6,
        }
    }
}

/// Ring all-reduce time for `bytes` over `p` participants on a link of
/// `bw` bytes/s with per-step latency `lat`:
/// `2·(p−1)/p · bytes / bw + 2·(p−1)·lat`.
pub fn ring_allreduce_time(bytes: u64, p: u32, bw: f64, lat: f64) -> f64 {
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    let p = p as f64;
    2.0 * (p - 1.0) / p * bytes as f64 / bw + 2.0 * (p - 1.0) * lat
}

/// Hierarchical all-reduce across a multi-node job:
/// 1. reduce-scatter + all-gather ring within each node,
/// 2. ring across nodes on the per-node share,
/// 3. the intra-node stage's all-gather half completes the broadcast.
///
/// For single-node jobs this degenerates to one intra-node ring.
pub fn hierarchical_allreduce_time(bytes: u64, gpus: u32, machine: &MachineConfig) -> f64 {
    if gpus <= 1 || bytes == 0 {
        return 0.0;
    }
    let local = gpus.min(machine.gpus_per_node);
    let nodes = machine.nodes_for(gpus);
    let intra = ring_allreduce_time(
        bytes,
        local,
        machine.intra_node_bw,
        machine.intra_node_latency,
    );
    if nodes <= 1 {
        return intra;
    }
    // Across nodes, each node contributes its reduced share; the wire
    // volume per node is the full gradient (each byte crosses the NIC
    // twice in reduce+broadcast, captured by the ring formula).
    let inter = ring_allreduce_time(
        bytes,
        nodes,
        machine.inter_node_bw,
        machine.inter_node_latency,
    );
    intra + inter
}

/// Result of the per-step communication model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Raw all-reduce time with no overlap, seconds.
    pub exposed_full: f64,
    /// Time actually added to the step after overlap, seconds.
    pub exposed_after_overlap: f64,
    /// Number of gradient buckets synchronized.
    pub buckets: u64,
}

/// Per-step gradient synchronization cost for a model of
/// `gradient_bytes`, including bucketing overhead and overlap.
pub fn step_comm_cost(
    gradient_bytes: u64,
    gpus: u32,
    machine: &MachineConfig,
    cfg: &DdpCommConfig,
) -> CommCost {
    if gpus <= 1 || gradient_bytes == 0 {
        return CommCost {
            exposed_full: 0.0,
            exposed_after_overlap: 0.0,
            buckets: 0,
        };
    }
    let buckets = gradient_bytes.div_ceil(cfg.bucket_bytes.max(1));
    // Each bucket pays the latency term; bandwidth term is volume-based.
    let one_byte_rings = hierarchical_allreduce_time(gradient_bytes, gpus, machine);
    // Latency overhead of splitting into buckets: recompute with the
    // per-bucket latency multiplied out.
    let local = gpus.min(machine.gpus_per_node) as f64;
    let nodes = machine.nodes_for(gpus) as f64;
    let latency_per_bucket = 2.0 * (local - 1.0).max(0.0) * machine.intra_node_latency
        + if nodes > 1.0 {
            2.0 * (nodes - 1.0) * machine.inter_node_latency
        } else {
            0.0
        };
    let exposed_full = one_byte_rings + latency_per_bucket * (buckets.saturating_sub(1)) as f64;
    let exposed_after_overlap = exposed_full * (1.0 - cfg.overlap_fraction.clamp(0.0, 1.0));
    CommCost {
        exposed_full,
        exposed_after_overlap,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_has_no_comm() {
        assert_eq!(ring_allreduce_time(1_000_000, 1, 1e9, 1e-6), 0.0);
        let m = MachineConfig::frontier_like();
        assert_eq!(hierarchical_allreduce_time(1_000_000, 1, &m), 0.0);
        let c = step_comm_cost(1_000_000, 1, &m, &DdpCommConfig::default());
        assert_eq!(c.exposed_after_overlap, 0.0);
        assert_eq!(c.buckets, 0);
    }

    #[test]
    fn ring_formula_matches_closed_form() {
        // 8 ranks, 1 GB, 100 GB/s, zero latency: 2*(7/8)*0.01 s.
        let t = ring_allreduce_time(1_000_000_000, 8, 100.0e9, 0.0);
        assert!((t - 2.0 * 7.0 / 8.0 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn ring_time_grows_sublinearly_with_ranks() {
        // The bandwidth term saturates at 2·bytes/bw as p → ∞.
        let t8 = ring_allreduce_time(1 << 30, 8, 100.0e9, 0.0);
        let t128 = ring_allreduce_time(1 << 30, 128, 100.0e9, 0.0);
        assert!(t128 > t8);
        assert!(t128 < t8 * 1.2, "bandwidth term saturates");
    }

    #[test]
    fn multi_node_costs_more_than_single_node() {
        let m = MachineConfig::frontier_like();
        let bytes = 800_000_000u64; // 200M params fp32
        let t8 = hierarchical_allreduce_time(bytes, 8, &m);
        let t16 = hierarchical_allreduce_time(bytes, 16, &m);
        let t128 = hierarchical_allreduce_time(bytes, 128, &m);
        assert!(
            t16 > t8 * 1.5,
            "crossing the node boundary hurts: {t8} -> {t16}"
        );
        assert!(t128 > t16, "more nodes, more ring steps");
    }

    #[test]
    fn bucketing_counts_and_latency() {
        let m = MachineConfig::frontier_like();
        let cfg = DdpCommConfig::default();
        // 1.4 B params → 5.6 GB grads → 214 buckets of 25 MiB.
        let c = step_comm_cost(5_600_000_000, 128, &m, &cfg);
        assert_eq!(c.buckets, 5_600_000_000u64.div_ceil(25 * 1024 * 1024));
        assert!(c.exposed_full > 0.0);
        assert!(c.exposed_after_overlap < c.exposed_full);
    }

    #[test]
    fn overlap_bounds() {
        let m = MachineConfig::frontier_like();
        let full = step_comm_cost(
            1 << 30,
            64,
            &m,
            &DdpCommConfig {
                overlap_fraction: 0.0,
                ..Default::default()
            },
        );
        let hidden = step_comm_cost(
            1 << 30,
            64,
            &m,
            &DdpCommConfig {
                overlap_fraction: 1.0,
                ..Default::default()
            },
        );
        assert!((full.exposed_after_overlap - full.exposed_full).abs() < 1e-12);
        assert_eq!(hidden.exposed_after_overlap, 0.0);
        // Out-of-range overlap is clamped, not propagated.
        let weird = step_comm_cost(
            1 << 30,
            64,
            &m,
            &DdpCommConfig {
                overlap_fraction: 7.0,
                ..Default::default()
            },
        );
        assert_eq!(weird.exposed_after_overlap, 0.0);
    }
}
