//! The architecture zoo: the two model families of the paper's scaling
//! study, at the four sizes used on Frontier.

use serde::{Deserialize, Serialize};

/// Which architecture family a configuration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Masked Autoencoder with a ViT backbone (He et al., CVPR'22).
    /// Masked pre-training pushes only ~25 % of patch tokens through the
    /// encoder, making each sample cheap but the loss curve steeper in
    /// data (information per sample is lower).
    MaeVit,
    /// Swin Transformer V2 (Liu et al., CVPR'22). Windowed attention
    /// gives better FLOP efficiency and the architecture scales more
    /// gracefully — the paper observes it "performing much better at
    /// scale".
    SwinV2,
}

impl Architecture {
    /// Display name used in reports and provenance records.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::MaeVit => "MAE-ViT",
            Architecture::SwinV2 => "SwinT-V2",
        }
    }

    /// Fraction of input tokens processed by the expensive encoder path
    /// (MAE masks 75 % of patches during pre-training).
    pub fn encoder_token_fraction(&self) -> f64 {
        match self {
            Architecture::MaeVit => 0.25,
            Architecture::SwinV2 => 1.0,
        }
    }

    /// Architecture FLOP efficiency: achieved fraction of device peak
    /// (model FLOPs utilization). Windowed attention maps better onto
    /// the hardware than global attention over unmasked tokens.
    pub fn mfu(&self) -> f64 {
        match self {
            Architecture::MaeVit => 0.33,
            Architecture::SwinV2 => 0.42,
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture family.
    pub arch: Architecture,
    /// Total trainable parameters.
    pub params: u64,
    /// Transformer depth.
    pub layers: u32,
    /// Hidden (embedding) width.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Patch tokens per sample before masking (128×128 image, 16×16
    /// patches → 64 tokens... times channels folding; see
    /// [`crate::dataset::DatasetSpec`]).
    pub tokens_per_sample: u32,
}

impl ModelConfig {
    /// A configuration from family and target parameter count, with
    /// plausible depth/width derived from the size class.
    pub fn sized(arch: Architecture, params: u64) -> Self {
        // Width/depth splits roughly follow the ViT/Swin size ladders.
        let (layers, hidden, heads) = match params {
            p if p <= 150_000_000 => (12, 768, 12),  // ~100 M class
            p if p <= 350_000_000 => (24, 1024, 16), // ~200 M class
            p if p <= 800_000_000 => (32, 1280, 16), // ~600 M class
            _ => (40, 1664, 16),                     // ~1.4 B class
        };
        ModelConfig {
            arch,
            params,
            layers,
            hidden,
            heads,
            tokens_per_sample: 64,
        }
    }

    /// The four sizes of the paper's study for one architecture.
    pub fn paper_ladder(arch: Architecture) -> Vec<ModelConfig> {
        [100_000_000u64, 200_000_000, 600_000_000, 1_400_000_000]
            .into_iter()
            .map(|p| ModelConfig::sized(arch, p))
            .collect()
    }

    /// Human-readable size tag (`100M`, `1.4B`, ...).
    pub fn size_tag(&self) -> String {
        if self.params >= 1_000_000_000 {
            let b = self.params as f64 / 1e9;
            if (b - b.round()).abs() < 1e-9 {
                format!("{}B", b.round() as u64)
            } else {
                format!("{b:.1}B")
            }
        } else {
            format!("{}M", self.params / 1_000_000)
        }
    }

    /// Training FLOPs for one sample (forward + backward).
    ///
    /// The standard `6·N` FLOPs per parameter per token (2 forward,
    /// 4 backward), scaled by the fraction of tokens the encoder
    /// actually processes.
    pub fn flops_per_sample(&self) -> f64 {
        let effective_tokens = self.tokens_per_sample as f64 * self.arch.encoder_token_fraction();
        6.0 * self.params as f64 * effective_tokens
    }

    /// Training FLOPs for one sample during fine-tuning (paper §5: all
    /// layers except the final prediction head are frozen).
    ///
    /// The forward pass still runs the full network on *unmasked*
    /// inputs (fine-tuning uses labeled data, no masking), but the
    /// backward pass only reaches the trainable fraction.
    pub fn flops_per_sample_finetune(&self, frozen_fraction: f64) -> f64 {
        let frozen = frozen_fraction.clamp(0.0, 1.0);
        let tokens = self.tokens_per_sample as f64;
        let forward = 2.0 * self.params as f64 * tokens;
        let backward = 4.0 * self.params as f64 * tokens * (1.0 - frozen);
        forward + backward
    }

    /// Bytes of gradient exchanged per step per replica (fp32 grads).
    pub fn gradient_bytes(&self) -> u64 {
        self.params * 4
    }

    /// Gradient bytes during fine-tuning: only unfrozen parameters sync.
    pub fn gradient_bytes_finetune(&self, frozen_fraction: f64) -> u64 {
        let trainable = 1.0 - frozen_fraction.clamp(0.0, 1.0);
        ((self.params as f64 * trainable) as u64) * 4
    }

    /// Approximate accelerator memory per replica in bytes: parameters,
    /// gradients, Adam moments (all fp32) plus activation headroom.
    pub fn memory_bytes(&self, per_gpu_batch: u32) -> u64 {
        let states = self.params * 4 * 4; // p + g + m + v
        let activations =
            self.tokens_per_sample as u64 * self.hidden as u64 * self.layers as u64 * 4 * 2;
        states + activations * per_gpu_batch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_paper_sizes() {
        let ladder = ModelConfig::paper_ladder(Architecture::MaeVit);
        let sizes: Vec<u64> = ladder.iter().map(|m| m.params).collect();
        assert_eq!(
            sizes,
            vec![100_000_000, 200_000_000, 600_000_000, 1_400_000_000]
        );
        let tags: Vec<String> = ladder.iter().map(|m| m.size_tag()).collect();
        assert_eq!(tags, vec!["100M", "200M", "600M", "1.4B"]);
    }

    #[test]
    fn flops_grow_with_params() {
        let small = ModelConfig::sized(Architecture::SwinV2, 100_000_000);
        let big = ModelConfig::sized(Architecture::SwinV2, 1_400_000_000);
        assert!(big.flops_per_sample() > 10.0 * small.flops_per_sample());
    }

    #[test]
    fn mae_is_cheaper_per_sample_than_swin() {
        let mae = ModelConfig::sized(Architecture::MaeVit, 600_000_000);
        let swin = ModelConfig::sized(Architecture::SwinV2, 600_000_000);
        assert!(mae.flops_per_sample() < swin.flops_per_sample());
        // Exactly the masking ratio.
        let ratio = mae.flops_per_sample() / swin.flops_per_sample();
        assert!((ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn depth_width_ladder_is_monotone() {
        let ladder = ModelConfig::paper_ladder(Architecture::SwinV2);
        for w in ladder.windows(2) {
            assert!(w[1].layers >= w[0].layers);
            assert!(w[1].hidden >= w[0].hidden);
        }
    }

    #[test]
    fn gradient_bytes_are_fp32() {
        let m = ModelConfig::sized(Architecture::MaeVit, 200_000_000);
        assert_eq!(m.gradient_bytes(), 800_000_000);
    }

    #[test]
    fn memory_scales_with_batch() {
        let m = ModelConfig::sized(Architecture::SwinV2, 100_000_000);
        assert!(m.memory_bytes(32) > m.memory_bytes(1));
        // Optimizer states dominate at small batch: ≥ 16 bytes/param.
        assert!(m.memory_bytes(1) >= m.params * 16);
    }

    #[test]
    fn architecture_metadata() {
        assert_eq!(Architecture::MaeVit.name(), "MAE-ViT");
        assert_eq!(Architecture::SwinV2.to_string(), "SwinT-V2");
        assert!(Architecture::SwinV2.mfu() > Architecture::MaeVit.mfu());
        assert!(Architecture::MaeVit.encoder_token_fraction() < 1.0);
    }
}
