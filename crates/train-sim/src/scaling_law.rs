//! Chinchilla-style loss curves.
//!
//! The simulator does not train a network; losses follow the
//! parametric form of Hoffmann et al. (2022), which the paper's §3.3
//! explicitly motivates for scaling-study prediction:
//!
//! ```text
//! L(N, D) = E + A / N^alpha + B / D^beta
//! ```
//!
//! with `N` trainable parameters and `D` samples seen. Per-architecture
//! constants encode the study's qualitative findings: MAE's masked
//! objective extracts less signal per sample (larger `B`, smaller
//! `beta` → steeper data hunger), while SwinV2 converges more gently
//! and keeps improving at scale.

use crate::model::Architecture;
use serde::{Deserialize, Serialize};

/// Parameters of the loss law for one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossLaw {
    /// Irreducible loss floor.
    pub e: f64,
    /// Parameter-scaling amplitude.
    pub a: f64,
    /// Parameter-scaling exponent.
    pub alpha: f64,
    /// Data-scaling amplitude.
    pub b: f64,
    /// Data-scaling exponent.
    pub beta: f64,
}

impl LossLaw {
    /// The constants used for each architecture in this reproduction.
    pub fn for_architecture(arch: Architecture) -> Self {
        match arch {
            Architecture::MaeVit => LossLaw {
                e: 0.22,
                a: 240.0,
                alpha: 0.34,
                b: 180.0,
                beta: 0.28,
            },
            Architecture::SwinV2 => LossLaw {
                e: 0.18,
                a: 320.0,
                alpha: 0.36,
                b: 95.0,
                beta: 0.32,
            },
        }
    }

    /// Expected loss after seeing `samples` with a model of `params`.
    pub fn loss(&self, params: u64, samples: f64) -> f64 {
        let n = (params.max(1)) as f64;
        let d = samples.max(1.0);
        self.e + self.a / n.powf(self.alpha) + self.b / d.powf(self.beta)
    }

    /// Loss including a deterministic per-step ripple, so logged curves
    /// look like real training rather than a smooth analytic line. The
    /// ripple decays as training progresses.
    pub fn noisy_loss(&self, params: u64, samples: f64, step: u64) -> f64 {
        let base = self.loss(params, samples);
        // Cheap deterministic hash → [-1, 1).
        let mut x = step.wrapping_mul(0x9E3779B97F4A7C15) ^ params;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        let unit = (x as f64 / u64::MAX as f64) * 2.0 - 1.0;
        let amplitude = 0.03 * base / (1.0 + samples / 50_000.0);
        (base + unit * amplitude).max(self.e * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_decreases_with_params_and_data() {
        let law = LossLaw::for_architecture(Architecture::SwinV2);
        let l_small = law.loss(100_000_000, 1e5);
        let l_big_model = law.loss(1_400_000_000, 1e5);
        let l_more_data = law.loss(100_000_000, 1e6);
        assert!(l_big_model < l_small);
        assert!(l_more_data < l_small);
    }

    #[test]
    fn loss_approaches_floor() {
        let law = LossLaw::for_architecture(Architecture::MaeVit);
        let l = law.loss(u64::MAX / 2, 1e30);
        assert!((l - law.e).abs() < 1e-3, "loss {l} vs floor {}", law.e);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let law = LossLaw::for_architecture(Architecture::MaeVit);
        assert!(law.loss(0, 0.0).is_finite());
        assert!(law.loss(1, -5.0).is_finite());
    }

    #[test]
    fn mae_needs_more_data_for_same_loss() {
        // At matched params and data, MAE's data term dominates more.
        let mae = LossLaw::for_architecture(Architecture::MaeVit);
        let swin = LossLaw::for_architecture(Architecture::SwinV2);
        let n = 600_000_000u64;
        let d: f64 = 400_000.0;
        let mae_data_term = mae.b / d.powf(mae.beta);
        let swin_data_term = swin.b / d.powf(swin.beta);
        assert!(mae_data_term > swin_data_term);
        // And the gap *widens* as data shrinks (steeper curve).
        let d_small: f64 = 50_000.0;
        let gap_small = mae.b / d_small.powf(mae.beta) - swin.b / d_small.powf(swin.beta);
        let gap_large = mae_data_term - swin_data_term;
        assert!(gap_small > gap_large);
        let _ = n;
    }

    #[test]
    fn noisy_loss_is_deterministic_and_bounded() {
        let law = LossLaw::for_architecture(Architecture::SwinV2);
        let a = law.noisy_loss(200_000_000, 10_000.0, 42);
        let b = law.noisy_loss(200_000_000, 10_000.0, 42);
        assert_eq!(a, b, "same inputs, same ripple");
        let base = law.loss(200_000_000, 10_000.0);
        assert!((a - base).abs() < 0.05 * base);
        assert!(a > 0.0);
    }

    #[test]
    fn ripple_decays_with_progress() {
        let law = LossLaw::for_architecture(Architecture::SwinV2);
        let spread = |samples: f64| {
            let base = law.loss(1_000_000_000, samples);
            (0..200)
                .map(|s| (law.noisy_loss(1_000_000_000, samples, s) - base).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(spread(1e7) < spread(1e3));
    }
}
