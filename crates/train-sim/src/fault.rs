//! Deterministic fault injection for the simulator.
//!
//! Long Frontier-class jobs fail — GPUs drop off the bus, one slow node
//! stretches every collective, a transient NCCL error forces a retry.
//! The provenance layer exists precisely for those runs (§3.1, §4), so
//! the simulator must be able to *produce* them, reproducibly: a
//! [`FaultPlan`] is either hand-built or derived from a seed, and the
//! same plan always yields the byte-identical event stream.
//!
//! The plan is consulted by [`crate::sim::TrainingSimulation::run`]:
//! stragglers and transient all-reduce errors stretch walltime (and
//! therefore energy), a GPU failure aborts the run at the faulty step
//! with the last epoch-boundary [`crate::sim::Checkpoint`] to resume
//! from. [`crate::sim::run_with_recovery`] drives the restart loop.

use std::fmt;

/// `splitmix64`: the tiny, high-quality PRNG step used wherever the
/// crate needs seeded determinism without external dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What goes wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A GPU (GCD) drops out: the run aborts at this step and must be
    /// restarted from its last checkpoint, optionally with a shrunk
    /// (elastic) world size.
    GpuFailure {
        /// Ranks lost to the failure.
        ranks_lost: u32,
    },
    /// One slow node stretches every step in a window — DDP runs at the
    /// pace of its slowest rank.
    Straggler {
        /// Multiplier on step duration (> 1.0).
        slowdown: f64,
        /// Number of consecutive steps affected, starting at the
        /// event's step.
        steps: u64,
    },
    /// A transient collective error: the all-reduce is retried and the
    /// whole step repeated, costing `retries` extra step times.
    AllReduceTransient {
        /// Failed attempts before the collective succeeds.
        retries: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Global optimizer step (0-based) at which the fault fires.
    pub step: u64,
    /// The failure mode.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::GpuFailure { ranks_lost } => {
                write!(
                    f,
                    "gpu failure at step {} ({ranks_lost} ranks lost)",
                    self.step
                )
            }
            FaultKind::Straggler { slowdown, steps } => write!(
                f,
                "straggler at step {} ({slowdown:.2}x for {steps} steps)",
                self.step
            ),
            FaultKind::AllReduceTransient { retries } => {
                write!(
                    f,
                    "transient all-reduce error at step {} ({retries} retries)",
                    self.step
                )
            }
        }
    }
}

/// A deterministic schedule of faults for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled faults, sorted by step.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A single fatal GPU failure (one rank) at `step`.
    pub fn single_gpu_failure(step: u64) -> Self {
        FaultPlan {
            events: vec![FaultEvent {
                step,
                kind: FaultKind::GpuFailure { ranks_lost: 1 },
            }],
        }
    }

    /// Derives a representative plan from a seed: one straggler window
    /// in the first half of the run, one transient all-reduce error in
    /// the third quarter, and a GPU failure in the final quarter — all
    /// positions and magnitudes drawn from `splitmix64(seed)`. The same
    /// `(seed, horizon_steps)` always yields the same plan.
    pub fn seeded(seed: u64, horizon_steps: u64) -> Self {
        let h = horizon_steps.max(4);
        let mut s = seed;
        let quarter = (h / 4).max(1);

        let straggler_start = splitmix64(&mut s) % (h / 2).max(1);
        let straggler_len = 1 + splitmix64(&mut s) % quarter;
        let slowdown = 1.5 + (splitmix64(&mut s) % 1000) as f64 / 500.0; // 1.5..3.5
        let ar_step = h / 2 + splitmix64(&mut s) % quarter;
        let retries = 1 + (splitmix64(&mut s) % 3) as u32;
        let fail_step = h / 2 + quarter + splitmix64(&mut s) % quarter;

        let mut events = vec![
            FaultEvent {
                step: straggler_start,
                kind: FaultKind::Straggler {
                    slowdown,
                    steps: straggler_len,
                },
            },
            FaultEvent {
                step: ar_step,
                kind: FaultKind::AllReduceTransient { retries },
            },
            FaultEvent {
                step: fail_step,
                kind: FaultKind::GpuFailure { ranks_lost: 1 },
            },
        ];
        events.sort_by_key(|e| e.step);
        FaultPlan { events }
    }

    /// Checks the plan for nonsense (non-finite or non-positive
    /// slowdowns, zero-length windows).
    pub fn validate(&self) -> Result<(), String> {
        for e in &self.events {
            match e.kind {
                FaultKind::Straggler { slowdown, steps } => {
                    if !slowdown.is_finite() || slowdown < 1.0 {
                        return Err(format!("straggler slowdown {slowdown} must be >= 1"));
                    }
                    if steps == 0 {
                        return Err("straggler window must cover at least one step".into());
                    }
                }
                FaultKind::GpuFailure { ranks_lost } => {
                    if ranks_lost == 0 {
                        return Err("gpu failure must lose at least one rank".into());
                    }
                }
                FaultKind::AllReduceTransient { retries } => {
                    if retries == 0 {
                        return Err("transient all-reduce fault needs >= 1 retry".into());
                    }
                }
            }
        }
        Ok(())
    }

    /// The first fatal (GPU-failure) event scheduled exactly at `step`.
    pub fn fatal_at(&self, step: u64) -> Option<FaultEvent> {
        self.events
            .iter()
            .find(|e| e.step == step && matches!(e.kind, FaultKind::GpuFailure { .. }))
            .copied()
    }

    /// Combined straggler slowdown covering `step` (1.0 = none).
    pub fn slowdown_at(&self, step: u64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Straggler { slowdown, steps }
                    if step >= e.step && step < e.step.saturating_add(steps) =>
                {
                    Some(slowdown)
                }
                _ => None,
            })
            .product::<f64>()
            .max(1.0)
    }

    /// Total transient all-reduce retries scheduled exactly at `step`.
    pub fn allreduce_retries_at(&self, step: u64) -> u32 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::AllReduceTransient { retries } if e.step == step => retries,
                _ => 0,
            })
            .sum()
    }

    /// Total transient all-reduce retries with `from <= step < to`
    /// (used at epoch boundaries to drive the real collective).
    pub fn allreduce_retries_between(&self, from: u64, to: u64) -> u32 {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::AllReduceTransient { retries } if e.step >= from && e.step < to => {
                    retries
                }
                _ => 0,
            })
            .sum()
    }

    /// Count of events with `from <= step < to` (how many faults a run
    /// segment actually hit).
    pub fn fired_between(&self, from: u64, to: u64) -> u32 {
        self.events
            .iter()
            .filter(|e| e.step >= from && e.step < to)
            .count() as u32
    }

    /// The plan with every event at or before `step` dropped — what a
    /// restarted run should carry so consumed faults do not re-fire.
    pub fn after(&self, step: u64) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .filter(|e| e.step > step)
                .copied()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 1000);
        let b = FaultPlan::seeded(42, 1000);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 1000);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn seeded_plans_are_valid_and_in_horizon() {
        for seed in 0..50u64 {
            for horizon in [4u64, 10, 100, 10_000] {
                let plan = FaultPlan::seeded(seed, horizon);
                plan.validate().unwrap();
                assert_eq!(plan.events.len(), 3);
                assert!(plan.events.iter().all(|e| e.step < horizon));
                assert!(plan.events.windows(2).all(|w| w[0].step <= w[1].step));
            }
        }
    }

    #[test]
    fn lookup_helpers() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    step: 5,
                    kind: FaultKind::Straggler {
                        slowdown: 2.0,
                        steps: 3,
                    },
                },
                FaultEvent {
                    step: 10,
                    kind: FaultKind::AllReduceTransient { retries: 2 },
                },
                FaultEvent {
                    step: 20,
                    kind: FaultKind::GpuFailure { ranks_lost: 1 },
                },
            ],
        };
        assert_eq!(plan.slowdown_at(4), 1.0);
        assert_eq!(plan.slowdown_at(5), 2.0);
        assert_eq!(plan.slowdown_at(7), 2.0);
        assert_eq!(plan.slowdown_at(8), 1.0);
        assert_eq!(plan.allreduce_retries_at(10), 2);
        assert_eq!(plan.allreduce_retries_at(11), 0);
        assert_eq!(plan.allreduce_retries_between(0, 100), 2);
        assert!(plan.fatal_at(20).is_some());
        assert!(plan.fatal_at(19).is_none());
        assert_eq!(plan.fired_between(0, 11), 2);
        assert_eq!(plan.after(10).events.len(), 1);
        assert_eq!(plan.after(20).events.len(), 0);
    }

    #[test]
    fn invalid_plans_rejected() {
        let bad = FaultPlan {
            events: vec![FaultEvent {
                step: 0,
                kind: FaultKind::Straggler {
                    slowdown: 0.5,
                    steps: 1,
                },
            }],
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            events: vec![FaultEvent {
                step: 0,
                kind: FaultKind::GpuFailure { ranks_lost: 0 },
            }],
        };
        assert!(bad.validate().is_err());
        let bad = FaultPlan {
            events: vec![FaultEvent {
                step: 0,
                kind: FaultKind::AllReduceTransient { retries: 0 },
            }],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn overlapping_stragglers_compound() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    step: 0,
                    kind: FaultKind::Straggler {
                        slowdown: 2.0,
                        steps: 10,
                    },
                },
                FaultEvent {
                    step: 5,
                    kind: FaultKind::Straggler {
                        slowdown: 3.0,
                        steps: 10,
                    },
                },
            ],
        };
        assert_eq!(plan.slowdown_at(2), 2.0);
        assert_eq!(plan.slowdown_at(7), 6.0);
        assert_eq!(plan.slowdown_at(12), 3.0);
    }
}
