//! The training-run orchestrator.
//!
//! Walks simulated time step by step: computes each DDP step's duration
//! from the FLOP and communication models, advances the loss along the
//! architecture's scaling law, integrates node energy with the
//! `energy-monitor` substrate, and reports everything through a
//! [`TrainObserver`] — the hook the provenance library attaches to.

use crate::comm::{step_comm_cost, DdpCommConfig};
use crate::dataset::DatasetSpec;
use crate::ddp;
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::machine::MachineConfig;
use crate::model::ModelConfig;
use crate::scaling_law::LossLaw;
use energy_monitor::device::{epyc_7a53, mi250x_gcd, node_overhead};
use energy_monitor::sampler::{PowerSampler, VirtualClock};
use std::sync::Arc;

/// Which stage of the paper's two-stage recipe a run simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Self-supervised pre-training (MAE masking applies).
    PreTraining,
    /// Fine-tuning on labeled data with most layers frozen (paper §5:
    /// "all layers except for the final prediction head are kept
    /// frozen").
    FineTuning {
        /// Fraction of parameters that stay frozen (0..=1).
        frozen_fraction: f64,
    },
}

/// Walltime budget of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalltimeCutoff {
    /// No limit: run to the configured number of epochs.
    Unlimited,
    /// Abort (mark incomplete) once simulated walltime passes this many
    /// seconds — the paper uses the Frontier batch limit of 2 hours.
    Seconds(f64),
}

impl WalltimeCutoff {
    /// The paper's two-hour batch-queue limit.
    pub fn paper_two_hours() -> Self {
        WalltimeCutoff::Seconds(2.0 * 3600.0)
    }

    fn exceeded(&self, t: f64) -> bool {
        match self {
            WalltimeCutoff::Unlimited => false,
            WalltimeCutoff::Seconds(s) => t > *s,
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The model being trained.
    pub model: ModelConfig,
    /// The machine it runs on.
    pub machine: MachineConfig,
    /// The dataset it consumes.
    pub dataset: DatasetSpec,
    /// Number of data-parallel GPUs (GCDs).
    pub gpus: u32,
    /// Per-GPU micro-batch size.
    pub per_gpu_batch: u32,
    /// Number of passes over the dataset.
    pub epochs: u32,
    /// Communication model tunables.
    pub comm: DdpCommConfig,
    /// Walltime budget.
    pub cutoff: WalltimeCutoff,
    /// Run a real threaded ring all-reduce on a proxy gradient once per
    /// epoch, to exercise concurrent code paths (slower; off for sweeps).
    pub exercise_collective: bool,
    /// Pre-training or fine-tuning (affects FLOPs, gradient volume and
    /// masking).
    pub phase: Phase,
    /// Gradient-accumulation micro-steps per optimizer step (1 = plain
    /// DDP). Accumulation amortizes the all-reduce over N forward/
    /// backward passes at the cost of an N× larger effective batch.
    pub grad_accumulation: u32,
    /// Resume from a previous run's checkpoint instead of from scratch.
    pub resume_from: Option<Checkpoint>,
    /// Deterministic fault schedule (empty = fault-free).
    pub faults: FaultPlan,
}

impl SimConfig {
    /// A config with paper-style defaults for the given corner.
    pub fn paper(model: ModelConfig, gpus: u32) -> Self {
        SimConfig {
            model,
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::modis(),
            gpus,
            per_gpu_batch: 32,
            epochs: 10,
            comm: DdpCommConfig::default(),
            cutoff: WalltimeCutoff::paper_two_hours(),
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
            faults: FaultPlan::default(),
        }
    }

    /// A fine-tuning variant of this configuration: frozen backbone,
    /// labeled subset of the dataset.
    pub fn into_finetune(mut self, frozen_fraction: f64, labeled_samples: u64) -> Self {
        self.phase = Phase::FineTuning { frozen_fraction };
        self.dataset = self.dataset.with_samples(labeled_samples);
        self
    }

    /// Global batch size across all GPUs per *optimizer* step
    /// (micro-batch × accumulation × GPUs).
    pub fn global_batch(&self) -> u32 {
        self.gpus * self.per_gpu_batch * self.grad_accumulation
    }

    /// Validates the configuration, including the memory-fit check that
    /// kills real jobs before they start.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        if self.gpus == 0 {
            return Err("at least one GPU required".into());
        }
        if self.per_gpu_batch == 0 {
            return Err("per-GPU batch must be positive".into());
        }
        if self.grad_accumulation == 0 {
            return Err("grad_accumulation must be positive".into());
        }
        if self.epochs == 0 {
            return Err("at least one epoch required".into());
        }
        self.faults.validate()?;
        let need = self.model.memory_bytes(self.per_gpu_batch);
        if need > self.machine.gpu_memory_bytes {
            return Err(format!(
                "model needs {:.1} GiB per GPU but only {:.1} GiB available",
                need as f64 / (1u64 << 30) as f64,
                self.machine.gpu_memory_bytes as f64 / (1u64 << 30) as f64
            ));
        }
        Ok(())
    }
}

/// A resumable training checkpoint: enough state to continue a run
/// after a walltime cutoff (the reality behind the paper's 2-hour
/// queue limit — long studies run as chains of jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Samples consumed before the checkpoint.
    pub samples_seen: u64,
    /// Optimizer steps completed before the checkpoint.
    pub steps: u64,
    /// Epochs fully completed before the checkpoint.
    pub epochs_completed: u32,
}

/// Per-step telemetry delivered to observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// Global step index (0-based).
    pub step: u64,
    /// Epoch this step belongs to (0-based).
    pub epoch: u32,
    /// Simulated walltime at step end, seconds.
    pub sim_time_s: f64,
    /// Duration of this step, seconds.
    pub step_time_s: f64,
    /// Training loss after this step.
    pub loss: f64,
    /// Samples consumed so far (all ranks).
    pub samples_seen: u64,
    /// Mean per-GPU draw during this step, watts.
    pub gpu_power_w: f64,
    /// GPU compute utilization during this step (0..=1).
    pub gpu_util: f64,
    /// Throughput in samples/s for this step.
    pub samples_per_s: f64,
}

/// End-of-epoch telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochEvent {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Simulated walltime at epoch end.
    pub sim_time_s: f64,
    /// Loss at epoch end.
    pub loss: f64,
    /// Energy consumed so far, joules.
    pub joules_so_far: f64,
}

/// Observer hook for provenance collection (all methods default to
/// no-ops so implementors only write what they need).
pub trait TrainObserver {
    /// Called once before the first step.
    fn on_run_start(&mut self, _cfg: &SimConfig) {}
    /// Called after every optimization step.
    fn on_step(&mut self, _event: &StepEvent) {}
    /// Called at each epoch boundary.
    fn on_epoch_end(&mut self, _event: &EpochEvent) {}
    /// Called once when the run finishes or is cut off.
    fn on_run_end(&mut self, _result: &RunResult) {}
}

/// A no-op observer.
pub struct NullObserver;
impl TrainObserver for NullObserver {}

/// Outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Final training loss.
    pub final_loss: f64,
    /// Total energy across all nodes, joules.
    pub energy_joules: f64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Simulated walltime, seconds.
    pub walltime_s: f64,
    /// Steps executed.
    pub steps: u64,
    /// Samples consumed.
    pub samples_seen: u64,
    /// Epochs fully completed.
    pub epochs_completed: u32,
    /// False when the walltime cutoff aborted the run (the paper's
    /// "empty cells").
    pub completed: bool,
    /// Mean achieved samples/s.
    pub mean_throughput: f64,
    /// The paper's Figure 3 metric: loss × total energy (kWh).
    pub loss_energy_product: f64,
    /// State to resume from (meaningful when `!completed`; always set).
    /// After a fatal fault this is the last epoch-boundary checkpoint —
    /// step-granular state died with the process.
    pub checkpoint: Checkpoint,
    /// The fatal fault that aborted the run, if any.
    pub fault: Option<FaultEvent>,
    /// Non-fatal faults (stragglers, transient collective errors) that
    /// fired during the executed step range.
    pub faults_injected: u32,
}

/// The simulator.
pub struct TrainingSimulation {
    cfg: SimConfig,
    law: LossLaw,
}

impl TrainingSimulation {
    /// Builds a simulation after validating the configuration.
    pub fn new(cfg: SimConfig) -> Result<Self, String> {
        cfg.validate()?;
        let law = LossLaw::for_architecture(cfg.model.arch);
        Ok(TrainingSimulation { cfg, law })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Duration of one optimization step in seconds, decomposed as
    /// `(total, compute, exposed_comm, io)`.
    pub fn step_time(&self) -> (f64, f64, f64, f64) {
        let m = &self.cfg.model;
        let machine = &self.cfg.machine;
        let (flops_per_sample, grad_bytes) = match self.cfg.phase {
            Phase::PreTraining => (m.flops_per_sample(), m.gradient_bytes()),
            Phase::FineTuning { frozen_fraction } => (
                m.flops_per_sample_finetune(frozen_fraction),
                m.gradient_bytes_finetune(frozen_fraction),
            ),
        };
        // Compute covers every accumulation micro-step; the all-reduce
        // fires once per optimizer step regardless of accumulation.
        let flops =
            flops_per_sample * self.cfg.per_gpu_batch as f64 * self.cfg.grad_accumulation as f64;
        let effective = machine.gpu_peak_flops * m.arch.mfu();
        let compute = flops / effective;
        let comm = step_comm_cost(grad_bytes, self.cfg.gpus, machine, &self.cfg.comm)
            .exposed_after_overlap;
        // Data loading: per node, `gpus_per_node` ranks share the node's
        // I/O bandwidth; loading overlaps compute (prefetch), so only
        // the excess is exposed.
        let local_ranks = self.cfg.gpus.min(machine.gpus_per_node) as f64;
        let io = self.cfg.dataset.bytes_per_sample() as f64
            * self.cfg.per_gpu_batch as f64
            * self.cfg.grad_accumulation as f64
            * local_ranks
            / machine.io_bw;
        let total = (compute + comm).max(io);
        (total, compute, comm, io)
    }

    /// Runs the simulation, reporting through `observer`.
    pub fn run(&self, observer: &mut dyn TrainObserver) -> RunResult {
        let cfg = &self.cfg;
        observer.on_run_start(cfg);

        let (step_time, compute, comm, _io) = self.step_time();
        let gpu_util = (compute / step_time).clamp(0.0, 1.0);
        // Communication keeps the GCD partially busy too.
        let comm_util = 0.3 * (comm / step_time).clamp(0.0, 1.0);
        let util = (gpu_util + comm_util).clamp(0.0, 1.0);

        let gcd = mi250x_gcd();
        let cpu = epyc_7a53();
        let overhead = node_overhead();
        let nodes = cfg.machine.nodes_for(cfg.gpus) as f64;
        let gpu_power = gcd.power_at(util);
        let node_power = cfg.gpus.min(cfg.machine.gpus_per_node) as f64 * gpu_power
            + cpu.power_at(0.35)
            + overhead.power_at(0.5);
        // Full nodes plus the partial node draw the same per-node power
        // (allocation is node-granular on Frontier).
        let total_power = node_power * nodes;

        // Sample power on a virtual clock through the telemetry
        // substrate, once per step (what the real library does with SMI).
        let clock = VirtualClock::manual();
        let sampler = PowerSampler::manual(Arc::clone(&clock));
        sampler.sample_now(total_power);

        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        let global_batch = cfg.global_batch() as u64;

        // Step-indexed loop: resume granularity is the optimizer step,
        // so a chained sequence of cutoff jobs replays the exact same
        // trajectory as one uncapped run.
        let start = cfg.resume_from.unwrap_or_default();
        let total_steps = steps_per_epoch * cfg.epochs as u64;
        let mut t = 0.0f64;
        let mut step: u64 = start.steps.min(total_steps);
        let mut samples: u64 = start.samples_seen;
        let mut loss = self
            .law
            .noisy_loss(cfg.model.params, (samples.max(1)) as f64, step);
        let mut completed = true;
        let mut epochs_completed = (step / steps_per_epoch.max(1)) as u32;
        let start_step = step;
        let mut fatal: Option<FaultEvent> = None;
        // Epoch-boundary checkpoint: what survives a fatal fault
        // (step-granular state dies with the process).
        let mut last_ckpt = Checkpoint {
            samples_seen: samples,
            steps: step,
            epochs_completed,
        };

        // Real walltime (not simulated time) spent per step / per epoch
        // block, so the tracker's observability layer can report how
        // much the simulator itself costs the host.
        let step_hist = obs::global().histogram("train_sim_step_walltime_seconds");
        let epoch_hist = obs::global().histogram("train_sim_epoch_walltime_seconds");

        while step < total_steps {
            let _step_span = step_hist.start_span();
            // A GPU failure scheduled for the step we are about to
            // execute kills the run before the step completes.
            if let Some(ev) = cfg.faults.fatal_at(step) {
                fatal = Some(ev);
                completed = false;
                break;
            }

            let epoch = (step / steps_per_epoch) as u32;
            // Non-fatal faults stretch the step: DDP runs at the pace
            // of its slowest rank, and a transient collective error
            // repeats the whole step once per retry.
            let slowdown = cfg.faults.slowdown_at(step);
            let retries = cfg.faults.allreduce_retries_at(step);
            let this_step = step_time * slowdown * (1 + retries) as f64;
            let step_index = step;
            let step_start = t;
            t += this_step;
            step += 1;
            samples += global_batch;
            loss = self.law.noisy_loss(cfg.model.params, samples as f64, step);

            clock.set_s(t);
            sampler.sample_now(total_power);

            // Per-rank causal spans on the simulated clock: one track
            // per rank, a step span enclosing compute and all-reduce.
            // DDP runs at the pace of its slowest rank, so under a
            // straggler one rank's compute stretches while the rest
            // wait inside the collective.
            if obs::trace::is_enabled() {
                let to_ns = |s: f64| (s * 1e9) as u64;
                let straggler = if slowdown > 1.0 {
                    (step_index % cfg.gpus as u64) as u32
                } else {
                    u32::MAX
                };
                let step_label = step_index.to_string();
                let epoch_label = epoch.to_string();
                let retries_label = retries.to_string();
                for rank in 0..cfg.gpus {
                    let track = format!("rank {rank}");
                    let step_id = obs::trace::record_complete(
                        &track,
                        "step",
                        to_ns(step_start),
                        to_ns(t),
                        0,
                        &[("step", &step_label), ("epoch", &epoch_label)],
                    );
                    let compute_s = if rank == straggler {
                        compute * slowdown
                    } else {
                        compute
                    };
                    obs::trace::record_complete(
                        &track,
                        "compute",
                        to_ns(step_start),
                        to_ns(step_start + compute_s),
                        step_id,
                        &[],
                    );
                    let mut args: Vec<(&str, &str)> = Vec::new();
                    if retries > 0 {
                        args.push(("retries", &retries_label));
                    }
                    if slowdown > 1.0 {
                        args.push(if rank == straggler {
                            ("straggler", "true")
                        } else {
                            ("straggler_wait", "true")
                        });
                    }
                    obs::trace::record_complete(
                        &track,
                        "all_reduce",
                        to_ns(step_start + compute_s),
                        to_ns(t),
                        step_id,
                        &args,
                    );
                }
            }

            observer.on_step(&StepEvent {
                step: step - 1,
                epoch,
                sim_time_s: t,
                step_time_s: this_step,
                loss,
                samples_seen: samples,
                gpu_power_w: gpu_power,
                gpu_util: util,
                samples_per_s: global_batch as f64 / this_step,
            });

            let epoch_boundary = step % steps_per_epoch == 0;
            if epoch_boundary {
                let _epoch_span = epoch_hist.start_span();
                epochs_completed = epoch + 1;
                last_ckpt = Checkpoint {
                    samples_seen: samples,
                    steps: step,
                    epochs_completed,
                };

                if cfg.exercise_collective {
                    // Real threaded ring all-reduce on a proxy gradient:
                    // the values must agree with the sequential
                    // reduction, or the simulated cluster is broken.
                    let ranks = cfg.gpus.min(8) as usize;
                    let proxy: Vec<Vec<f64>> = (0..ranks)
                        .map(|r| (0..512).map(|i| (r * 512 + i) as f64).collect())
                        .collect();
                    let expect = ddp::sequential_allreduce(&proxy);
                    let epoch_retries = cfg
                        .faults
                        .allreduce_retries_between(step.saturating_sub(steps_per_epoch), step);
                    let (got, attempts) = ddp::ring_allreduce_with_retry(proxy, epoch_retries);
                    assert_eq!(got.len(), expect.len());
                    debug_assert!(attempts >= 1);
                }

                observer.on_epoch_end(&EpochEvent {
                    epoch,
                    sim_time_s: t,
                    loss,
                    joules_so_far: sampler.joules_so_far(),
                });
            }

            if cfg.cutoff.exceeded(t) {
                completed = step >= total_steps;
                break;
            }
        }

        let (_, energy) = sampler.finish();
        let checkpoint = if fatal.is_some() {
            last_ckpt
        } else {
            Checkpoint {
                samples_seen: samples,
                steps: step,
                epochs_completed,
            }
        };
        let result = RunResult {
            final_loss: loss,
            energy_joules: energy.joules(),
            energy_kwh: energy.kwh(),
            walltime_s: t,
            steps: step,
            samples_seen: samples,
            epochs_completed,
            completed,
            mean_throughput: if t > 0.0 {
                (samples - start.samples_seen) as f64 / t
            } else {
                0.0
            },
            loss_energy_product: loss * energy.kwh(),
            checkpoint,
            fault: fatal,
            faults_injected: cfg.faults.fired_between(start_step, step),
        };
        observer.on_run_end(&result);
        result
    }
}

/// Outcome of [`run_with_recovery`]: the final run plus the restart
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Result of the last (surviving) attempt.
    pub result: RunResult,
    /// Attempts executed (1 = no restart needed).
    pub attempts: u32,
    /// Walltime summed over every attempt, seconds — failures are not
    /// free, and this is what counts against the queue limit.
    pub total_walltime_s: f64,
    /// Energy summed over every attempt, joules.
    pub total_energy_joules: f64,
    /// Steps redone because fatal faults land between checkpoints.
    pub lost_steps: u64,
    /// World size of the final attempt (shrunk under elastic restart).
    pub final_gpus: u32,
}

/// Runs `cfg` to completion through fatal faults: each GPU failure
/// restarts the run from its last epoch-boundary checkpoint, up to
/// `max_restarts` times, with the walltime and energy of every failed
/// attempt charged against the original cutoff budget. With
/// `shrink_on_failure` the restart proceeds elastically on the
/// surviving ranks instead of waiting for a replacement.
pub fn run_with_recovery(
    base: &SimConfig,
    observer: &mut dyn TrainObserver,
    max_restarts: u32,
    shrink_on_failure: bool,
) -> Result<RecoveryOutcome, String> {
    let budget = base.cutoff;
    let mut cfg = base.clone();
    let mut attempts = 0u32;
    let mut total_walltime = 0.0f64;
    let mut total_energy = 0.0f64;
    let mut lost_steps = 0u64;

    loop {
        attempts += 1;
        // Failed attempts already consumed part of the budget.
        cfg.cutoff = match budget {
            WalltimeCutoff::Unlimited => WalltimeCutoff::Unlimited,
            WalltimeCutoff::Seconds(s) => WalltimeCutoff::Seconds((s - total_walltime).max(0.0)),
        };
        let result = TrainingSimulation::new(cfg.clone())?.run(observer);
        total_walltime += result.walltime_s;
        total_energy += result.energy_joules;

        match result.fault {
            Some(ev) if attempts <= max_restarts => {
                lost_steps += result.steps - result.checkpoint.steps;
                // Consumed faults must not re-fire on the restart.
                cfg.faults = cfg.faults.after(ev.step);
                if shrink_on_failure {
                    if let FaultKind::GpuFailure { ranks_lost } = ev.kind {
                        cfg.gpus = cfg.gpus.saturating_sub(ranks_lost).max(1);
                    }
                }
                cfg.resume_from = Some(result.checkpoint);
            }
            _ => {
                return Ok(RecoveryOutcome {
                    result,
                    attempts,
                    total_walltime_s: total_walltime,
                    total_energy_joules: total_energy,
                    lost_steps,
                    final_gpus: cfg.gpus,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Architecture;

    fn tiny_cfg(gpus: u32) -> SimConfig {
        SimConfig {
            model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::tiny(10_000),
            gpus,
            per_gpu_batch: 32,
            epochs: 2,
            comm: DdpCommConfig::default(),
            cutoff: WalltimeCutoff::Unlimited,
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
            faults: FaultPlan::default(),
        }
    }

    struct CountingObserver {
        steps: u64,
        epochs: u32,
        started: bool,
        ended: bool,
        last_loss: f64,
    }

    impl TrainObserver for CountingObserver {
        fn on_run_start(&mut self, _cfg: &SimConfig) {
            self.started = true;
        }
        fn on_step(&mut self, e: &StepEvent) {
            self.steps += 1;
            self.last_loss = e.loss;
        }
        fn on_epoch_end(&mut self, _e: &EpochEvent) {
            self.epochs += 1;
        }
        fn on_run_end(&mut self, _r: &RunResult) {
            self.ended = true;
        }
    }

    #[test]
    fn observer_sees_all_events() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let mut obs = CountingObserver {
            steps: 0,
            epochs: 0,
            started: false,
            ended: false,
            last_loss: 0.0,
        };
        let result = sim.run(&mut obs);
        assert!(obs.started && obs.ended);
        assert_eq!(obs.epochs, 2);
        assert_eq!(obs.steps, result.steps);
        assert_eq!(obs.last_loss, result.final_loss);
        assert!(result.completed);
    }

    #[test]
    fn loss_decreases_over_training() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let r1 = sim.run(&mut NullObserver);
        let mut long_cfg = tiny_cfg(8);
        long_cfg.epochs = 20;
        let r2 = TrainingSimulation::new(long_cfg)
            .unwrap()
            .run(&mut NullObserver);
        assert!(r2.final_loss < r1.final_loss);
    }

    #[test]
    fn more_gpus_finish_faster_but_burn_more_power() {
        let r8 = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);
        let r64 = TrainingSimulation::new(tiny_cfg(64))
            .unwrap()
            .run(&mut NullObserver);
        assert!(r64.walltime_s < r8.walltime_s, "scale-out reduces walltime");
        assert!(r64.mean_throughput > r8.mean_throughput);
    }

    #[test]
    fn walltime_cutoff_marks_incomplete() {
        let mut cfg = tiny_cfg(8);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 1_400_000_000);
        cfg.dataset = DatasetSpec::modis();
        cfg.cutoff = WalltimeCutoff::Seconds(60.0);
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(!r.completed);
        assert!(r.walltime_s >= 60.0);
        assert_eq!(r.epochs_completed, 0);
    }

    #[test]
    fn energy_matches_power_times_time() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let r = sim.run(&mut NullObserver);
        // Constant power per step → energy ≈ mean power × walltime.
        let implied_power = r.energy_joules / r.walltime_s;
        assert!(
            implied_power > 1_000.0 && implied_power < 4_000.0,
            "one-node draw {implied_power} W"
        );
        assert!((r.loss_energy_product - r.final_loss * r.energy_kwh).abs() < 1e-12);
    }

    #[test]
    fn oom_configs_rejected() {
        let mut cfg = tiny_cfg(8);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 1_400_000_000);
        cfg.per_gpu_batch = 10_000; // activation blow-up
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = tiny_cfg(0);
        cfg.gpus = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
        let mut cfg = tiny_cfg(8);
        cfg.per_gpu_batch = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
        let mut cfg = tiny_cfg(8);
        cfg.epochs = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn collective_exercise_mode_runs() {
        let mut cfg = tiny_cfg(8);
        cfg.dataset = DatasetSpec::tiny(500);
        cfg.epochs = 1;
        cfg.exercise_collective = true;
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(r.completed);
    }

    #[test]
    fn step_time_decomposition_is_consistent() {
        let sim = TrainingSimulation::new(tiny_cfg(16)).unwrap();
        let (total, compute, comm, io) = sim.step_time();
        assert!(total >= compute);
        assert!(total >= io);
        assert!(compute > 0.0 && comm >= 0.0 && io > 0.0);
        assert!((total - (compute + comm).max(io)).abs() < 1e-15);
    }

    #[test]
    fn finetuning_is_cheaper_than_pretraining() {
        let pre = tiny_cfg(8);
        let (pre_total, pre_compute, ..) =
            TrainingSimulation::new(pre.clone()).unwrap().step_time();

        // Freeze everything but the head: backward nearly free, but the
        // full (unmasked for MAE: Swin unaffected) forward remains.
        let ft = pre.clone().into_finetune(0.99, 1_000);
        let (ft_total, ft_compute, ..) = TrainingSimulation::new(ft).unwrap().step_time();
        assert!(ft_compute < pre_compute, "frozen backward must be cheaper");
        let _ = (pre_total, ft_total);

        // Fully trainable "fine-tune" on SwinV2 costs the same as
        // pre-training (no masking difference for Swin).
        let full = tiny_cfg(8).into_finetune(0.0, 1_000);
        let (_, full_compute, ..) = TrainingSimulation::new(full).unwrap().step_time();
        assert!((full_compute - pre_compute).abs() / pre_compute < 1e-9);
    }

    #[test]
    fn finetune_gradient_traffic_shrinks() {
        use crate::model::ModelConfig;
        let m = ModelConfig::sized(Architecture::SwinV2, 1_000_000_000);
        assert_eq!(m.gradient_bytes(), 4_000_000_000);
        assert_eq!(m.gradient_bytes_finetune(1.0), 0);
        assert_eq!(m.gradient_bytes_finetune(0.75), 1_000_000_000);
        // Comm time drops accordingly.
        let mut cfg = tiny_cfg(64);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 600_000_000);
        let (_, _, pre_comm, _) = TrainingSimulation::new(cfg.clone()).unwrap().step_time();
        let ft = cfg.into_finetune(0.95, 1_000);
        let (_, _, ft_comm, _) = TrainingSimulation::new(ft).unwrap().step_time();
        assert!(ft_comm < pre_comm / 2.0);
    }

    #[test]
    fn finetune_runs_complete() {
        let cfg = tiny_cfg(8).into_finetune(0.98, 2_000);
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(r.completed);
        assert!(r.samples_seen >= 2_000);
    }

    #[test]
    fn gradient_accumulation_amortizes_communication() {
        // Same samples per optimizer step (batch 32×4 vs 128×1), same
        // gradient volume — but 4× fewer all-reduces per sample.
        let mut accum = tiny_cfg(64);
        accum.per_gpu_batch = 8;
        accum.grad_accumulation = 4;
        let mut plain = tiny_cfg(64);
        plain.per_gpu_batch = 32;
        plain.grad_accumulation = 1;
        assert_eq!(accum.global_batch(), plain.global_batch());

        let (at, ac, acomm, _) = TrainingSimulation::new(accum).unwrap().step_time();
        let (pt, pc, pcomm, _) = TrainingSimulation::new(plain).unwrap().step_time();
        assert!((ac - pc).abs() < 1e-12, "same compute per optimizer step");
        assert!(
            (acomm - pcomm).abs() < 1e-12,
            "same comm per optimizer step"
        );
        let _ = (at, pt);

        // Against the *same micro-batch*, accumulation reduces exposed
        // comm per sample.
        let mut micro = tiny_cfg(64);
        micro.per_gpu_batch = 8;
        micro.grad_accumulation = 1;
        let (mt, _, mcomm, _) = TrainingSimulation::new(micro.clone()).unwrap().step_time();
        let per_sample_micro = (mt) / (8.0 * 64.0);
        let mut micro4 = micro;
        micro4.grad_accumulation = 4;
        let (m4t, _, m4comm, _) = TrainingSimulation::new(micro4).unwrap().step_time();
        let per_sample_accum = m4t / (8.0 * 4.0 * 64.0);
        assert!(
            per_sample_accum < per_sample_micro,
            "accumulation amortizes comm"
        );
        assert!((m4comm - mcomm).abs() < 1e-12);
    }

    #[test]
    fn zero_accumulation_rejected() {
        let mut cfg = tiny_cfg(8);
        cfg.grad_accumulation = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn resumed_chain_matches_single_run() {
        // One uncapped run...
        let full = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);
        // ...equals a chain of runs resumed epoch by epoch.
        let mut ckpt = None;
        let mut last = None;
        loop {
            let mut cfg = tiny_cfg(8);
            cfg.resume_from = ckpt;
            // One epoch of walltime per "job".
            let (step_time, ..) = TrainingSimulation::new(cfg.clone()).unwrap().step_time();
            let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
            cfg.cutoff = WalltimeCutoff::Seconds(step_time * steps_per_epoch as f64 + 1e-6);
            let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
            let done = r.completed;
            ckpt = Some(r.checkpoint);
            last = Some(r);
            if done {
                break;
            }
        }
        let chained = last.unwrap();
        assert_eq!(chained.final_loss, full.final_loss, "same loss trajectory");
        assert_eq!(chained.samples_seen, full.samples_seen);
        assert_eq!(chained.steps, full.steps);
    }

    #[test]
    fn resume_skips_completed_epochs() {
        let full = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);
        let mut cfg = tiny_cfg(8);
        cfg.resume_from = Some(Checkpoint {
            samples_seen: full.samples_seen,
            steps: full.steps,
            epochs_completed: cfg.epochs,
        });
        let resumed = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert_eq!(resumed.steps, full.steps, "nothing left to do");
        assert_eq!(resumed.walltime_s, 0.0);
        assert!(resumed.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);
        let b = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);
        assert_eq!(a, b);
    }

    // ----- fault injection ------------------------------------------------

    /// Observer recording the full step-event stream for byte-identical
    /// determinism checks.
    struct RecordingObserver {
        events: Vec<StepEvent>,
    }
    impl TrainObserver for RecordingObserver {
        fn on_step(&mut self, e: &StepEvent) {
            self.events.push(*e);
        }
    }

    #[test]
    fn gpu_failure_aborts_with_epoch_checkpoint() {
        let mut cfg = tiny_cfg(8);
        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        // Fail mid-way through epoch 1.
        let fail_step = steps_per_epoch + steps_per_epoch / 2;
        cfg.faults = FaultPlan::single_gpu_failure(fail_step);
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(!r.completed);
        assert_eq!(r.steps, fail_step, "stopped at the faulty step");
        assert_eq!(r.fault.unwrap().step, fail_step);
        assert_eq!(
            r.checkpoint.steps, steps_per_epoch,
            "checkpoint rolls back to the epoch boundary"
        );
        assert_eq!(r.checkpoint.epochs_completed, 1);
    }

    #[test]
    fn straggler_and_transient_faults_stretch_walltime() {
        let clean = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);

        let mut slow = tiny_cfg(8);
        slow.faults = FaultPlan {
            events: vec![FaultEvent {
                step: 0,
                kind: FaultKind::Straggler {
                    slowdown: 2.0,
                    steps: 10,
                },
            }],
        };
        let r_slow = TrainingSimulation::new(slow)
            .unwrap()
            .run(&mut NullObserver);
        assert!(r_slow.walltime_s > clean.walltime_s);
        assert!(
            r_slow.energy_joules > clean.energy_joules,
            "slow steps burn energy"
        );
        assert_eq!(r_slow.steps, clean.steps, "no work lost");
        assert_eq!(r_slow.faults_injected, 1);

        let mut flaky = tiny_cfg(8);
        flaky.faults = FaultPlan {
            events: vec![FaultEvent {
                step: 3,
                kind: FaultKind::AllReduceTransient { retries: 2 },
            }],
        };
        let r_flaky = TrainingSimulation::new(flaky)
            .unwrap()
            .run(&mut NullObserver);
        let (step_time, ..) = TrainingSimulation::new(tiny_cfg(8)).unwrap().step_time();
        let extra = r_flaky.walltime_s - clean.walltime_s;
        assert!(
            (extra - 2.0 * step_time).abs() < 1e-9,
            "2 retries cost 2 extra step times, got {extra}"
        );
        assert!(r_flaky.completed);
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let mk = || {
            let mut cfg = tiny_cfg(8);
            let total = cfg.dataset.steps_per_epoch(cfg.global_batch()) * cfg.epochs as u64;
            cfg.faults = FaultPlan::seeded(1234, total);
            cfg
        };
        let mut obs_a = RecordingObserver { events: Vec::new() };
        let mut obs_b = RecordingObserver { events: Vec::new() };
        let a = TrainingSimulation::new(mk()).unwrap().run(&mut obs_a);
        let b = TrainingSimulation::new(mk()).unwrap().run(&mut obs_b);
        assert_eq!(a, b, "identical RunResult");
        assert_eq!(obs_a.events, obs_b.events, "byte-identical event stream");
        assert!(a.fault.is_some(), "the seeded plan includes a GPU failure");
    }

    #[test]
    fn recovery_completes_after_gpu_failure() {
        let mut cfg = tiny_cfg(8);
        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        cfg.faults = FaultPlan::single_gpu_failure(steps_per_epoch + 2);
        let clean = TrainingSimulation::new(tiny_cfg(8))
            .unwrap()
            .run(&mut NullObserver);

        let out = run_with_recovery(&cfg, &mut NullObserver, 3, false).unwrap();
        assert!(out.result.completed);
        assert_eq!(out.attempts, 2);
        assert_eq!(out.lost_steps, 2, "steps past the checkpoint were redone");
        assert_eq!(out.final_gpus, 8);
        assert_eq!(out.result.final_loss, clean.final_loss, "same trajectory");
        assert_eq!(out.result.samples_seen, clean.samples_seen);
        assert!(
            out.total_walltime_s > clean.walltime_s,
            "the failed attempt is not free"
        );
    }

    #[test]
    fn elastic_recovery_shrinks_world_size() {
        let mut cfg = tiny_cfg(8);
        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        cfg.faults = FaultPlan::single_gpu_failure(steps_per_epoch + 1);
        let out = run_with_recovery(&cfg, &mut NullObserver, 3, true).unwrap();
        assert!(out.result.completed);
        assert_eq!(
            out.final_gpus, 7,
            "one rank lost, run continues elastically"
        );
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn recovery_respects_walltime_budget() {
        let mut cfg = tiny_cfg(8);
        let (step_time, ..) = TrainingSimulation::new(cfg.clone()).unwrap().step_time();
        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        cfg.faults = FaultPlan::single_gpu_failure(steps_per_epoch + 1);
        // Budget covers barely more than the failed attempt: the retry
        // must be cut off, not run to completion.
        cfg.cutoff = WalltimeCutoff::Seconds(step_time * (steps_per_epoch + 3) as f64);
        let out = run_with_recovery(&cfg, &mut NullObserver, 3, false).unwrap();
        assert!(!out.result.completed, "budget exhausted mid-retry");
        let budget = step_time * (steps_per_epoch + 3) as f64;
        assert!(
            out.total_walltime_s <= budget + step_time * 2.0,
            "total {} must stay near budget {budget}",
            out.total_walltime_s
        );
    }

    #[test]
    fn exhausted_restarts_return_failed_result() {
        let mut cfg = tiny_cfg(8);
        cfg.faults = FaultPlan {
            events: vec![
                FaultEvent {
                    step: 1,
                    kind: FaultKind::GpuFailure { ranks_lost: 1 },
                },
                FaultEvent {
                    step: 2,
                    kind: FaultKind::GpuFailure { ranks_lost: 1 },
                },
            ],
        };
        let out = run_with_recovery(&cfg, &mut NullObserver, 1, false).unwrap();
        assert!(!out.result.completed);
        assert!(out.result.fault.is_some(), "second failure was terminal");
        assert_eq!(out.attempts, 2);
    }

    #[test]
    fn faulty_collective_exercise_still_agrees() {
        let mut cfg = tiny_cfg(8);
        cfg.dataset = DatasetSpec::tiny(500);
        cfg.epochs = 1;
        cfg.exercise_collective = true;
        cfg.faults = FaultPlan {
            events: vec![FaultEvent {
                step: 0,
                kind: FaultKind::AllReduceTransient { retries: 1 },
            }],
        };
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(r.completed);
        assert_eq!(r.faults_injected, 1);
    }
}
