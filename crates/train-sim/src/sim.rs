//! The training-run orchestrator.
//!
//! Walks simulated time step by step: computes each DDP step's duration
//! from the FLOP and communication models, advances the loss along the
//! architecture's scaling law, integrates node energy with the
//! `energy-monitor` substrate, and reports everything through a
//! [`TrainObserver`] — the hook the provenance library attaches to.

use crate::comm::{step_comm_cost, DdpCommConfig};
use crate::dataset::DatasetSpec;
use crate::ddp;
use crate::machine::MachineConfig;
use crate::model::ModelConfig;
use crate::scaling_law::LossLaw;
use energy_monitor::device::{epyc_7a53, mi250x_gcd, node_overhead};
use energy_monitor::sampler::{PowerSampler, VirtualClock};
use std::sync::Arc;

/// Which stage of the paper's two-stage recipe a run simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Self-supervised pre-training (MAE masking applies).
    PreTraining,
    /// Fine-tuning on labeled data with most layers frozen (paper §5:
    /// "all layers except for the final prediction head are kept
    /// frozen").
    FineTuning {
        /// Fraction of parameters that stay frozen (0..=1).
        frozen_fraction: f64,
    },
}

/// Walltime budget of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalltimeCutoff {
    /// No limit: run to the configured number of epochs.
    Unlimited,
    /// Abort (mark incomplete) once simulated walltime passes this many
    /// seconds — the paper uses the Frontier batch limit of 2 hours.
    Seconds(f64),
}

impl WalltimeCutoff {
    /// The paper's two-hour batch-queue limit.
    pub fn paper_two_hours() -> Self {
        WalltimeCutoff::Seconds(2.0 * 3600.0)
    }

    fn exceeded(&self, t: f64) -> bool {
        match self {
            WalltimeCutoff::Unlimited => false,
            WalltimeCutoff::Seconds(s) => t > *s,
        }
    }
}

/// Full configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The model being trained.
    pub model: ModelConfig,
    /// The machine it runs on.
    pub machine: MachineConfig,
    /// The dataset it consumes.
    pub dataset: DatasetSpec,
    /// Number of data-parallel GPUs (GCDs).
    pub gpus: u32,
    /// Per-GPU micro-batch size.
    pub per_gpu_batch: u32,
    /// Number of passes over the dataset.
    pub epochs: u32,
    /// Communication model tunables.
    pub comm: DdpCommConfig,
    /// Walltime budget.
    pub cutoff: WalltimeCutoff,
    /// Run a real threaded ring all-reduce on a proxy gradient once per
    /// epoch, to exercise concurrent code paths (slower; off for sweeps).
    pub exercise_collective: bool,
    /// Pre-training or fine-tuning (affects FLOPs, gradient volume and
    /// masking).
    pub phase: Phase,
    /// Gradient-accumulation micro-steps per optimizer step (1 = plain
    /// DDP). Accumulation amortizes the all-reduce over N forward/
    /// backward passes at the cost of an N× larger effective batch.
    pub grad_accumulation: u32,
    /// Resume from a previous run's checkpoint instead of from scratch.
    pub resume_from: Option<Checkpoint>,
}

impl SimConfig {
    /// A config with paper-style defaults for the given corner.
    pub fn paper(model: ModelConfig, gpus: u32) -> Self {
        SimConfig {
            model,
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::modis(),
            gpus,
            per_gpu_batch: 32,
            epochs: 10,
            comm: DdpCommConfig::default(),
            cutoff: WalltimeCutoff::paper_two_hours(),
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
        }
    }

    /// A fine-tuning variant of this configuration: frozen backbone,
    /// labeled subset of the dataset.
    pub fn into_finetune(mut self, frozen_fraction: f64, labeled_samples: u64) -> Self {
        self.phase = Phase::FineTuning { frozen_fraction };
        self.dataset = self.dataset.with_samples(labeled_samples);
        self
    }

    /// Global batch size across all GPUs per *optimizer* step
    /// (micro-batch × accumulation × GPUs).
    pub fn global_batch(&self) -> u32 {
        self.gpus * self.per_gpu_batch * self.grad_accumulation
    }

    /// Validates the configuration, including the memory-fit check that
    /// kills real jobs before they start.
    pub fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        if self.gpus == 0 {
            return Err("at least one GPU required".into());
        }
        if self.per_gpu_batch == 0 {
            return Err("per-GPU batch must be positive".into());
        }
        if self.grad_accumulation == 0 {
            return Err("grad_accumulation must be positive".into());
        }
        if self.epochs == 0 {
            return Err("at least one epoch required".into());
        }
        let need = self.model.memory_bytes(self.per_gpu_batch);
        if need > self.machine.gpu_memory_bytes {
            return Err(format!(
                "model needs {:.1} GiB per GPU but only {:.1} GiB available",
                need as f64 / (1u64 << 30) as f64,
                self.machine.gpu_memory_bytes as f64 / (1u64 << 30) as f64
            ));
        }
        Ok(())
    }
}

/// A resumable training checkpoint: enough state to continue a run
/// after a walltime cutoff (the reality behind the paper's 2-hour
/// queue limit — long studies run as chains of jobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Samples consumed before the checkpoint.
    pub samples_seen: u64,
    /// Optimizer steps completed before the checkpoint.
    pub steps: u64,
    /// Epochs fully completed before the checkpoint.
    pub epochs_completed: u32,
}

/// Per-step telemetry delivered to observers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEvent {
    /// Global step index (0-based).
    pub step: u64,
    /// Epoch this step belongs to (0-based).
    pub epoch: u32,
    /// Simulated walltime at step end, seconds.
    pub sim_time_s: f64,
    /// Duration of this step, seconds.
    pub step_time_s: f64,
    /// Training loss after this step.
    pub loss: f64,
    /// Samples consumed so far (all ranks).
    pub samples_seen: u64,
    /// Mean per-GPU draw during this step, watts.
    pub gpu_power_w: f64,
    /// GPU compute utilization during this step (0..=1).
    pub gpu_util: f64,
    /// Throughput in samples/s for this step.
    pub samples_per_s: f64,
}

/// End-of-epoch telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochEvent {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Simulated walltime at epoch end.
    pub sim_time_s: f64,
    /// Loss at epoch end.
    pub loss: f64,
    /// Energy consumed so far, joules.
    pub joules_so_far: f64,
}

/// Observer hook for provenance collection (all methods default to
/// no-ops so implementors only write what they need).
pub trait TrainObserver {
    /// Called once before the first step.
    fn on_run_start(&mut self, _cfg: &SimConfig) {}
    /// Called after every optimization step.
    fn on_step(&mut self, _event: &StepEvent) {}
    /// Called at each epoch boundary.
    fn on_epoch_end(&mut self, _event: &EpochEvent) {}
    /// Called once when the run finishes or is cut off.
    fn on_run_end(&mut self, _result: &RunResult) {}
}

/// A no-op observer.
pub struct NullObserver;
impl TrainObserver for NullObserver {}

/// Outcome of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Final training loss.
    pub final_loss: f64,
    /// Total energy across all nodes, joules.
    pub energy_joules: f64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Simulated walltime, seconds.
    pub walltime_s: f64,
    /// Steps executed.
    pub steps: u64,
    /// Samples consumed.
    pub samples_seen: u64,
    /// Epochs fully completed.
    pub epochs_completed: u32,
    /// False when the walltime cutoff aborted the run (the paper's
    /// "empty cells").
    pub completed: bool,
    /// Mean achieved samples/s.
    pub mean_throughput: f64,
    /// The paper's Figure 3 metric: loss × total energy (kWh).
    pub loss_energy_product: f64,
    /// State to resume from (meaningful when `!completed`; always set).
    pub checkpoint: Checkpoint,
}

/// The simulator.
pub struct TrainingSimulation {
    cfg: SimConfig,
    law: LossLaw,
}

impl TrainingSimulation {
    /// Builds a simulation after validating the configuration.
    pub fn new(cfg: SimConfig) -> Result<Self, String> {
        cfg.validate()?;
        let law = LossLaw::for_architecture(cfg.model.arch);
        Ok(TrainingSimulation { cfg, law })
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Duration of one optimization step in seconds, decomposed as
    /// `(total, compute, exposed_comm, io)`.
    pub fn step_time(&self) -> (f64, f64, f64, f64) {
        let m = &self.cfg.model;
        let machine = &self.cfg.machine;
        let (flops_per_sample, grad_bytes) = match self.cfg.phase {
            Phase::PreTraining => (m.flops_per_sample(), m.gradient_bytes()),
            Phase::FineTuning { frozen_fraction } => (
                m.flops_per_sample_finetune(frozen_fraction),
                m.gradient_bytes_finetune(frozen_fraction),
            ),
        };
        // Compute covers every accumulation micro-step; the all-reduce
        // fires once per optimizer step regardless of accumulation.
        let flops = flops_per_sample
            * self.cfg.per_gpu_batch as f64
            * self.cfg.grad_accumulation as f64;
        let effective = machine.gpu_peak_flops * m.arch.mfu();
        let compute = flops / effective;
        let comm = step_comm_cost(grad_bytes, self.cfg.gpus, machine, &self.cfg.comm)
            .exposed_after_overlap;
        // Data loading: per node, `gpus_per_node` ranks share the node's
        // I/O bandwidth; loading overlaps compute (prefetch), so only
        // the excess is exposed.
        let local_ranks = self.cfg.gpus.min(machine.gpus_per_node) as f64;
        let io = self.cfg.dataset.bytes_per_sample() as f64
            * self.cfg.per_gpu_batch as f64
            * self.cfg.grad_accumulation as f64
            * local_ranks
            / machine.io_bw;
        let total = (compute + comm).max(io);
        (total, compute, comm, io)
    }

    /// Runs the simulation, reporting through `observer`.
    pub fn run(&self, observer: &mut dyn TrainObserver) -> RunResult {
        let cfg = &self.cfg;
        observer.on_run_start(cfg);

        let (step_time, compute, comm, _io) = self.step_time();
        let gpu_util = (compute / step_time).clamp(0.0, 1.0);
        // Communication keeps the GCD partially busy too.
        let comm_util = 0.3 * (comm / step_time).clamp(0.0, 1.0);
        let util = (gpu_util + comm_util).clamp(0.0, 1.0);

        let gcd = mi250x_gcd();
        let cpu = epyc_7a53();
        let overhead = node_overhead();
        let nodes = cfg.machine.nodes_for(cfg.gpus) as f64;
        let gpu_power = gcd.power_at(util);
        let node_power = cfg.gpus.min(cfg.machine.gpus_per_node) as f64 * gpu_power
            + cpu.power_at(0.35)
            + overhead.power_at(0.5);
        // Full nodes plus the partial node draw the same per-node power
        // (allocation is node-granular on Frontier).
        let total_power = node_power * nodes;

        // Sample power on a virtual clock through the telemetry
        // substrate, once per step (what the real library does with SMI).
        let clock = VirtualClock::manual();
        let sampler = PowerSampler::manual(Arc::clone(&clock));
        sampler.sample_now(total_power);

        let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
        let global_batch = cfg.global_batch() as u64;

        // Step-indexed loop: resume granularity is the optimizer step,
        // so a chained sequence of cutoff jobs replays the exact same
        // trajectory as one uncapped run.
        let start = cfg.resume_from.unwrap_or_default();
        let total_steps = steps_per_epoch * cfg.epochs as u64;
        let mut t = 0.0f64;
        let mut step: u64 = start.steps.min(total_steps);
        let mut samples: u64 = start.samples_seen;
        let mut loss = self
            .law
            .noisy_loss(cfg.model.params, (samples.max(1)) as f64, step);
        let mut completed = true;
        let mut epochs_completed = (step / steps_per_epoch.max(1)) as u32;

        while step < total_steps {
            let epoch = (step / steps_per_epoch) as u32;
            t += step_time;
            step += 1;
            samples += global_batch;
            loss = self.law.noisy_loss(cfg.model.params, samples as f64, step);

            clock.set_s(t);
            sampler.sample_now(total_power);

            observer.on_step(&StepEvent {
                step: step - 1,
                epoch,
                sim_time_s: t,
                step_time_s: step_time,
                loss,
                samples_seen: samples,
                gpu_power_w: gpu_power,
                gpu_util: util,
                samples_per_s: global_batch as f64 / step_time,
            });

            let epoch_boundary = step % steps_per_epoch == 0;
            if epoch_boundary {
                epochs_completed = epoch + 1;

                if cfg.exercise_collective {
                    // Real threaded ring all-reduce on a proxy gradient:
                    // the values must agree with the sequential
                    // reduction, or the simulated cluster is broken.
                    let ranks = cfg.gpus.min(8) as usize;
                    let proxy: Vec<Vec<f64>> = (0..ranks)
                        .map(|r| (0..512).map(|i| (r * 512 + i) as f64).collect())
                        .collect();
                    let expect = ddp::sequential_allreduce(&proxy);
                    let got = ddp::ring_allreduce(proxy);
                    assert_eq!(got.len(), expect.len());
                }

                observer.on_epoch_end(&EpochEvent {
                    epoch,
                    sim_time_s: t,
                    loss,
                    joules_so_far: sampler.joules_so_far(),
                });
            }

            if cfg.cutoff.exceeded(t) {
                completed = step >= total_steps;
                break;
            }
        }

        let (_, energy) = sampler.finish();
        let result = RunResult {
            final_loss: loss,
            energy_joules: energy.joules(),
            energy_kwh: energy.kwh(),
            walltime_s: t,
            steps: step,
            samples_seen: samples,
            epochs_completed,
            completed,
            mean_throughput: if t > 0.0 {
                (samples - start.samples_seen) as f64 / t
            } else {
                0.0
            },
            loss_energy_product: loss * energy.kwh(),
            checkpoint: Checkpoint { samples_seen: samples, steps: step, epochs_completed },
        };
        observer.on_run_end(&result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Architecture;

    fn tiny_cfg(gpus: u32) -> SimConfig {
        SimConfig {
            model: ModelConfig::sized(Architecture::SwinV2, 100_000_000),
            machine: MachineConfig::frontier_like(),
            dataset: DatasetSpec::tiny(10_000),
            gpus,
            per_gpu_batch: 32,
            epochs: 2,
            comm: DdpCommConfig::default(),
            cutoff: WalltimeCutoff::Unlimited,
            exercise_collective: false,
            phase: Phase::PreTraining,
            grad_accumulation: 1,
            resume_from: None,
        }
    }

    struct CountingObserver {
        steps: u64,
        epochs: u32,
        started: bool,
        ended: bool,
        last_loss: f64,
    }

    impl TrainObserver for CountingObserver {
        fn on_run_start(&mut self, _cfg: &SimConfig) {
            self.started = true;
        }
        fn on_step(&mut self, e: &StepEvent) {
            self.steps += 1;
            self.last_loss = e.loss;
        }
        fn on_epoch_end(&mut self, _e: &EpochEvent) {
            self.epochs += 1;
        }
        fn on_run_end(&mut self, _r: &RunResult) {
            self.ended = true;
        }
    }

    #[test]
    fn observer_sees_all_events() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let mut obs = CountingObserver {
            steps: 0,
            epochs: 0,
            started: false,
            ended: false,
            last_loss: 0.0,
        };
        let result = sim.run(&mut obs);
        assert!(obs.started && obs.ended);
        assert_eq!(obs.epochs, 2);
        assert_eq!(obs.steps, result.steps);
        assert_eq!(obs.last_loss, result.final_loss);
        assert!(result.completed);
    }

    #[test]
    fn loss_decreases_over_training() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let r1 = sim.run(&mut NullObserver);
        let mut long_cfg = tiny_cfg(8);
        long_cfg.epochs = 20;
        let r2 = TrainingSimulation::new(long_cfg).unwrap().run(&mut NullObserver);
        assert!(r2.final_loss < r1.final_loss);
    }

    #[test]
    fn more_gpus_finish_faster_but_burn_more_power() {
        let r8 = TrainingSimulation::new(tiny_cfg(8)).unwrap().run(&mut NullObserver);
        let r64 = TrainingSimulation::new(tiny_cfg(64)).unwrap().run(&mut NullObserver);
        assert!(r64.walltime_s < r8.walltime_s, "scale-out reduces walltime");
        assert!(r64.mean_throughput > r8.mean_throughput);
    }

    #[test]
    fn walltime_cutoff_marks_incomplete() {
        let mut cfg = tiny_cfg(8);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 1_400_000_000);
        cfg.dataset = DatasetSpec::modis();
        cfg.cutoff = WalltimeCutoff::Seconds(60.0);
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(!r.completed);
        assert!(r.walltime_s >= 60.0);
        assert_eq!(r.epochs_completed, 0);
    }

    #[test]
    fn energy_matches_power_times_time() {
        let sim = TrainingSimulation::new(tiny_cfg(8)).unwrap();
        let r = sim.run(&mut NullObserver);
        // Constant power per step → energy ≈ mean power × walltime.
        let implied_power = r.energy_joules / r.walltime_s;
        assert!(
            implied_power > 1_000.0 && implied_power < 4_000.0,
            "one-node draw {implied_power} W"
        );
        assert!((r.loss_energy_product - r.final_loss * r.energy_kwh).abs() < 1e-12);
    }

    #[test]
    fn oom_configs_rejected() {
        let mut cfg = tiny_cfg(8);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 1_400_000_000);
        cfg.per_gpu_batch = 10_000; // activation blow-up
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = tiny_cfg(0);
        cfg.gpus = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
        let mut cfg = tiny_cfg(8);
        cfg.per_gpu_batch = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
        let mut cfg = tiny_cfg(8);
        cfg.epochs = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn collective_exercise_mode_runs() {
        let mut cfg = tiny_cfg(8);
        cfg.dataset = DatasetSpec::tiny(500);
        cfg.epochs = 1;
        cfg.exercise_collective = true;
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(r.completed);
    }

    #[test]
    fn step_time_decomposition_is_consistent() {
        let sim = TrainingSimulation::new(tiny_cfg(16)).unwrap();
        let (total, compute, comm, io) = sim.step_time();
        assert!(total >= compute);
        assert!(total >= io);
        assert!(compute > 0.0 && comm >= 0.0 && io > 0.0);
        assert!((total - (compute + comm).max(io)).abs() < 1e-15);
    }

    #[test]
    fn finetuning_is_cheaper_than_pretraining() {
        let pre = tiny_cfg(8);
        let (pre_total, pre_compute, ..) =
            TrainingSimulation::new(pre.clone()).unwrap().step_time();

        // Freeze everything but the head: backward nearly free, but the
        // full (unmasked for MAE: Swin unaffected) forward remains.
        let ft = pre.clone().into_finetune(0.99, 1_000);
        let (ft_total, ft_compute, ..) = TrainingSimulation::new(ft).unwrap().step_time();
        assert!(ft_compute < pre_compute, "frozen backward must be cheaper");
        let _ = (pre_total, ft_total);

        // Fully trainable "fine-tune" on SwinV2 costs the same as
        // pre-training (no masking difference for Swin).
        let full = tiny_cfg(8).into_finetune(0.0, 1_000);
        let (_, full_compute, ..) = TrainingSimulation::new(full).unwrap().step_time();
        assert!((full_compute - pre_compute).abs() / pre_compute < 1e-9);
    }

    #[test]
    fn finetune_gradient_traffic_shrinks() {
        use crate::model::ModelConfig;
        let m = ModelConfig::sized(Architecture::SwinV2, 1_000_000_000);
        assert_eq!(m.gradient_bytes(), 4_000_000_000);
        assert_eq!(m.gradient_bytes_finetune(1.0), 0);
        assert_eq!(m.gradient_bytes_finetune(0.75), 1_000_000_000);
        // Comm time drops accordingly.
        let mut cfg = tiny_cfg(64);
        cfg.model = ModelConfig::sized(Architecture::SwinV2, 600_000_000);
        let (_, _, pre_comm, _) = TrainingSimulation::new(cfg.clone()).unwrap().step_time();
        let ft = cfg.into_finetune(0.95, 1_000);
        let (_, _, ft_comm, _) = TrainingSimulation::new(ft).unwrap().step_time();
        assert!(ft_comm < pre_comm / 2.0);
    }

    #[test]
    fn finetune_runs_complete() {
        let cfg = tiny_cfg(8).into_finetune(0.98, 2_000);
        let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert!(r.completed);
        assert!(r.samples_seen >= 2_000);
    }

    #[test]
    fn gradient_accumulation_amortizes_communication() {
        // Same samples per optimizer step (batch 32×4 vs 128×1), same
        // gradient volume — but 4× fewer all-reduces per sample.
        let mut accum = tiny_cfg(64);
        accum.per_gpu_batch = 8;
        accum.grad_accumulation = 4;
        let mut plain = tiny_cfg(64);
        plain.per_gpu_batch = 32;
        plain.grad_accumulation = 1;
        assert_eq!(accum.global_batch(), plain.global_batch());

        let (at, ac, acomm, _) = TrainingSimulation::new(accum).unwrap().step_time();
        let (pt, pc, pcomm, _) = TrainingSimulation::new(plain).unwrap().step_time();
        assert!((ac - pc).abs() < 1e-12, "same compute per optimizer step");
        assert!((acomm - pcomm).abs() < 1e-12, "same comm per optimizer step");
        let _ = (at, pt);

        // Against the *same micro-batch*, accumulation reduces exposed
        // comm per sample.
        let mut micro = tiny_cfg(64);
        micro.per_gpu_batch = 8;
        micro.grad_accumulation = 1;
        let (mt, _, mcomm, _) = TrainingSimulation::new(micro.clone()).unwrap().step_time();
        let per_sample_micro = (mt) / (8.0 * 64.0);
        let mut micro4 = micro;
        micro4.grad_accumulation = 4;
        let (m4t, _, m4comm, _) = TrainingSimulation::new(micro4).unwrap().step_time();
        let per_sample_accum = m4t / (8.0 * 4.0 * 64.0);
        assert!(per_sample_accum < per_sample_micro, "accumulation amortizes comm");
        assert!((m4comm - mcomm).abs() < 1e-12);
    }

    #[test]
    fn zero_accumulation_rejected() {
        let mut cfg = tiny_cfg(8);
        cfg.grad_accumulation = 0;
        assert!(TrainingSimulation::new(cfg).is_err());
    }

    #[test]
    fn resumed_chain_matches_single_run() {
        // One uncapped run...
        let full = TrainingSimulation::new(tiny_cfg(8)).unwrap().run(&mut NullObserver);
        // ...equals a chain of runs resumed epoch by epoch.
        let mut ckpt = None;
        let mut last = None;
        loop {
            let mut cfg = tiny_cfg(8);
            cfg.resume_from = ckpt;
            // One epoch of walltime per "job".
            let (step_time, ..) = TrainingSimulation::new(cfg.clone()).unwrap().step_time();
            let steps_per_epoch = cfg.dataset.steps_per_epoch(cfg.global_batch());
            cfg.cutoff = WalltimeCutoff::Seconds(step_time * steps_per_epoch as f64 + 1e-6);
            let r = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
            let done = r.completed;
            ckpt = Some(r.checkpoint);
            last = Some(r);
            if done {
                break;
            }
        }
        let chained = last.unwrap();
        assert_eq!(chained.final_loss, full.final_loss, "same loss trajectory");
        assert_eq!(chained.samples_seen, full.samples_seen);
        assert_eq!(chained.steps, full.steps);
    }

    #[test]
    fn resume_skips_completed_epochs() {
        let full = TrainingSimulation::new(tiny_cfg(8)).unwrap().run(&mut NullObserver);
        let mut cfg = tiny_cfg(8);
        cfg.resume_from = Some(Checkpoint {
            samples_seen: full.samples_seen,
            steps: full.steps,
            epochs_completed: cfg.epochs,
        });
        let resumed = TrainingSimulation::new(cfg).unwrap().run(&mut NullObserver);
        assert_eq!(resumed.steps, full.steps, "nothing left to do");
        assert_eq!(resumed.walltime_s, 0.0);
        assert!(resumed.completed);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = TrainingSimulation::new(tiny_cfg(8)).unwrap().run(&mut NullObserver);
        let b = TrainingSimulation::new(tiny_cfg(8)).unwrap().run(&mut NullObserver);
        assert_eq!(a, b);
    }
}
