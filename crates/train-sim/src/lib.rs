//! # train-sim
//!
//! A deterministic distributed-training simulator standing in for the
//! paper's PyTorch/Frontier substrate.
//!
//! The yProv4ML use case (§5) trains two foundation-model architectures
//! (a masked autoencoder with a ViT backbone, and a Swin Transformer V2)
//! at 100 M – 1.4 B parameters on 8 – 128 GPUs of Frontier with DDP, and
//! studies the loss × energy trade-off under a 2-hour walltime. This
//! crate reproduces every moving part of that study as a model:
//!
//! * [`model`] — the architecture zoo with parameter counts and
//!   per-sample FLOP costs;
//! * [`machine`] — a Frontier-like machine (8 GCDs/node, intra/inter
//!   node interconnect, per-GCD sustained throughput);
//! * [`dataset`] — the MODIS-like workload (800 k patches of
//!   128×128×6);
//! * [`comm`] — ring/hierarchical all-reduce cost models with DDP
//!   bucketing and compute/communication overlap;
//! * [`scaling_law`] — Chinchilla-style loss curves `L(N, D)` with
//!   per-architecture constants;
//! * [`ddp`] — a *real* multi-threaded data-parallel executor (one
//!   thread per simulated GPU, shared-memory ring all-reduce) used to
//!   exercise concurrent logging paths;
//! * [`fault`] — seeded, deterministic fault injection (GPU failures,
//!   stragglers, transient all-reduce errors) with checkpoint-restart
//!   driven by [`sim::run_with_recovery`];
//! * [`sim`] — the orchestrator that walks simulated time step by step,
//!   reporting losses, power and progress through an observer trait
//!   (the hook the provenance library attaches to).
//!
//! Nothing here trains a real network: the observable behaviour
//! (walltime vs. GPU count, loss vs. model/data size, energy vs. both)
//! follows published cost and scaling models, which is exactly the
//! signal the provenance layer exists to record.

pub mod comm;
pub mod dataset;
pub mod ddp;
pub mod fault;
pub mod machine;
pub mod model;
pub mod scaling_law;
pub mod sim;

pub use dataset::DatasetSpec;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use machine::MachineConfig;
pub use model::{Architecture, ModelConfig};
pub use sim::{
    run_with_recovery, RecoveryOutcome, RunResult, SimConfig, StepEvent, TrainObserver,
    TrainingSimulation, WalltimeCutoff,
};
