//! The machine model: a Frontier-like system.
//!
//! Frontier (OLCF): 9,402 nodes, each with one 64-core EPYC CPU and four
//! MI250X modules = 8 Graphics Compute Dies, which the scheduler exposes
//! as 8 GPUs. GCDs within a node talk over Infinity Fabric; nodes talk
//! over a Slingshot-11 network (4 × 25 GB/s NICs per node).

use serde::{Deserialize, Serialize};

/// Static description of the machine a job runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Machine name in provenance records.
    pub name: String,
    /// GPUs (GCDs) per node.
    pub gpus_per_node: u32,
    /// Sustained dense-math throughput per GCD in FLOP/s (before model
    /// FLOPs utilization is applied).
    pub gpu_peak_flops: f64,
    /// Accelerator memory per GCD in bytes.
    pub gpu_memory_bytes: u64,
    /// Point-to-point bandwidth between GCDs in one node, bytes/s.
    pub intra_node_bw: f64,
    /// Per-hop latency inside a node, seconds.
    pub intra_node_latency: f64,
    /// Node injection bandwidth to the network, bytes/s.
    pub inter_node_bw: f64,
    /// Per-hop latency between nodes, seconds.
    pub inter_node_latency: f64,
    /// Host filesystem read bandwidth per node, bytes/s (data loading).
    pub io_bw: f64,
}

impl MachineConfig {
    /// The Frontier-like preset used throughout the reproduction.
    ///
    /// `gpu_peak_flops` is the MI250X GCD's usable mixed-precision
    /// matrix throughput (≈ 95 TFLOP/s per GCD); model-level efficiency
    /// (MFU) is applied separately per architecture.
    pub fn frontier_like() -> Self {
        MachineConfig {
            name: "frontier-like".into(),
            gpus_per_node: 8,
            gpu_peak_flops: 95.0e12,
            gpu_memory_bytes: 64 * 1024 * 1024 * 1024,
            intra_node_bw: 200.0e9,
            intra_node_latency: 2.0e-6,
            inter_node_bw: 100.0e9, // 4 NICs × 25 GB/s
            inter_node_latency: 8.0e-6,
            io_bw: 5.0e9,
        }
    }

    /// A deliberately small "workstation" preset for tests and examples.
    pub fn workstation() -> Self {
        MachineConfig {
            name: "workstation".into(),
            gpus_per_node: 2,
            gpu_peak_flops: 20.0e12,
            gpu_memory_bytes: 24 * 1024 * 1024 * 1024,
            intra_node_bw: 50.0e9,
            intra_node_latency: 5.0e-6,
            inter_node_bw: 12.5e9,
            inter_node_latency: 20.0e-6,
            io_bw: 2.0e9,
        }
    }

    /// Nodes needed for `gpus` GPUs (ceiling division).
    pub fn nodes_for(&self, gpus: u32) -> u32 {
        gpus.div_ceil(self.gpus_per_node)
    }

    /// True when a job of `gpus` GPUs spans more than one node.
    pub fn is_multi_node(&self, gpus: u32) -> bool {
        gpus > self.gpus_per_node
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.gpus_per_node == 0 {
            return Err("gpus_per_node must be positive".into());
        }
        for (label, v) in [
            ("gpu_peak_flops", self.gpu_peak_flops),
            ("intra_node_bw", self.intra_node_bw),
            ("inter_node_bw", self.inter_node_bw),
            ("io_bw", self.io_bw),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{label} must be positive, got {v}"));
            }
        }
        if self.intra_node_bw < self.inter_node_bw {
            return Err("intra-node links should not be slower than the network".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_preset_is_valid() {
        let m = MachineConfig::frontier_like();
        m.validate().unwrap();
        assert_eq!(m.gpus_per_node, 8);
    }

    #[test]
    fn node_counts() {
        let m = MachineConfig::frontier_like();
        assert_eq!(m.nodes_for(8), 1);
        assert_eq!(m.nodes_for(9), 2);
        assert_eq!(m.nodes_for(128), 16);
        assert!(!m.is_multi_node(8));
        assert!(m.is_multi_node(16));
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut m = MachineConfig::frontier_like();
        m.gpus_per_node = 0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::frontier_like();
        m.gpu_peak_flops = -1.0;
        assert!(m.validate().is_err());

        let mut m = MachineConfig::frontier_like();
        m.intra_node_bw = 1.0;
        assert!(m.validate().is_err(), "intra slower than inter");
    }

    #[test]
    fn workstation_is_smaller_than_frontier() {
        let w = MachineConfig::workstation();
        let f = MachineConfig::frontier_like();
        w.validate().unwrap();
        assert!(w.gpu_peak_flops < f.gpu_peak_flops);
        assert!(w.gpus_per_node < f.gpus_per_node);
    }
}
