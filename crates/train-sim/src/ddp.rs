//! A real multi-threaded data-parallel executor.
//!
//! The cost models in [`crate::comm`] predict *time*; this module
//! actually *runs* the collective, with one OS thread per simulated GPU
//! and a shared-memory ring all-reduce, so the concurrent code paths the
//! provenance collector must survive (simultaneous metric logging from
//! every rank) are exercised for real.
//!
//! The ring algorithm is the textbook two-phase form: `p−1` reduce-
//! scatter steps followed by `p−1` all-gather steps, each rank owning
//! one chunk of the gradient.

use parking_lot::Mutex;
use std::sync::{Arc, Barrier};

/// Sums `shards` element-wise across ranks with a threaded ring
/// all-reduce and returns every rank's (identical) reduced copy.
///
/// All shards must have equal length. One thread per rank is spawned;
/// ranks exchange chunks through per-rank mailboxes and synchronize with
/// a barrier per ring step, mirroring NCCL's communication structure.
///
/// # Panics
/// Panics when `shards` is empty or lengths differ.
pub fn ring_allreduce(shards: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let p = shards.len();
    assert!(p > 0, "at least one rank required");
    let n = shards[0].len();
    assert!(
        shards.iter().all(|s| s.len() == n),
        "all shards must have equal length"
    );
    if p == 1 {
        return shards;
    }
    if n == 0 {
        return shards;
    }

    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    let starts: Vec<usize> = (0..=p).map(|c| c * n / p).collect();

    // mailbox[r] is the chunk most recently sent *to* rank r.
    let mailboxes: Arc<Vec<Mutex<Vec<f64>>>> =
        Arc::new((0..p).map(|_| Mutex::new(Vec::new())).collect());
    let barrier = Arc::new(Barrier::new(p));
    let results: Arc<Vec<Mutex<Vec<f64>>>> =
        Arc::new((0..p).map(|_| Mutex::new(Vec::new())).collect());

    std::thread::scope(|scope| {
        for (rank, mut local) in shards.into_iter().enumerate() {
            let mailboxes = Arc::clone(&mailboxes);
            let barrier = Arc::clone(&barrier);
            let results = Arc::clone(&results);
            let starts = starts.clone();
            scope.spawn(move || {
                let next = (rank + 1) % p;

                // Phase 1: reduce-scatter. After step s, rank r has the
                // running sum of chunk (r - s - 1 + p) mod p.
                for s in 0..p - 1 {
                    let send_chunk = (rank + p - s) % p;
                    let (a, b) = (starts[send_chunk], starts[send_chunk + 1]);
                    *mailboxes[next].lock() = local[a..b].to_vec();
                    barrier.wait();
                    let incoming = std::mem::take(&mut *mailboxes[rank].lock());
                    let recv_chunk = (rank + p - s - 1) % p;
                    let (a, b) = (starts[recv_chunk], starts[recv_chunk + 1]);
                    for (dst, src) in local[a..b].iter_mut().zip(&incoming) {
                        *dst += src;
                    }
                    barrier.wait();
                }

                // Phase 2: all-gather. Rank r owns the fully reduced
                // chunk (r + 1) mod p and circulates it.
                for s in 0..p - 1 {
                    let send_chunk = (rank + 1 + p - s) % p;
                    let (a, b) = (starts[send_chunk], starts[send_chunk + 1]);
                    *mailboxes[next].lock() = local[a..b].to_vec();
                    barrier.wait();
                    let incoming = std::mem::take(&mut *mailboxes[rank].lock());
                    let recv_chunk = (rank + p - s) % p;
                    let (a, b) = (starts[recv_chunk], starts[recv_chunk + 1]);
                    local[a..b].copy_from_slice(&incoming);
                    barrier.wait();
                }

                *results[rank].lock() = local;
            });
        }
    });

    Arc::try_unwrap(results)
        .expect("threads joined")
        .into_iter()
        .map(|m| m.into_inner())
        .collect()
}

/// Runs the ring all-reduce under injected transient failures: each of
/// the `failed_attempts` aborted collectives performs (and discards) a
/// full ring pass — modeling NCCL's abort-and-retry, where the time is
/// spent even though the result is thrown away — before the surviving
/// attempt produces the reduction. Returns the reduced shards and the
/// number of attempts actually executed (`failed_attempts + 1`).
pub fn ring_allreduce_with_retry(
    shards: Vec<Vec<f64>>,
    failed_attempts: u32,
) -> (Vec<Vec<f64>>, u32) {
    for _ in 0..failed_attempts {
        let _ = ring_allreduce(shards.clone());
    }
    (ring_allreduce(shards), failed_attempts + 1)
}

/// Reference all-reduce: sequential element-wise sum, replicated.
pub fn sequential_allreduce(shards: &[Vec<f64>]) -> Vec<Vec<f64>> {
    assert!(!shards.is_empty());
    let n = shards[0].len();
    let mut sum = vec![0.0f64; n];
    for shard in shards {
        for (dst, src) in sum.iter_mut().zip(shard) {
            *dst += src;
        }
    }
    vec![sum; shards.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(p: usize, n: usize) -> Vec<Vec<f64>> {
        (0..p)
            .map(|r| (0..n).map(|i| (r * n + i) as f64 * 0.5 + 1.0).collect())
            .collect()
    }

    /// Ring and sequential all-reduce agree (floating-point order is the
    /// ring's — compare with tolerance).
    fn assert_close(a: &[Vec<f64>], b: &[Vec<f64>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.len(), y.len());
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()), "{u} vs {v}");
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let s = shards(1, 100);
        assert_eq!(ring_allreduce(s.clone()), s);
    }

    #[test]
    fn matches_sequential_for_various_sizes() {
        for p in [2usize, 3, 4, 7, 8] {
            for n in [1usize, 2, 5, 64, 1000, 1003] {
                let s = shards(p, n);
                let expect = sequential_allreduce(&s);
                let got = ring_allreduce(s);
                assert_close(&got, &expect);
            }
        }
    }

    #[test]
    fn all_ranks_get_identical_results() {
        let got = ring_allreduce(shards(8, 4096));
        for r in 1..got.len() {
            assert_eq!(got[0], got[r], "rank {r} differs from rank 0");
        }
    }

    #[test]
    fn empty_vectors_are_fine() {
        let s = vec![vec![]; 4];
        let got = ring_allreduce(s);
        assert!(got.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn short_vectors_with_many_ranks() {
        // n < p forces empty chunks for some ranks.
        let s = shards(8, 3);
        let expect = sequential_allreduce(&s);
        assert_close(&ring_allreduce(s), &expect);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        ring_allreduce(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn retry_wrapper_matches_plain_reduce() {
        let s = shards(4, 257);
        let expect = sequential_allreduce(&s);
        let (got, attempts) = ring_allreduce_with_retry(s.clone(), 2);
        assert_eq!(attempts, 3);
        assert_close(&got, &expect);
        let (got0, attempts0) = ring_allreduce_with_retry(s, 0);
        assert_eq!(attempts0, 1);
        assert_close(&got0, &expect);
    }

    #[test]
    fn repeated_steps_are_stable() {
        // Simulates several DDP steps reusing the executor.
        let mut grads = shards(4, 257);
        for _ in 0..5 {
            let expect = sequential_allreduce(&grads);
            grads = ring_allreduce(grads);
            assert_close(&grads, &expect);
        }
    }
}
