//! Property tests on simulator invariants: physical sanity must hold
//! for every reachable configuration, not just the paper's corners.

use proptest::prelude::*;
use train_sim::ddp::{ring_allreduce, sequential_allreduce};
use train_sim::model::{Architecture, ModelConfig};
use train_sim::sim::{NullObserver, Phase, SimConfig, TrainingSimulation, WalltimeCutoff};
use train_sim::{DatasetSpec, MachineConfig};

fn arb_arch() -> impl Strategy<Value = Architecture> {
    prop_oneof![Just(Architecture::MaeVit), Just(Architecture::SwinV2)]
}

fn config(arch: Architecture, params: u64, gpus: u32, samples: u64, batch: u32) -> SimConfig {
    SimConfig {
        model: ModelConfig::sized(arch, params),
        machine: MachineConfig::frontier_like(),
        dataset: DatasetSpec::tiny(samples),
        gpus,
        per_gpu_batch: batch,
        epochs: 2,
        comm: Default::default(),
        cutoff: WalltimeCutoff::Unlimited,
        exercise_collective: false,
        phase: Phase::PreTraining,
        grad_accumulation: 1,
        resume_from: None,
        faults: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn runs_are_physically_sane(
        arch in arb_arch(),
        params in 50_000_000u64..2_000_000_000,
        gpus in 1u32..256,
        samples in 100u64..20_000,
        batch in 1u32..64,
    ) {
        let cfg = config(arch, params, gpus, samples, batch);
        let Ok(sim) = TrainingSimulation::new(cfg) else {
            // Some corners legitimately fail validation (OOM); fine.
            return Ok(());
        };
        let r = sim.run(&mut NullObserver);
        prop_assert!(r.walltime_s > 0.0 && r.walltime_s.is_finite());
        prop_assert!(r.energy_joules > 0.0 && r.energy_joules.is_finite());
        prop_assert!(r.final_loss > 0.0 && r.final_loss.is_finite());
        prop_assert!(r.samples_seen >= samples, "each epoch covers the dataset");
        prop_assert!(r.completed);
        prop_assert!(r.mean_throughput > 0.0);
        // Power sanity: implied draw per node within the hardware budget.
        let nodes = cfg_nodes(gpus);
        let watts = r.energy_joules / r.walltime_s / nodes as f64;
        prop_assert!(watts > 300.0 && watts < 4_000.0, "node draw {watts} W");
    }

    #[test]
    fn more_gpus_never_slows_a_run(
        arch in arb_arch(),
        params in 50_000_000u64..1_000_000_000,
        samples in 2_000u64..20_000,
    ) {
        // Same work, doubling GPUs: walltime must not increase (the
        // comm overhead never exceeds the halved compute in this model).
        let mut prev = f64::INFINITY;
        for gpus in [8u32, 16, 32, 64] {
            let r = TrainingSimulation::new(config(arch, params, gpus, samples, 16))
                .unwrap()
                .run(&mut NullObserver);
            prop_assert!(
                r.walltime_s <= prev * 1.001,
                "walltime grew from {prev} to {} at {gpus} GPUs", r.walltime_s
            );
            prev = r.walltime_s;
        }
    }

    #[test]
    fn loss_never_increases_with_more_data(
        arch in arb_arch(),
        params in 50_000_000u64..1_000_000_000,
    ) {
        let mut prev = f64::INFINITY;
        for samples in [500u64, 2_000, 8_000, 32_000] {
            let r = TrainingSimulation::new(config(arch, params, 8, samples, 16))
                .unwrap()
                .run(&mut NullObserver);
            // The ripple can wobble a little; the trend must hold.
            prop_assert!(
                r.final_loss <= prev * 1.05,
                "loss rose from {prev} to {} at {samples} samples", r.final_loss
            );
            prev = r.final_loss;
        }
    }

    #[test]
    fn cutoff_never_yields_more_walltime_than_unlimited(
        arch in arb_arch(),
        params in 200_000_000u64..2_000_000_000,
        budget in 10.0f64..1_000.0,
    ) {
        let mut unlimited = config(arch, params, 8, 50_000, 32);
        unlimited.epochs = 3;
        let full = TrainingSimulation::new(unlimited.clone()).unwrap().run(&mut NullObserver);
        let mut capped_cfg = unlimited;
        capped_cfg.cutoff = WalltimeCutoff::Seconds(budget);
        let capped = TrainingSimulation::new(capped_cfg).unwrap().run(&mut NullObserver);
        prop_assert!(capped.walltime_s <= full.walltime_s + 1e-9);
        if capped.walltime_s < full.walltime_s {
            prop_assert!(!capped.completed);
        }
        prop_assert!(capped.energy_joules <= full.energy_joules + 1e-6);
    }

    #[test]
    fn ring_allreduce_matches_sequential(
        ranks in 1usize..9,
        n in 0usize..300,
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let shards: Vec<Vec<f64>> = (0..ranks)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        ((x >> 16) % 10_000) as f64 / 100.0 - 50.0
                    })
                    .collect()
            })
            .collect();
        let expect = sequential_allreduce(&shards);
        let got = ring_allreduce(shards);
        for (g, e) in got.iter().zip(&expect) {
            for (a, b) in g.iter().zip(e) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
            }
        }
    }
}

fn cfg_nodes(gpus: u32) -> u32 {
    MachineConfig::frontier_like().nodes_for(gpus)
}
