//! Multi-node clustering: consistent-hash placement, hash-chain
//! streaming replication, and client-arbitrated failover.
//!
//! A cluster is N independent `yprov-service` instances, each running
//! the same store/HTTP stack. Three pieces tie them together:
//!
//! * **[`Ring`]** — a consistent-hash ring with virtual nodes. Both the
//!   client layer and each server derive document placement from the
//!   same node-id set, so no coordination service is needed: the key's
//!   first ring node is its write primary, the next `replication - 1`
//!   distinct nodes hold its copies.
//! * **[`Replicator`]** — the primary side of the streaming protocol.
//!   After a node commits an upload to its own ledger, it ships the
//!   new chain entry *plus the canonical document bytes the entry's
//!   digest commits to* as one frame (`POST
//!   /api/v0/replication/frames`) to the key's replica set. The
//!   replica verifies the frame against its durable per-source cursor
//!   chain before applying ([`crate::store::DocumentStore::apply_replicated`]);
//!   a rejection carries the index to re-sync from and the primary
//!   re-streams its log from that divergence point. Frames from one
//!   chain are pushed serially, so a replica sees each source's
//!   entries in order (and self-heals through re-sync when it does
//!   not).
//! * **[`ClusterClient`]** — the thin routing layer over the existing
//!   REST verbs. Membership is health-probe-driven: a node that stops
//!   answering `/healthz` (or a request) drops out of the client's
//!   ring, and the key's next surviving ring node takes over.
//!   *Promotion is gated on verification*: before a write fails over,
//!   the candidate must pass `GET /api/v0/ledger/verify` — a replica
//!   with a broken or tampered chain is never promoted.
//!
//! [`ReplicationChaos`] exposes the frame path's fault-injection knobs
//! (drop, tear, duplicate, delay) to the cluster chaos harness; the
//! handles are shared atomics so a test can flip them mid-run.

use crate::client::{Client, Response, RetryPolicy};
use crate::ledger::LedgerEntry;
use crate::store::{DocumentStore, Upload};
use parking_lot::Mutex;
use serde_json::json;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Virtual nodes per member: enough that removing one node moves only
/// ~1/N of the keyspace, small enough that ring construction stays
/// trivially cheap.
const VNODES: usize = 64;

/// A cluster member: stable identity plus where to reach it. The id is
/// what hashes onto the ring and what stamps replication frames, so it
/// must stay the same across restarts even if the address changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Stable node identity (`"node-a"`, ...).
    pub id: String,
    /// The node's HTTP address.
    pub addr: SocketAddr,
}

impl NodeSpec {
    /// A member named `id` at `addr`.
    pub fn new(id: impl Into<String>, addr: SocketAddr) -> NodeSpec {
        NodeSpec {
            id: id.into(),
            addr,
        }
    }
}

fn ring_point(bytes: &[u8]) -> u64 {
    let digest = yprov4ml::hash::sha256(bytes);
    u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
}

/// A consistent-hash ring with virtual nodes. Placement depends only
/// on the member-id set, so every participant that agrees on
/// membership agrees on placement.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, index into nodes)`, sorted by point.
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
}

impl Ring {
    /// A ring over the given member ids (duplicates collapse).
    pub fn new<I, S>(members: I) -> Ring
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut nodes: Vec<String> = members.into_iter().map(Into::into).collect();
        nodes.sort();
        nodes.dedup();
        let mut points = Vec::with_capacity(nodes.len() * VNODES);
        for (i, node) in nodes.iter().enumerate() {
            for v in 0..VNODES {
                points.push((ring_point(format!("{node}\u{0}{v}").as_bytes()), i));
            }
        }
        points.sort_unstable();
        Ring { points, nodes }
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The member ids, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The distinct nodes responsible for `key`, clockwise from its
    /// ring position: the primary first, then the replicas. At most
    /// `n` (clamped to the member count).
    pub fn replicas_for(&self, key: &str, n: usize) -> Vec<&str> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let target = ring_point(key.as_bytes());
        let start = self.points.partition_point(|(p, _)| *p < target);
        let want = n.min(self.nodes.len());
        let mut out: Vec<&str> = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            let name = self.nodes[node].as_str();
            if !out.contains(&name) {
                out.push(name);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The key's write primary (`None` on an empty ring).
    pub fn primary_for(&self, key: &str) -> Option<&str> {
        self.replicas_for(key, 1).into_iter().next()
    }
}

// ---------------------------------------------------------------------------
// Frame wire format
// ---------------------------------------------------------------------------

pub(crate) fn entry_to_json(e: &LedgerEntry) -> serde_json::Value {
    json!({
        "index": e.index,
        "document_id": e.document_id,
        "document_digest": e.document_digest,
        "prev_hash": e.prev_hash,
        "entry_hash": e.entry_hash,
    })
}

pub(crate) fn entry_from_json(v: &serde_json::Value) -> Option<LedgerEntry> {
    Some(LedgerEntry {
        index: v.get("index")?.as_u64()?,
        document_id: v.get("document_id")?.as_str()?.to_string(),
        document_digest: v.get("document_digest")?.as_str()?.to_string(),
        prev_hash: v.get("prev_hash")?.as_str()?.to_string(),
        entry_hash: v.get("entry_hash")?.as_str()?.to_string(),
    })
}

/// One replication frame: a chain entry from `source`'s ledger plus
/// (usually) the canonical document bytes its digest commits to.
/// `document` is `null` for re-synced entries whose bytes were
/// superseded by a later upload of the same id.
pub fn frame_body(source: &str, entry: &LedgerEntry, doc_json: Option<&str>) -> String {
    json!({
        "source": source,
        "entry": entry_to_json(entry),
        "document": doc_json,
    })
    .to_string()
}

// ---------------------------------------------------------------------------
// Chaos knobs
// ---------------------------------------------------------------------------

/// Fault injection on the outgoing frame path. Cloning shares the
/// underlying knobs, so a chaos harness keeps one handle and flips
/// faults while the server runs; all knobs default to off.
#[derive(Debug, Clone, Default)]
pub struct ReplicationChaos {
    inner: Arc<ChaosInner>,
}

#[derive(Debug, Default)]
struct ChaosInner {
    drop_frames: AtomicU32,
    tear_frames: AtomicU32,
    duplicate_frames: AtomicBool,
    delay_ms: AtomicU64,
}

impl ReplicationChaos {
    /// No injected faults.
    pub fn new() -> ReplicationChaos {
        ReplicationChaos::default()
    }

    /// Drops the next `n` outgoing frames on the floor — a partition
    /// between the primary and its replicas.
    pub fn drop_next_frames(&self, n: u32) {
        self.inner.drop_frames.store(n, Ordering::Release);
    }

    /// Corrupts the next `n` outgoing frames by truncating the document
    /// bytes mid-flight; the replica must reject the torn frame (digest
    /// mismatch) and recover through re-sync.
    pub fn tear_next_frames(&self, n: u32) {
        self.inner.tear_frames.store(n, Ordering::Release);
    }

    /// Delivers every frame twice; the replica must absorb the second
    /// copy idempotently.
    pub fn duplicate_frames(&self, on: bool) {
        self.inner.duplicate_frames.store(on, Ordering::Release);
    }

    /// Sleeps this long before each frame send (delayed frames).
    pub fn delay_frames(&self, delay: Duration) {
        self.inner
            .delay_ms
            .store(delay.as_millis() as u64, Ordering::Release);
    }

    /// Decrement-if-positive, shared with the server's upload chaos.
    fn take(counter: &AtomicU32) -> bool {
        counter
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok()
    }
}

/// Truncates `s` to roughly half its bytes, respecting char boundaries.
fn tear(s: &str) -> &str {
    let mut cut = s.len() / 2;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    &s[..cut]
}

// ---------------------------------------------------------------------------
// Server-side: cluster config + the primary's replicator
// ---------------------------------------------------------------------------

/// Cluster membership and replication tunables for one server.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's stable identity — the `source` stamped on every
    /// frame it streams and its name on the placement ring.
    pub node_id: String,
    /// The *other* cluster members.
    pub peers: Vec<NodeSpec>,
    /// Total copies of each document, the local one included; clamped
    /// to the cluster size.
    pub replication: usize,
    /// Replica confirmations (beyond the local commit) an upload needs
    /// before it is acknowledged. 1 keeps the cluster writable with a
    /// peer down; raise it to trade availability for durability.
    pub required_acks: usize,
    /// Retry policy for frame pushes. Keep attempts low — a dead peer
    /// is paid for on every upload until the client's ring drops it.
    pub push_policy: RetryPolicy,
    /// Fault injection on the outgoing frame path (off by default).
    pub chaos: ReplicationChaos,
}

impl ClusterConfig {
    /// A config for `node_id` with the given peers: replication factor
    /// 2, one required ack, default push policy, no chaos.
    pub fn new(node_id: impl Into<String>, peers: Vec<NodeSpec>) -> ClusterConfig {
        ClusterConfig {
            node_id: node_id.into(),
            peers,
            replication: 2,
            required_acks: 1,
            push_policy: RetryPolicy::default(),
            chaos: ReplicationChaos::default(),
        }
    }
}

/// How one upload's replication went.
#[derive(Debug, Clone)]
pub struct ReplicationOutcome {
    /// Replicas that confirmed the frame.
    pub confirmed: usize,
    /// Confirmations required to acknowledge the upload.
    pub required: usize,
    /// Per-peer failure detail, empty when everything confirmed.
    pub errors: Vec<String>,
}

impl ReplicationOutcome {
    /// True when enough replicas confirmed to acknowledge the write.
    pub fn acked(&self) -> bool {
        self.confirmed >= self.required
    }
}

/// The primary side of the streaming protocol: owned by a
/// cluster-configured server, invoked synchronously after every local
/// upload commit.
pub struct Replicator {
    cfg: ClusterConfig,
    ring: Ring,
    pushes: Arc<obs::Counter>,
    push_failures: Arc<obs::Counter>,
    /// Frames from this node's chain must reach each replica in order;
    /// pushes are serialized. Out-of-order delivery that slips through
    /// anyway (a push racing a ledger append) is rejected by the
    /// replica as a gap and healed by re-sync.
    push_lock: Mutex<()>,
    /// One pooled client per peer: frame pushes ride the same
    /// keep-alive connection instead of paying a TCP connect each.
    clients: Mutex<BTreeMap<String, Client>>,
}

impl Replicator {
    /// A replicator for `cfg`, registering its counters in `registry`
    /// (the owning server's, so they surface in `/metrics`).
    pub fn new(cfg: ClusterConfig, registry: &obs::Registry) -> Replicator {
        registry.set_help(
            "replication_pushes_total",
            "Frames pushed to replicas, re-sync frames included.",
        );
        registry.set_help(
            "replication_push_failures_total",
            "Frame pushes that exhausted retries or were refused.",
        );
        let mut members: Vec<String> = cfg.peers.iter().map(|p| p.id.clone()).collect();
        members.push(cfg.node_id.clone());
        Replicator {
            ring: Ring::new(members),
            pushes: registry.counter("replication_pushes_total"),
            push_failures: registry.counter("replication_push_failures_total"),
            push_lock: Mutex::new(()),
            clients: Mutex::new(BTreeMap::new()),
            cfg,
        }
    }

    /// The cached keep-alive client for `peer` (created on first use;
    /// clones share the parked connection).
    fn client_for(&self, peer: &NodeSpec) -> Client {
        self.clients
            .lock()
            .entry(peer.id.clone())
            .or_insert_with(|| Client::new(peer.addr, self.cfg.push_policy))
            .clone()
    }

    /// This node's identity on the ring.
    pub fn node_id(&self) -> &str {
        &self.cfg.node_id
    }

    /// The other cluster members, as configured.
    pub fn peers(&self) -> &[NodeSpec] {
        &self.cfg.peers
    }

    /// The pooled keep-alive client for `peer` — the same connection
    /// frame pushes ride, shared with metrics/health federation so the
    /// ops plane adds no sockets of its own.
    pub fn peer_client(&self, peer: &NodeSpec) -> Client {
        self.client_for(peer)
    }

    /// The full-membership placement ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// A shared handle to the chaos knobs.
    pub fn chaos(&self) -> ReplicationChaos {
        self.cfg.chaos.clone()
    }

    /// Streams one committed upload to the key's replica set. Walks the
    /// key's full ring order (not just the first `replication` nodes):
    /// when a replica-set member is down, the next surviving successor
    /// takes the copy, so the write can still reach `required_acks`.
    pub fn replicate(&self, store: &DocumentStore, up: &Upload) -> ReplicationOutcome {
        let candidates: Vec<&NodeSpec> = self
            .ring
            .replicas_for(&up.id, self.ring.nodes().len())
            .into_iter()
            .filter(|id| *id != self.cfg.node_id)
            .filter_map(|id| self.cfg.peers.iter().find(|p| p.id == id))
            .collect();
        let desired = self.cfg.replication.saturating_sub(1).min(candidates.len());
        let required = self.cfg.required_acks.min(desired);

        let _guard = self.push_lock.lock();
        let mut confirmed = 0usize;
        let mut errors = Vec::new();
        for peer in candidates {
            if confirmed >= desired {
                break;
            }
            match self.push_frame(store, peer, &up.entry, Some(&up.canonical_json)) {
                Ok(()) => confirmed += 1,
                Err(e) => {
                    self.push_failures.inc();
                    errors.push(format!("{}: {e}", peer.id));
                }
            }
        }
        ReplicationOutcome {
            confirmed,
            required,
            errors,
        }
    }

    /// Pushes one frame to `peer`, applying any injected faults, and
    /// recovers from rejection via re-sync.
    fn push_frame(
        &self,
        store: &DocumentStore,
        peer: &NodeSpec,
        entry: &LedgerEntry,
        doc: Option<&str>,
    ) -> Result<(), String> {
        let chaos = &self.cfg.chaos.inner;
        let delay = chaos.delay_ms.load(Ordering::Acquire);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        if ReplicationChaos::take(&chaos.drop_frames) {
            return Err(format!(
                "frame {} dropped in flight (injected)",
                entry.index
            ));
        }
        let body = if ReplicationChaos::take(&chaos.tear_frames) {
            frame_body(&self.cfg.node_id, entry, doc.map(tear))
        } else {
            frame_body(&self.cfg.node_id, entry, doc)
        };

        let mut span = obs::trace::span("replication_frame");
        if obs::trace::is_enabled() {
            span.annotate("peer", peer.id.clone());
            span.annotate("index", entry.index.to_string());
            span.annotate("bytes", body.len().to_string());
        }
        let client = self.client_for(peer);
        let result = self.deliver(store, &client, peer, &body, entry.index);
        if obs::trace::is_enabled() {
            span.annotate(
                "outcome",
                match &result {
                    Ok(()) => "ok".to_string(),
                    Err(e) => e.clone(),
                },
            );
        }
        drop(span);

        if result.is_ok() && chaos.duplicate_frames.load(Ordering::Acquire) {
            // Second delivery of the same (clean) frame: the replica
            // answers idempotently, so the outcome stands either way.
            let clean = frame_body(&self.cfg.node_id, entry, doc);
            let _ = self.deliver(store, &client, peer, &clean, entry.index);
        }
        result
    }

    /// One frame POST. A 409 rejection names the replica's expected
    /// next index (the divergence point); re-sync streams this node's
    /// log from there, which re-delivers the refused entry with clean
    /// bytes along the way.
    fn deliver(
        &self,
        store: &DocumentStore,
        client: &Client,
        peer: &NodeSpec,
        body: &str,
        index: u64,
    ) -> Result<(), String> {
        self.pushes.inc();
        let resp = client
            .send("POST", "/api/v0/replication/frames", Some(body))
            .map_err(|e| e.to_string())?;
        match resp.status {
            200 => Ok(()),
            409 => {
                let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap_or_default();
                match v.get("expect_index").and_then(|x| x.as_u64()) {
                    Some(from) => self.resync(store, client, peer, from),
                    None => Err(format!("frame {index} refused: {}", resp.body.trim())),
                }
            }
            s => Err(format!("frame {index}: HTTP {s}: {}", resp.body.trim())),
        }
    }

    /// Re-streams this node's chain to `peer` from `from` onward.
    /// Entries whose bytes were superseded ship without a document —
    /// the replica advances its cursor chain-only.
    fn resync(
        &self,
        store: &DocumentStore,
        client: &Client,
        peer: &NodeSpec,
        from: u64,
    ) -> Result<(), String> {
        let log = store.replication_log(from).map_err(|e| e.to_string())?;
        if log.is_empty() {
            return Err(format!(
                "replica {} expects index {from} but this node's log ends before it",
                peer.id
            ));
        }
        for (entry, doc) in &log {
            let body = frame_body(&self.cfg.node_id, entry, doc.as_deref());
            self.pushes.inc();
            let resp = client
                .send("POST", "/api/v0/replication/frames", Some(&body))
                .map_err(|e| e.to_string())?;
            if resp.status != 200 {
                return Err(format!(
                    "re-sync frame {} refused: HTTP {}: {}",
                    entry.index,
                    resp.status,
                    resp.body.trim()
                ));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Client-side: routing, health probes, promotion
// ---------------------------------------------------------------------------

/// Why a routed request failed on every candidate node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No live node could serve the request; `detail` lists what each
    /// candidate said.
    Unavailable {
        /// Per-node failure detail.
        detail: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Unavailable { detail } => {
                write!(f, "no cluster node could serve the request: {detail}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Percent-encodes a document id for use in a path segment.
fn encode_id(id: &str) -> String {
    let mut out = String::with_capacity(id.len());
    for b in id.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Single-attempt, short-timeout variant of `policy` for probes and
/// verification gates, so a dead node costs milliseconds, not a full
/// retry schedule.
fn probe_policy(policy: RetryPolicy) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        request_timeout: policy.request_timeout.min(Duration::from_secs(2)),
        ..policy
    }
}

/// The thin client-side routing layer over the REST verbs. Keeps a
/// health view of the membership; routes writes to the key's primary
/// and fails them over — *promotion* — to the next ring node whose
/// chains verify; fails reads over along the same ring order.
pub struct ClusterClient {
    nodes: Vec<NodeSpec>,
    replication: usize,
    policy: RetryPolicy,
    /// Health-probe-driven liveness per node id.
    alive: Mutex<BTreeMap<String, bool>>,
    /// Cached keep-alive clients per node, one set for routed requests
    /// and one (single-attempt, short-timeout) for probes/verification.
    clients: Mutex<BTreeMap<String, Client>>,
    probe_clients: Mutex<BTreeMap<String, Client>>,
}

impl ClusterClient {
    /// A client over `nodes` with the given replication factor. All
    /// nodes start presumed alive; [`Self::probe`] and per-request
    /// transport failures update the view.
    pub fn new(nodes: Vec<NodeSpec>, replication: usize, policy: RetryPolicy) -> ClusterClient {
        let alive = nodes.iter().map(|n| (n.id.clone(), true)).collect();
        ClusterClient {
            nodes,
            replication,
            policy,
            alive: Mutex::new(alive),
            clients: Mutex::new(BTreeMap::new()),
            probe_clients: Mutex::new(BTreeMap::new()),
        }
    }

    /// The cached keep-alive client for `node`.
    fn client_for(&self, node: &NodeSpec) -> Client {
        self.clients
            .lock()
            .entry(node.id.clone())
            .or_insert_with(|| Client::new(node.addr, self.policy))
            .clone()
    }

    /// The cached probe-policy client for `node`.
    fn probe_client_for(&self, node: &NodeSpec) -> Client {
        self.probe_clients
            .lock()
            .entry(node.id.clone())
            .or_insert_with(|| Client::new(node.addr, probe_policy(self.policy)))
            .clone()
    }

    /// Probes every node's `/healthz`, updating ring membership.
    /// Returns the ids that answered.
    pub fn probe(&self) -> Vec<String> {
        let mut live = Vec::new();
        for node in &self.nodes {
            let ok = self
                .probe_client_for(node)
                .health()
                .map(|r| r.status == 200)
                .unwrap_or(false);
            self.alive.lock().insert(node.id.clone(), ok);
            if ok {
                live.push(node.id.clone());
            }
        }
        live
    }

    /// The ring over currently-live members.
    pub fn ring(&self) -> Ring {
        let alive = self.alive.lock();
        Ring::new(
            self.nodes
                .iter()
                .filter(|n| alive.get(&n.id).copied().unwrap_or(false))
                .map(|n| n.id.clone()),
        )
    }

    /// Where `id` lives on the live ring right now: primary first.
    pub fn placement(&self, id: &str) -> Vec<String> {
        let ring = self.ring();
        ring.replicas_for(id, self.replication)
            .into_iter()
            .map(String::from)
            .collect()
    }

    fn mark_dead(&self, id: &str) {
        self.alive.lock().insert(id.to_string(), false);
    }

    fn spec(&self, id: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The key's candidate nodes in failover order: the live ring
    /// walked clockwise from the key, so when the replica set's members
    /// die the surviving successors still appear.
    fn route_order(&self, id: &str) -> Vec<String> {
        let ring = self.ring();
        ring.replicas_for(id, ring.nodes().len())
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// Chain-verification gate used before promoting a node: its
    /// ledger and every replication cursor must verify end-to-end.
    pub fn verified(&self, node_id: &str) -> bool {
        let Some(node) = self.spec(node_id) else {
            return false;
        };
        self.probe_client_for(node)
            .get("/api/v0/ledger/verify")
            .map(|r| r.status == 200)
            .unwrap_or(false)
    }

    /// Routed write: `PUT` to the key's primary; on its death the next
    /// ring node that passes [`Self::verified`] is promoted and takes
    /// the write (the promoted node then owns the entry on *its* own
    /// chain and replicates it onward).
    pub fn put(&self, id: &str, prov_json: &str) -> Result<Response, ClusterError> {
        let mut detail = Vec::new();
        for (i, node_id) in self.route_order(id).iter().enumerate() {
            let Some(node) = self.spec(node_id) else {
                continue;
            };
            if i > 0 && !self.verified(node_id) {
                detail.push(format!("{node_id}: not promoted (chain did not verify)"));
                continue;
            }
            let client = self.client_for(node);
            match client.send(
                "PUT",
                &format!("/api/v0/documents/{}", encode_id(id)),
                Some(prov_json),
            ) {
                Ok(resp) if resp.status < 500 => return Ok(resp),
                Ok(resp) => detail.push(format!("{node_id}: HTTP {}", resp.status)),
                Err(e) => {
                    self.mark_dead(node_id);
                    detail.push(format!("{node_id}: {e}"));
                }
            }
        }
        Err(ClusterError::Unavailable {
            detail: detail.join("; "),
        })
    }

    /// Routed read: tries the key's nodes in ring order until one
    /// answers. A 404 is remembered but later replicas are still asked
    /// — only when no replica holds the document is the 404 returned.
    pub fn get(&self, id: &str) -> Result<Response, ClusterError> {
        let mut detail = Vec::new();
        let mut missing: Option<Response> = None;
        for node_id in &self.route_order(id) {
            let Some(node) = self.spec(node_id) else {
                continue;
            };
            let client = self.client_for(node);
            match client.get(&format!("/api/v0/documents/{}", encode_id(id))) {
                Ok(resp) if resp.status == 200 => return Ok(resp),
                Ok(resp) if resp.status == 404 => missing = Some(resp),
                Ok(resp) => detail.push(format!("{node_id}: HTTP {}", resp.status)),
                Err(e) => {
                    self.mark_dead(node_id);
                    detail.push(format!("{node_id}: {e}"));
                }
            }
        }
        missing.ok_or(ClusterError::Unavailable {
            detail: detail.join("; "),
        })
    }

    /// Runs a lineage query / ML audit against document `id`, failing
    /// over across the document's replica set exactly like [`Self::get`]
    /// — the query endpoint is side-effect free, so replaying it on the
    /// next replica is always safe. A 404 from a replica means that node
    /// does not hold the document; the next one is tried, and the last
    /// 404 is surfaced only when no replica can answer.
    pub fn query(&self, id: &str, body_json: &str) -> Result<Response, ClusterError> {
        let mut detail = Vec::new();
        let mut missing: Option<Response> = None;
        for node_id in &self.route_order(id) {
            let Some(node) = self.spec(node_id) else {
                continue;
            };
            let client = self.client_for(node);
            match client.query(&encode_id(id), body_json) {
                Ok(resp) if resp.status == 200 || resp.status == 400 => return Ok(resp),
                Ok(resp) if resp.status == 404 => missing = Some(resp),
                Ok(resp) => detail.push(format!("{node_id}: HTTP {}", resp.status)),
                Err(e) => {
                    self.mark_dead(node_id);
                    detail.push(format!("{node_id}: {e}"));
                }
            }
        }
        missing.ok_or(ClusterError::Unavailable {
            detail: detail.join("; "),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Server, ServerConfig};
    use crate::store::DocumentStore;
    use prov_model::{ProvDocument, QName};

    #[test]
    fn ring_placement_is_deterministic_and_distinct() {
        let ring = Ring::new(["node-a", "node-b", "node-c"]);
        for key in ["run-1", "run-2", "doc-17", "x"] {
            let one = ring.replicas_for(key, 2);
            let two = ring.replicas_for(key, 2);
            assert_eq!(one, two, "placement must be deterministic");
            assert_eq!(one.len(), 2);
            assert_ne!(one[0], one[1], "replicas must be distinct nodes");
            assert_eq!(ring.primary_for(key), Some(one[0]));
        }
        // Clamped to the member count; empty ring places nowhere.
        assert_eq!(ring.replicas_for("k", 10).len(), 3);
        assert!(Ring::new(Vec::<String>::new())
            .replicas_for("k", 2)
            .is_empty());
    }

    #[test]
    fn ring_spreads_keys_and_survives_member_loss() {
        let full = Ring::new(["node-a", "node-b", "node-c"]);
        let mut owners = std::collections::BTreeMap::new();
        for i in 0..300 {
            let key = format!("run-{i}");
            *owners
                .entry(full.primary_for(&key).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        assert_eq!(owners.len(), 3, "every node should own some keys");
        for (_, n) in &owners {
            assert!(*n > 30, "grossly unbalanced ring: {owners:?}");
        }
        // Removing one member only moves the keys it owned.
        let reduced = Ring::new(["node-a", "node-c"]);
        for i in 0..300 {
            let key = format!("run-{i}");
            let before = full.primary_for(&key).unwrap();
            if before != "node-b" {
                assert_eq!(reduced.primary_for(&key), Some(before), "{key}");
            }
        }
    }

    #[test]
    fn frame_json_round_trips() {
        let mut ledger = crate::ledger::Ledger::new();
        let entry = ledger.append("run-1", br#"{"a":1}"#).clone();
        let body = frame_body("node-a", &entry, Some(r#"{"a":1}"#));
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["source"], "node-a");
        assert_eq!(v["document"], r#"{"a":1}"#);
        let back = entry_from_json(&v["entry"]).unwrap();
        assert_eq!(back, entry);
        // Superseded entries carry null.
        let chain_only = frame_body("node-a", &entry, None);
        let v: serde_json::Value = serde_json::from_str(&chain_only).unwrap();
        assert!(v["document"].is_null());
    }

    #[test]
    fn tear_respects_char_boundaries() {
        assert_eq!(tear("abcdef"), "abc");
        assert_eq!(tear(""), "");
        let s = "aé€b"; // multi-byte chars around the midpoint
        let cut = tear(s);
        assert!(s.starts_with(cut));
    }

    #[test]
    fn id_encoding() {
        assert_eq!(encode_id("run-1"), "run-1");
        assert_eq!(encode_id("a b/c"), "a%20b%2Fc");
    }

    fn doc_json(tag: &str) -> String {
        let mut doc = ProvDocument::new();
        doc.namespaces_mut().register("ex", "http://ex/").unwrap();
        doc.entity(QName::new("ex", tag));
        doc.to_json_string().unwrap()
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(40),
            request_timeout: Duration::from_secs(5),
            jitter_seed: 7,
        }
    }

    /// Starts a 2-node in-memory cluster: B first (peerless, to learn
    /// its ephemeral port), then A configured to replicate to B.
    fn two_nodes() -> (Server, Server) {
        let store_a = DocumentStore::new();
        let store_b = DocumentStore::new();
        let b = Server::bind(
            "127.0.0.1:0",
            store_b.clone(),
            ServerConfig {
                cluster: Some(ClusterConfig {
                    push_policy: fast_policy(),
                    ..ClusterConfig::new("node-b", Vec::new())
                }),
                ..Default::default()
            },
        )
        .unwrap();
        // Phase 2: A knows B's address.
        let a = Server::bind(
            "127.0.0.1:0",
            store_a,
            ServerConfig {
                cluster: Some(ClusterConfig {
                    push_policy: fast_policy(),
                    ..ClusterConfig::new("node-a", vec![NodeSpec::new("node-b", b.addr())])
                }),
                ..Default::default()
            },
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn upload_streams_to_replica_and_replica_serves_reads() {
        let (a, b) = two_nodes();
        let (status, body) = crate::http::request(
            a.addr(),
            "PUT",
            "/api/v0/documents/run-1",
            Some(&doc_json("model")),
        )
        .unwrap();
        assert_eq!(status, 201, "{body}");

        // The replica holds the document and its cursor chain.
        let (status, fetched) =
            crate::http::request(b.addr(), "GET", "/api/v0/documents/run-1", None).unwrap();
        assert_eq!(status, 200, "{fetched}");
        let (status, head) = crate::http::request(
            b.addr(),
            "GET",
            "/api/v0/replication/head?source=node-a",
            None,
        )
        .unwrap();
        assert_eq!(status, 200);
        let head: serde_json::Value = serde_json::from_str(&head).unwrap();
        assert_eq!(head["next_index"], 1);

        // Both nodes' chains verify end-to-end.
        for s in [&a, &b] {
            let (status, body) =
                crate::http::request(s.addr(), "GET", "/api/v0/ledger/verify", None).unwrap();
            assert_eq!(status, 200, "{body}");
        }
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn unreplicated_upload_is_rejected_with_503() {
        // Node A's only peer refuses connections: required_acks cannot
        // be met, the write is answered 503 (with Retry-After) and the
        // client may retry elsewhere.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let a = Server::bind(
            "127.0.0.1:0",
            DocumentStore::new(),
            ServerConfig {
                cluster: Some(ClusterConfig {
                    push_policy: RetryPolicy {
                        max_attempts: 1,
                        request_timeout: Duration::from_millis(500),
                        ..fast_policy()
                    },
                    ..ClusterConfig::new("node-a", vec![NodeSpec::new("node-b", dead)])
                }),
                ..Default::default()
            },
        )
        .unwrap();
        let (status, body) = crate::http::request(
            a.addr(),
            "PUT",
            "/api/v0/documents/run-1",
            Some(&doc_json("model")),
        )
        .unwrap();
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("under-replicated"), "{body}");
        a.shutdown();
    }

    #[test]
    fn cluster_client_promotes_past_a_dead_primary() {
        let (a, b) = two_nodes();
        let nodes = vec![
            NodeSpec::new("node-a", a.addr()),
            NodeSpec::new("node-b", b.addr()),
        ];
        let cluster = ClusterClient::new(nodes, 2, fast_policy());

        // Both alive: every document lands and reads back.
        for i in 0..4 {
            let id = format!("run-{i}");
            let resp = cluster.put(&id, &doc_json("model")).unwrap();
            assert_eq!(resp.status, 201, "{}", resp.body);
        }
        // Kill A; probes notice, reads and writes fail over to B.
        a.shutdown();
        let live = cluster.probe();
        assert_eq!(live, vec!["node-b".to_string()]);
        for i in 0..4 {
            let id = format!("run-{i}");
            let resp = cluster.get(&id).unwrap();
            assert_eq!(resp.status, 200, "{id}: {}", resp.body);
        }
        // Writes promote B (its chains verify) — including for keys A
        // used to own. B was configured with no peers, so its writes
        // commit locally with nothing to replicate to.
        let resp = cluster.put("run-0", &doc_json("model2")).unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body);
        let resp = cluster.get("run-0").unwrap();
        assert!(resp.body.contains("model2"));
        b.shutdown();
    }
}
