//! # yprov-service
//!
//! The *consumer* side of the yProv ecosystem: a provenance document
//! store with lineage queries, exposed over a REST API — the role the
//! paper's yProv web service (Neo4J + RESTful API) plays for files
//! produced by yProv4ML.
//!
//! * [`backend`] — the pluggable storage layer: [`StorageBackend`]
//!   with an in-memory map ([`MemoryBackend`]) and a crash-safe
//!   directory backend ([`DurableBackend`]: tmp-file + rename document
//!   writes, append-only ledger file, configurable fsync cadence);
//! * [`store`] — an in-process, thread-safe document store keyed by
//!   handle ids, with merge, per-document statistics, a per-document
//!   graph index cache and lineage queries running on `prov-graph`;
//! * [`error`] — the service's typed error taxonomy
//!   ([`ServiceError`]), each variant mapping onto an HTTP status;
//! * [`ledger`] — the tamper-evident hash chain over uploads;
//! * [`http`] — a from-scratch HTTP/1.1 server serving the yProv-style
//!   endpoints (`/api/v0/documents`, `/api/v0/documents/{id}`,
//!   `.../subgraph`, `.../ancestors`, `.../stats`); by default an
//!   epoll event-loop core (keep-alive, pipelining, watermark load
//!   shedding, graceful drain), with the original thread-per-connection
//!   core selectable as a baseline;
//! * [`client`] — a blocking client with deterministic exponential
//!   backoff for transient failures (connection refused, 502/503/504),
//!   honoring server-supplied `Retry-After` schedules;
//! * [`cluster`] — multi-node mode: consistent-hash placement
//!   ([`Ring`]), primary→replica hash-chain streaming replication
//!   ([`Replicator`]), and the health-probe-driven routing/failover
//!   client ([`ClusterClient`]);
//! * [`explorer`] — cross-document summaries like the yProv Explorer's
//!   landing view, served from the cached graph indexes;
//! * [`ops`] — the ops plane: self-scraped time-series history over
//!   the metrics registries, declarative alert rules, liveness and
//!   readiness probes, and cluster-wide metric federation;
//! * [`slowlog`] — bounded per-route rings of the slowest and erroring
//!   requests, each entry carrying its trace id.
//!
//! ```
//! use yprov_service::store::DocumentStore;
//! use prov_model::{ProvDocument, QName};
//!
//! let store = DocumentStore::new();
//! let mut doc = ProvDocument::new();
//! doc.entity(QName::new("ex", "model"));
//! let id = store.upload(doc).unwrap();
//! assert!(store.get(&id).is_some());
//! ```

pub mod backend;
pub mod client;
pub mod cluster;
mod conn;
pub mod error;
pub mod explorer;
pub mod http;
pub mod ledger;
pub mod ops;
mod reactor;
pub mod slowlog;
pub mod store;

pub use backend::{DurableBackend, MemoryBackend, StorageBackend, SyncPolicy};
pub use client::{Client, ClientError, Response, RetryPolicy};
pub use cluster::{
    ClusterClient, ClusterConfig, ClusterError, NodeSpec, ReplicationChaos, Replicator, Ring,
};
pub use error::ServiceError;
pub use http::{Server, ServerConfig, ServerCore};
pub use ops::{Ops, OpsConfig};
pub use slowlog::{SlowEntry, SlowLog};
pub use store::{DocumentStore, ReplicationApply, Upload};
