//! The event-loop server core: a from-scratch epoll reactor.
//!
//! One reactor thread multiplexes every connection through
//! level-triggered `epoll` (raw syscalls — no tokio, no mio, matching
//! the repo's dependency-free style): it accepts, reads, parses,
//! dispatches complete requests to a small worker pool, and streams
//! buffered responses back as sockets drain. Handlers never see any of
//! this — they run the same `route()` the thread-per-connection core
//! uses, on a worker thread, and hand their response back over a
//! channel (an eventfd waker folds completions into the epoll wait).
//!
//! What the event loop buys over thread-per-connection:
//!
//! * **Keep-alive + pipelining** — a connection outlives its request;
//!   queued requests on one socket are answered in order.
//! * **Slow peers cost a buffer, not a thread** — a slowloris trickling
//!   header bytes holds one [`Conn`] until the read timeout, while
//!   every worker keeps serving.
//! * **Watermark shedding** — admission is bounded by open connections
//!   (`max_connections`, defaulting to `workers + queue_depth`, the
//!   thread-core's admission bound) and dispatch by in-flight jobs and
//!   globally queued response bytes; every shed answers 503 with
//!   `Retry-After` and is counted in `server_shed_total{reason}`.
//! * **Graceful drain** — stop deregisters the listener and lets
//!   in-flight connections finish (bounded by `drain_deadline`), so a
//!   mid-response close flushes instead of resetting.

use crate::cluster::Replicator;
use crate::conn::{HttpParser, Limits, WriteQueue};
use crate::http::{self, Request, ServerConfig};
use crate::store::DocumentStore;
use crossbeam::channel::{unbounded, Receiver, Sender};
use serde_json::json;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Raw epoll/eventfd bindings — the only unsafe surface of the core.
mod sys {
    /// Linux's `struct epoll_event`; packed on x86-64 (the kernel ABI).
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
struct Poller {
    epfd: i32,
}

impl Poller {
    fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest,
            data: token,
        };
        let evp = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut sys::EpollEvent
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, evp) }).map(|_| ())
    }

    fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn delete(&self, fd: i32) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        cvt(n).map(|n| n as usize)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe { sys::close(self.epfd) };
    }
}

struct EventFd(i32);

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { sys::close(self.0) };
    }
}

/// Wakes the reactor out of `epoll_wait` from another thread (worker
/// completions, stop requests). Clones share one eventfd.
#[derive(Clone)]
struct Waker {
    fd: Arc<EventFd>,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker {
            fd: Arc::new(EventFd(fd)),
        })
    }

    fn raw(&self) -> i32 {
        self.fd.0
    }

    fn wake(&self) {
        let one: u64 = 1;
        unsafe { sys::write(self.fd.0, (&one as *const u64).cast(), 8) };
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(self.fd.0, buf.as_mut_ptr(), 8) };
    }
}

const TOK_LISTENER: u64 = u64::MAX;
const TOK_WAKER: u64 = u64::MAX - 1;

/// Per-connection pipelining cap: beyond this many queued requests the
/// reactor stops reading the socket until responses drain.
const MAX_PIPELINED: usize = 64;
/// Per-connection write-buffer high watermark: beyond this the reactor
/// stops reading new requests from that socket (backpressure, not a
/// shed — the peer is answered as fast as it reads).
const PAUSE_WRITE_BYTES: usize = 256 * 1024;
/// Fairness: bytes read from one socket per readiness event before
/// yielding to the rest (level-triggered epoll re-arms).
const READ_SLICE_BYTES: usize = 256 * 1024;

/// One parsed request on its way to a worker.
struct Job {
    token: u64,
    request: Request,
    started: Instant,
}

/// A handler's finished response on its way back to the reactor.
struct Completion {
    token: u64,
    status: u16,
    content_type: &'static str,
    body: String,
    keep_alive: bool,
}

/// Control handle held by the `Server` facade.
pub(crate) struct ReactorHandle {
    stop: Arc<AtomicBool>,
    waker: Waker,
}

impl ReactorHandle {
    /// Asks the reactor to drain and exit; returns immediately. Join
    /// the reactor thread to wait for the drain.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }
}

/// A running event-loop core: the handle plus the reactor thread.
pub(crate) struct EventCore {
    pub handle: ReactorHandle,
    pub thread: std::thread::JoinHandle<()>,
}

/// Builds and starts the core: worker pool, reactor thread, waker.
pub(crate) fn spawn(
    listener: TcpListener,
    store: DocumentStore,
    cfg: ServerConfig,
    chaos: Arc<AtomicU32>,
    registry: Arc<obs::Registry>,
    replicator: Option<Arc<Replicator>>,
    ops: Arc<crate::ops::Ops>,
) -> io::Result<EventCore> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let waker = Waker::new()?;
    poller.add(listener.as_raw_fd(), TOK_LISTENER, sys::EPOLLIN)?;
    poller.add(waker.raw(), TOK_WAKER, sys::EPOLLIN)?;

    let (jobs_tx, jobs_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<Completion>();
    for i in 0..cfg.workers.max(1) {
        let rx = jobs_rx.clone();
        let tx = done_tx.clone();
        let waker = waker.clone();
        let store = store.clone();
        let chaos = Arc::clone(&chaos);
        let registry = Arc::clone(&registry);
        let replicator = replicator.clone();
        let ops = Arc::clone(&ops);
        std::thread::Builder::new()
            .name(format!("yprov-http-{i}"))
            .spawn(move || worker(rx, tx, waker, store, chaos, registry, replicator, ops))?;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let handle = ReactorHandle {
        stop: Arc::clone(&stop),
        waker: waker.clone(),
    };
    let max_conns = cfg
        .max_connections
        .unwrap_or(cfg.workers.max(1) + cfg.queue_depth)
        .max(1);
    let limits = Limits {
        max_body: cfg.max_body,
        max_header_bytes: cfg.max_header_bytes,
        max_headers: cfg.max_headers,
    };
    let open_gauge = registry.gauge("server_connections_open");
    open_gauge.set(0);
    let queued_jobs_gauge = registry.gauge("reactor_queued_jobs");
    queued_jobs_gauge.set(0);
    let queued_bytes_gauge = registry.gauge("reactor_queued_bytes");
    queued_bytes_gauge.set(0);
    let reactor = Reactor {
        accepted: registry.counter("server_connections_accepted_total"),
        pipelined: registry.counter("server_requests_pipelined_total"),
        loop_lag: registry.histogram("reactor_loop_lag_seconds"),
        open_gauge,
        queued_jobs_gauge,
        queued_bytes_gauge,
        poller,
        listener,
        waker,
        conns: Vec::new(),
        free: Vec::new(),
        next_gen: 1,
        open: 0,
        cfg,
        limits,
        registry,
        jobs_tx,
        done_rx,
        in_flight_jobs: 0,
        queued_bytes: 0,
        stop,
        draining: None,
        max_conns,
        ops,
    };
    let thread = std::thread::Builder::new()
        .name("yprov-reactor".into())
        .spawn(move || reactor.run())?;
    Ok(EventCore { handle, thread })
}

/// A worker thread: runs the same handler stack as the blocking core —
/// trace adoption, handler span, `route()`, per-route metrics — then
/// reports the response back to the reactor.
#[allow(clippy::too_many_arguments)]
fn worker(
    rx: Receiver<Job>,
    tx: Sender<Completion>,
    waker: Waker,
    store: DocumentStore,
    chaos: Arc<AtomicU32>,
    registry: Arc<obs::Registry>,
    replicator: Option<Arc<Replicator>>,
    ops: Arc<crate::ops::Ops>,
) {
    while let Ok(Job {
        token,
        request,
        started,
    }) = rx.recv()
    {
        let _remote = request
            .traceparent
            .as_deref()
            .and_then(obs::trace::adopt_remote);
        let mut trace = obs::trace::span("handle_request");
        let trace_id = http::current_trace_id_hex();
        if obs::trace::is_enabled() {
            trace.annotate("method", request.method.clone());
            trace.annotate("path", request.path.clone());
        }
        let (status, body) = http::route(
            &request,
            &store,
            &chaos,
            &registry,
            replicator.as_deref(),
            &ops,
        );
        if obs::trace::is_enabled() {
            trace.annotate("status", status.to_string());
        }
        drop(trace);
        let label = http::route_label(&request.path);
        http::count_request(&registry, &request.method, label, status);
        let elapsed = started.elapsed();
        registry
            .histogram(&format!(
                "http_request_duration_seconds{{route=\"{label}\"}}"
            ))
            .record(elapsed);
        ops.slowlog().record(
            &request.method,
            &request.path,
            label,
            status,
            elapsed.as_nanos() as u64,
            None,
            trace_id,
        );
        let content_type = http::content_type_for(&request.path, status);
        if tx
            .send(Completion {
                token,
                status,
                content_type,
                body,
                keep_alive: request.keep_alive,
            })
            .is_err()
        {
            break;
        }
        waker.wake();
    }
}

/// One connection's readiness state.
struct Conn {
    stream: TcpStream,
    gen: u32,
    parser: HttpParser,
    write_q: WriteQueue,
    /// Parsed requests awaiting dispatch (pipelining), with arrival
    /// times for the latency histogram.
    pending: VecDeque<(Request, Instant)>,
    /// A request of this connection is with a worker.
    in_flight: bool,
    /// Registered epoll interest bits.
    interest: u32,
    /// Reading paused for backpressure; resumes when buffers drain.
    paused: bool,
    /// No further reads, ever (final request seen, error pending, or
    /// draining).
    stop_reading: bool,
    /// Close as soon as the write queue drains, regardless of state.
    error_close: bool,
    /// A parse rejection waiting for earlier pipelined responses to
    /// finish: queueing it immediately would let the error jump ahead
    /// of responses still owed, and pipelining clients correlate
    /// responses strictly by order.
    deferred_reject: Option<(u16, String)>,
    /// Close once no request is pending or in flight.
    close_when_idle: bool,
    eof: bool,
    /// At least one response has completed (keep-alive idle rules).
    served: bool,
    /// An incomplete request has been pending since this instant.
    partial_since: Option<Instant>,
    /// Last read progress (idle timeout baseline).
    last_activity: Instant,
    /// The write queue has been non-empty without progress since here.
    write_since: Option<Instant>,
}

impl Conn {
    fn token(&self, idx: usize) -> u64 {
        (u64::from(self.gen) << 32) | idx as u64
    }

    fn idle(&self) -> bool {
        !self.in_flight && self.pending.is_empty() && self.write_q.is_empty()
    }
}

struct Reactor {
    poller: Poller,
    listener: TcpListener,
    waker: Waker,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    open: usize,
    cfg: ServerConfig,
    limits: Limits,
    registry: Arc<obs::Registry>,
    jobs_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    in_flight_jobs: usize,
    /// Response bytes buffered across every connection — the global
    /// queued-byte shed watermark.
    queued_bytes: usize,
    stop: Arc<AtomicBool>,
    draining: Option<Instant>,
    max_conns: usize,
    open_gauge: Arc<obs::Gauge>,
    accepted: Arc<obs::Counter>,
    pipelined: Arc<obs::Counter>,
    /// Busy time of one loop iteration (everything between two epoll
    /// waits) — the event-loop saturation signal.
    loop_lag: Arc<obs::Histogram>,
    queued_jobs_gauge: Arc<obs::Gauge>,
    queued_bytes_gauge: Arc<obs::Gauge>,
    ops: Arc<crate::ops::Ops>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
        loop {
            let n = match self.poller.wait(&mut events, 100) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            // Loop lag = how long this iteration keeps the reactor away
            // from epoll_wait. Growth here shows event-loop saturation
            // before the shed watermarks trip.
            let busy_started = Instant::now();
            for ev in events.iter().take(n) {
                let ev = *ev;
                match ev.data {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.waker.drain(),
                    token => self.conn_ready(token, ev.events),
                }
            }
            // Completions drain *after* the socket events: a burst that
            // arrived together is judged against the in-flight work it
            // found, so the queue watermark sheds the way the bounded
            // accept queue used to.
            self.drain_completions();
            if self.stop.load(Ordering::Acquire) && self.draining.is_none() {
                self.begin_drain();
            }
            self.sweep_timeouts();
            self.loop_lag.record(busy_started.elapsed());
            self.queued_jobs_gauge.set(self.in_flight_jobs as i64);
            self.queued_bytes_gauge.set(self.queued_bytes as i64);
            if self.draining.is_some() && self.open == 0 {
                break;
            }
        }
        // Dropping the job sender disconnects the workers' queue; each
        // worker exits after its current handler returns.
    }

    // -- accept path --------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accepted.inc();
                    if self.draining.is_some() {
                        continue; // racing the listener deregistration
                    }
                    if self.open < self.max_conns {
                        let _ = self.register(stream, false);
                        continue;
                    }
                    // Even a shed holds an fd and a slab slot until its
                    // 503 flushes (or times out), so the courtesy
                    // response is itself a resource: above a hard
                    // ceiling the socket is dropped unregistered, and a
                    // connection flood cannot exhaust fds behind the
                    // admission watermark.
                    if self.open >= self.shed_ceiling() {
                        self.count_shed("overflow");
                        continue; // stream dropped without a response
                    }
                    self.shed_accept(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Admits a connection into the slab. With `shed`, its only purpose
    /// is to flush a queued 503 and close.
    fn register(&mut self, stream: TcpStream, shed: bool) -> Option<usize> {
        if stream.set_nonblocking(true).is_err() {
            return None;
        }
        let _ = stream.set_nodelay(true);
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1).max(1);
        let interest = if shed {
            0
        } else {
            sys::EPOLLIN | sys::EPOLLRDHUP
        };
        let conn = Conn {
            stream,
            gen,
            parser: HttpParser::new(),
            write_q: WriteQueue::new(),
            pending: VecDeque::new(),
            in_flight: false,
            interest,
            paused: false,
            stop_reading: shed,
            error_close: false,
            deferred_reject: None,
            close_when_idle: false,
            eof: false,
            served: false,
            partial_since: None,
            last_activity: Instant::now(),
            write_since: None,
        };
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = conn.token(idx);
        let fd = conn.stream.as_raw_fd();
        if self.poller.add(fd, token, interest).is_err() {
            self.free.push(idx);
            return None;
        }
        self.conns[idx] = Some(conn);
        self.open += 1;
        self.open_gauge.set(self.open as i64);
        Some(idx)
    }

    /// Total-registration ceiling, shed connections included: twice the
    /// admission watermark, with headroom so tiny configs still get to
    /// answer 503 during a burst.
    fn shed_ceiling(&self) -> usize {
        self.max_conns
            .saturating_mul(2)
            .max(self.max_conns.saturating_add(64))
    }

    /// Sheds a just-accepted connection: 503 + `Retry-After`, flushed
    /// through the normal write path (the reactor never blocks on a
    /// peer that won't read its rejection).
    fn shed_accept(&mut self, stream: TcpStream) {
        self.count_shed("connections");
        if let Some(idx) = self.register(stream, true) {
            self.queue_shed_response(idx);
        }
    }

    fn count_shed(&self, reason: &str) {
        self.registry
            .counter(&format!("server_shed_total{{reason=\"{reason}\"}}"))
            .inc();
    }

    fn queue_shed_response(&mut self, idx: usize) {
        let body = json!({"error": "server overloaded, retry later"}).to_string();
        self.queue_response(idx, 503, "application/json", body, false);
        if let Some(conn) = self.conn_mut(idx) {
            conn.error_close = true;
            conn.stop_reading = true;
        }
        self.flush(idx);
        self.update_interest(idx);
    }

    // -- event dispatch -----------------------------------------------------

    fn conn_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.conns.get_mut(idx).and_then(Option::as_mut)
    }

    fn is_open(&self, idx: usize) -> bool {
        self.conns.get(idx).is_some_and(Option::is_some)
    }

    fn conn_ready(&mut self, token: u64, bits: u32) {
        let idx = (token & 0xffff_ffff) as usize;
        let gen = (token >> 32) as u32;
        match self.conn_mut(idx) {
            Some(conn) if conn.gen == gen => {}
            _ => return, // stale event for a recycled slot
        }
        if bits & sys::EPOLLERR != 0 {
            self.close_conn(idx);
            return;
        }
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            self.readable(idx);
        }
        if self.is_open(idx) && bits & sys::EPOLLOUT != 0 {
            self.writable(idx);
        }
    }

    fn readable(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        let mut read_total = 0usize;
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.stop_reading || conn.paused || conn.error_close || conn.eof {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.parser.push(&buf[..n]);
                    conn.last_activity = Instant::now();
                    read_total += n;
                    if read_total >= READ_SLICE_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
        self.parse_and_dispatch(idx);
    }

    fn parse_and_dispatch(&mut self, idx: usize) {
        let limits = self.limits;
        let pipelined = Arc::clone(&self.pipelined);
        loop {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.error_close || conn.deferred_reject.is_some() {
                break;
            }
            if conn.pending.len() >= MAX_PIPELINED {
                conn.paused = true;
                break;
            }
            match conn.parser.next(&limits) {
                Ok(Some(request)) => {
                    if conn.in_flight || !conn.pending.is_empty() {
                        pipelined.inc();
                    }
                    if !request.keep_alive {
                        // Final request of this connection: one-shot
                        // clients read to EOF, so the response closes.
                        conn.stop_reading = true;
                        conn.close_when_idle = true;
                    }
                    conn.pending.push_back((request, Instant::now()));
                }
                Ok(None) => break,
                Err((status, msg)) => {
                    self.parse_reject(idx, status, msg);
                    return;
                }
            }
        }
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        // A paused connection is waiting on *us* (buffers draining), not
        // on the peer: the read timeout must not blame it, and EOF
        // judgement waits until resume re-parses whatever complete
        // requests are still buffered.
        conn.partial_since = if conn.paused {
            None
        } else if conn.parser.has_partial() {
            conn.partial_since.or(Some(Instant::now()))
        } else {
            None
        };
        let mut eof_error = None;
        let mut eof_idle = false;
        if conn.eof && !conn.paused {
            conn.stop_reading = true;
            eof_error = conn.parser.finish_eof(&limits);
            if eof_error.is_none() {
                conn.close_when_idle = true;
                eof_idle = conn.idle();
            }
        }
        if let Some((status, msg)) = eof_error {
            self.parse_reject(idx, status, msg);
            return;
        }
        if eof_idle {
            self.close_conn(idx);
            return;
        }
        self.try_dispatch(idx);
        self.update_interest(idx);
    }

    /// Answers a protocol violation the way the blocking core did —
    /// counted as a parse error, one response, connection closed. If
    /// the connection still owes responses for earlier pipelined
    /// requests, the rejection is parked until they complete so the
    /// error cannot jump the response order.
    fn parse_reject(&mut self, idx: usize, status: u16, msg: String) {
        {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.error_close || conn.deferred_reject.is_some() {
                return; // already answering an earlier violation
            }
        }
        self.registry.counter("http_parse_errors_total").inc();
        http::count_request(&self.registry, "-", "unparsed", status);
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        conn.stop_reading = true;
        conn.partial_since = None;
        if conn.in_flight || !conn.pending.is_empty() {
            conn.deferred_reject = Some((status, msg));
            // The requests parsed before the violation are still good;
            // keep them flowing so the parked rejection can fire.
            self.try_dispatch(idx);
            self.update_interest(idx);
            return;
        }
        let body = json!({"error": msg}).to_string();
        self.queue_response(idx, status, "application/json", body, false);
        if let Some(conn) = self.conn_mut(idx) {
            conn.error_close = true;
        }
        self.flush(idx);
        self.update_interest(idx);
    }

    /// Emits a parked parse rejection once the connection owes nothing
    /// for earlier requests.
    fn fire_deferred_reject(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.error_close || conn.in_flight || !conn.pending.is_empty() {
            return;
        }
        let Some((status, msg)) = conn.deferred_reject.take() else {
            return;
        };
        let body = json!({"error": msg}).to_string();
        self.queue_response(idx, status, "application/json", body, false);
        if let Some(conn) = self.conn_mut(idx) {
            conn.error_close = true;
        }
        self.flush(idx);
        self.update_interest(idx);
    }

    /// Hands the connection's next pending request to the workers,
    /// unless a watermark says shed.
    fn try_dispatch(&mut self, idx: usize) {
        let workers = self.cfg.workers.max(1);
        let queue_slots = workers + self.cfg.queue_depth;
        let over_queue = self.in_flight_jobs >= queue_slots;
        let over_bytes = self.queued_bytes > self.cfg.max_queued_bytes;
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.in_flight || conn.pending.is_empty() || conn.error_close {
            return;
        }
        if over_queue {
            self.shed_dispatch(idx, "queue");
            return;
        }
        if over_bytes {
            self.shed_dispatch(idx, "queued_bytes");
            return;
        }
        let conn = self.conn_mut(idx).expect("checked above");
        let (request, started) = conn.pending.pop_front().expect("checked above");
        conn.in_flight = true;
        let token = conn.token(idx);
        self.in_flight_jobs += 1;
        let _ = self.jobs_tx.send(Job {
            token,
            request,
            started,
        });
    }

    /// Sheds a parsed-but-undispatched request: 503 + `Retry-After`,
    /// connection closed (pipelined successors are shed with it). The
    /// refused request lands in the slowlog with its shed reason — the
    /// histogram only sees requests that reached a worker, so the
    /// slowlog is where shed victims stay findable.
    fn shed_dispatch(&mut self, idx: usize, reason: &'static str) {
        self.count_shed(reason);
        let victim = self.conn_mut(idx).and_then(|conn| {
            conn.pending.front().map(|(request, started)| {
                (
                    request.method.clone(),
                    request.path.clone(),
                    started.elapsed().as_nanos() as u64,
                )
            })
        });
        if let Some((method, path, latency_ns)) = victim {
            let label = http::route_label(&path);
            self.ops
                .slowlog()
                .record(&method, &path, label, 503, latency_ns, Some(reason), None);
        }
        self.queue_shed_response(idx);
    }

    // -- completion / write path -------------------------------------------

    fn drain_completions(&mut self) {
        let draining = self.draining.is_some();
        while let Ok(done) = self.done_rx.try_recv() {
            self.in_flight_jobs = self.in_flight_jobs.saturating_sub(1);
            let idx = (done.token & 0xffff_ffff) as usize;
            let gen = (done.token >> 32) as u32;
            let (close, drop_body) = match self.conn_mut(idx) {
                Some(conn) if conn.gen == gen => {
                    conn.in_flight = false;
                    conn.served = true;
                    // The idle clock restarts at the *response*, not the
                    // last read. A long-poll watch legitimately parks a
                    // request with a worker for far longer than
                    // `idle_timeout`; judging the quiet period from the
                    // request bytes would reap the connection the moment
                    // its answer flushed, racing the client's next poll
                    // on the keep-alive socket.
                    conn.last_activity = Instant::now();
                    // An error response (503 shed, parse reject) already
                    // sits in the write queue: appending this body after
                    // it would hand the client bytes for a request it
                    // saw fail.
                    let drop_body = conn.error_close;
                    let close =
                        !done.keep_alive || conn.close_when_idle || conn.error_close || draining;
                    if close {
                        conn.close_when_idle = true;
                        conn.stop_reading = true;
                    }
                    (close, drop_body)
                }
                _ => continue, // connection died while the handler ran
            };
            if !drop_body {
                self.queue_response(idx, done.status, done.content_type, done.body, !close);
            }
            self.flush(idx);
            if self.is_open(idx) {
                self.try_dispatch(idx);
                self.maybe_resume(idx);
                self.fire_deferred_reject(idx);
                self.update_interest(idx);
            }
        }
    }

    fn queue_response(
        &mut self,
        idx: usize,
        status: u16,
        content_type: &str,
        body: String,
        keep_alive: bool,
    ) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let head = http::encode_response_head(status, content_type, body.len(), keep_alive);
        let added = head.len() + body.len();
        conn.write_q.push(head.into_bytes());
        conn.write_q.push(body.into_bytes());
        if conn.write_since.is_none() {
            conn.write_since = Some(Instant::now());
        }
        self.queued_bytes += added;
    }

    /// Writes what the socket will take; closes on hard error or when
    /// the drained queue says the connection is done.
    fn flush(&mut self, idx: usize) {
        let result = {
            let Some(conn) = self.conn_mut(idx) else {
                return;
            };
            if conn.write_q.is_empty() {
                None
            } else {
                let Conn {
                    write_q, stream, ..
                } = conn;
                Some(write_q.write_to(stream))
            }
        };
        match result {
            None => {}
            Some(Ok(n)) => {
                self.queued_bytes = self.queued_bytes.saturating_sub(n);
                let Some(conn) = self.conn_mut(idx) else {
                    return;
                };
                if conn.write_q.is_empty() {
                    conn.write_since = None;
                } else if n > 0 {
                    conn.write_since = Some(Instant::now());
                }
            }
            Some(Err(_)) => {
                self.close_conn(idx);
                return;
            }
        }
        self.maybe_finish(idx);
    }

    fn writable(&mut self, idx: usize) {
        self.flush(idx);
        if self.is_open(idx) {
            self.try_dispatch(idx);
            self.maybe_resume(idx);
            self.fire_deferred_reject(idx);
            self.update_interest(idx);
        }
    }

    /// Applies the close rules once buffers drain; resumes reading when
    /// backpressure clears.
    fn maybe_finish(&mut self, idx: usize) {
        let draining = self.draining.is_some();
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if conn.write_q.is_empty() {
            if conn.error_close {
                self.close_conn(idx);
                return;
            }
            let conn = self.conn_mut(idx).expect("checked above");
            if conn.deferred_reject.is_none()
                && conn.idle()
                && (conn.close_when_idle || conn.eof || draining)
            {
                self.close_conn(idx);
                return;
            }
        }
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if !conn.paused && conn.write_q.len() >= PAUSE_WRITE_BYTES {
            conn.paused = true;
        }
        self.maybe_resume(idx);
    }

    /// Clears a backpressure pause once its cause has drained — and
    /// crucially re-parses: complete requests may already sit whole in
    /// the parser buffer, and if the kernel socket buffer is empty the
    /// socket never turns readable again, so re-arming `EPOLLIN` alone
    /// would strand them until the read timeout 400s the connection.
    fn maybe_resume(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        if !conn.paused
            || conn.error_close
            || conn.pending.len() >= MAX_PIPELINED
            || conn.write_q.len() >= PAUSE_WRITE_BYTES
        {
            return;
        }
        conn.paused = false;
        self.parse_and_dispatch(idx);
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conn_mut(idx) else {
            return;
        };
        let mut want = 0u32;
        if !(conn.paused || conn.stop_reading || conn.error_close || conn.eof) {
            want |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !conn.write_q.is_empty() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            let token = conn.token(idx);
            let fd = conn.stream.as_raw_fd();
            conn.interest = want;
            let _ = self.poller.modify(fd, token, want);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(|slot| slot.take()) {
            self.poller.delete(conn.stream.as_raw_fd());
            self.queued_bytes = self.queued_bytes.saturating_sub(conn.write_q.len());
            self.free.push(idx);
            self.open -= 1;
            self.open_gauge.set(self.open as i64);
        }
    }

    // -- timers & drain -----------------------------------------------------

    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let drain_cutoff = self.draining.map(|since| since + self.cfg.drain_deadline);
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            let (write_since, partial_since, error_close, served, last_activity, idle) = (
                conn.write_since,
                conn.partial_since,
                conn.error_close,
                conn.served,
                conn.last_activity,
                conn.idle(),
            );
            if drain_cutoff.is_some_and(|cut| now >= cut) {
                self.close_conn(idx);
                continue;
            }
            if write_since.is_some_and(|since| now.duration_since(since) > self.cfg.write_timeout) {
                // The peer stopped reading its response.
                self.close_conn(idx);
                continue;
            }
            if let Some(since) = partial_since {
                // A request has been incomplete for the whole read
                // timeout — slowloris or a stalled peer. The bound is
                // on total time, so a byte-per-second trickle cannot
                // hold the connection open past it.
                if now.duration_since(since) > self.cfg.read_timeout && !error_close {
                    self.parse_reject(idx, 400, "read error: request timed out".to_string());
                }
            } else if idle && !error_close {
                // `idle()` is false while a request is with a worker, so
                // a parked long-poll watch is exempt from this branch for
                // as long as it waits; its `partial_since` is also `None`
                // (the request parsed completely), so the slowloris bound
                // above cannot misjudge it either.
                let quiet = now.duration_since(last_activity);
                if served {
                    if quiet > self.cfg.idle_timeout {
                        self.close_conn(idx); // silent keep-alive reap
                    }
                } else if quiet > self.cfg.read_timeout {
                    // Never sent a complete request: the blocking core
                    // answered 400 when its first read timed out.
                    self.parse_reject(idx, 400, "read error: request timed out".to_string());
                }
            }
        }
    }

    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now());
        self.poller.delete(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else {
                continue;
            };
            conn.stop_reading = true;
            conn.close_when_idle = true;
            if conn.idle() {
                self.close_conn(idx);
            } else {
                self.update_interest(idx);
            }
        }
    }
}
